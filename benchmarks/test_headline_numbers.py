"""Bench: the scalar claims of sections 4-5, measured on our stack."""

from conftest import run_once

from repro.core import headline_numbers
from repro.core.reporting import render_headlines
from repro.workloads import REPRESENTATIVES


def test_headline_numbers(benchmark, publish, settings):
    numbers = run_once(
        benchmark, lambda: headline_numbers(REPRESENTATIVES, settings=settings)
    )
    publish("headlines", render_headlines(numbers))

    # Port scaling: a large jump for the second port, diminishing after
    # (paper: +25 %, +4 %, +1 %; our synthetic stack shows the same
    # ordering at smaller magnitude).
    gains = numbers["port_gain"]
    assert gains["1->2"] > 0.02
    assert gains["2->3"] < gains["1->2"]
    assert gains["3->4"] <= gains["2->3"] + 0.01

    # Pipelining losses: integer codes lose several times more IPC per
    # stage than floating point codes (paper: 12-23 % vs 3-9 %).
    loss = numbers["pipeline_loss"]
    assert loss["gcc"]["2_cycles"] > 2.5 * loss["tomcatv"]["2_cycles"]
    assert loss["gcc"]["3_cycles"] > loss["gcc"]["2_cycles"]

    # Line buffer: helps the duplicate cache more than the banked one
    # (paper: +3 % vs +0.5 %).
    lb = numbers["line_buffer_gain"]
    assert lb["duplicate"] > 0.0
    assert lb["duplicate"] >= lb["banked"] - 0.005

    # The LB recovers a substantial part of the pipelining loss
    # (paper: 28-74 %).  The integer representative shows it strongly;
    # FP codes have little loss to recover, so their ratio is noisy.
    assert numbers["lb_pipeline_recovery"]["gcc"] > 0.2
    for name, recovery in numbers["lb_pipeline_recovery"].items():
        assert recovery > 0.0, name

    # DRAM hit-time sensitivity is gentle thanks to the row-buffer
    # cache (paper: ~3 % per cycle).
    assert 0.0 <= numbers["dram_loss_per_cycle"] < 0.08
