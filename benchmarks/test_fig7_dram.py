"""Bench: regenerate Figure 7 (4 MB on-chip DRAM cache, 6-8 cycle hits)."""

from conftest import run_once

from repro.core import ExperimentSettings, duplicate, figure7, run_experiment
from repro.core.reporting import render_figure7
from repro.workloads import REPRESENTATIVES


def test_figure7_dram_cache(benchmark, publish, settings):
    data = run_once(
        benchmark, lambda: figure7(REPRESENTATIVES, settings=settings)
    )
    publish("figure7", render_figure7(data))

    for name in REPRESENTATIVES:
        cells = data[name]
        # Longer DRAM hit times never help.
        assert cells[(7, True)] <= cells[(6, True)] * 1.02
        assert cells[(8, True)] <= cells[(7, True)] * 1.02
        # The line buffer never hurts the DRAM system.
        for hit in (6, 7, 8):
            assert cells[(hit, True)] >= cells[(hit, False)] * 0.99

    # Average IPC loss per extra DRAM cycle is small (paper: ~3 %/cycle)
    # because the one-cycle row-buffer cache absorbs most references.
    losses = [
        (data[n][(6, True)] - data[n][(8, True)]) / 2 / data[n][(6, True)]
        for n in REPRESENTATIVES
    ]
    assert 0.0 <= sum(losses) / len(losses) < 0.10


def test_dram_vs_sram_for_large_working_sets(benchmark, settings):
    """Section 4.3: the DRAM system loses to SRAM + L2 where the
    512-byte row-buffer lines cause conflict misses (database)."""

    def run():
        from repro.core import dram_cache

        dram = run_experiment(dram_cache(6, line_buffer=True), "database", settings)
        sram = run_experiment(
            duplicate(16 * 1024, line_buffer=True), "database", settings
        )
        return dram.ipc, sram.ipc

    dram_ipc, sram_ipc = run_once(benchmark, run)
    print(f"\ndatabase: DRAM cache IPC={dram_ipc:.3f}, 16K SRAM + L2 IPC={sram_ipc:.3f}")
    assert sram_ipc > dram_ipc
