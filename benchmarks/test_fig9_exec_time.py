"""Bench: regenerate Figure 9 (normalized execution time vs cycle time)."""

from conftest import run_once

from repro.core import best_point, figure9
from repro.core.reporting import render_figure9
from repro.workloads import REPRESENTATIVES

K = 1024


def test_figure9_execution_time(benchmark, publish, settings):
    data = run_once(
        benchmark, lambda: figure9(REPRESENTATIVES, settings=settings)
    )
    publish("figure9", render_figure9(data))

    for name, points in data.items():
        by_key = {(p.cycle_time_fo4, p.depth): p for p in points}

        # Deeper pipelines unlock bigger caches at every cycle time.
        for cycle_time in {p.cycle_time_fo4 for p in points}:
            sizes = [
                by_key[(cycle_time, d)].cache_size
                for d in (1, 2, 3)
                if (cycle_time, d) in by_key
            ]
            assert sizes == sorted(sizes)

        # At 10 FO4 only three-cycle caches are realizable (section 4.4).
        assert all(p.depth == 3 for p in points if p.cycle_time_fo4 == 10.0)

        # Execution time in FO4 = cycles x cycle time, normalized > 0.
        for p in points:
            assert p.normalized_time > 0

    # Faster clocks win overall despite smaller caches: the best point
    # for each benchmark is at a cycle time below the slowest studied.
    for name, points in data.items():
        winner = best_point(points)
        assert winner.cycle_time_fo4 < 30.0, name

    # A fixed-size comparison shows Amdahl-limited speedup: for the
    # 3-cycle curves, 3x clock gives well under 3x time reduction.
    for name, points in data.items():
        d3 = {p.cycle_time_fo4: p for p in points if p.depth == 3}
        if 10.0 in d3 and 30.0 in d3:
            speedup = d3[30.0].execution_time_fo4 / d3[10.0].execution_time_fo4
            assert speedup < 3.0, name
