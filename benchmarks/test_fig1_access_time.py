"""Bench: regenerate Figure 1 (cache access time vs size, FO4)."""

from conftest import run_once

from repro.core import figure1
from repro.core.reporting import render_figure1


def test_figure1_access_times(benchmark, publish):
    curves = run_once(benchmark, figure1)
    publish("figure1", render_figure1(curves))

    single = dict(curves["single_ported"])
    banked = dict(curves["eight_way_banked"])
    # Paper anchors: 8K = 25 FO4; 512K = 1.67x; 1M = 2.20x.
    assert abs(single[8 * 1024] - 25.0) < 0.3
    assert abs(single[512 * 1024] - 41.75) < 0.5
    assert abs(single[1024 * 1024] - 55.0) < 0.7
    # Banked caches are slower below 16 KB, identical at and above.
    assert banked[4 * 1024] > single[4 * 1024]
    assert abs(banked[64 * 1024] - single[64 * 1024]) < 1e-6
