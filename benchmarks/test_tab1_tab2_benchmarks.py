"""Bench: regenerate Table 1 (benchmarks) and Table 2 (mix percentages)."""

from conftest import run_once

from repro.core import table1, table2
from repro.core.reporting import render_table1, render_table2
from repro.workloads import BENCHMARKS

#: Table 2's load/store percentages from the paper, for validation.
PAPER_TABLE2 = {
    "gcc": (28.1, 12.2),
    "li": (33.2, 13.0),
    "compress": (34.5, 8.0),
    "tomcatv": (26.9, 8.5),
    "su2cor": (28.0, 6.3),
    "apsi": (40.0, 11.7),
    "pmake": (25.8, 11.9),
    "database": (24.8, 13.6),
    "VCS": (25.7, 15.1),
}


def test_table1_benchmarks(benchmark, publish):
    rows = run_once(benchmark, table1)
    publish("table1", render_table1(rows))
    assert len(rows) == 9
    groups = [row["group"] for row in rows]
    assert groups.count("SPECint95") == 3
    assert groups.count("SPECfp95") == 3
    assert groups.count("multiprogramming") == 3


def test_table2_mix(benchmark, publish):
    rows = run_once(benchmark, lambda: table2(sample_instructions=60_000))
    publish("table2", render_table2(rows))
    for row in rows:
        load, store = PAPER_TABLE2[row["benchmark"]]
        assert abs(row["load_pct"] - load) < 1.5, row
        assert abs(row["store_pct"] - store) < 1.5, row
    by_name = {row["benchmark"]: row for row in rows}
    assert abs(by_name["database"]["idle_pct"] - 64.6) < 0.1
    assert abs(by_name["pmake"]["idle_pct"] - 5.1) < 0.1
    assert len(BENCHMARKS) == 9


def test_figure2_machine_description(benchmark, publish):
    from repro.core import figure2
    from repro.core.reporting import render_figure2

    sections = run_once(benchmark, figure2)
    publish("figure2", render_figure2(sections))
    assert sections["processor"]["issue"].startswith("4 issue")
    assert "64 entry" in sections["processor"]["window"]
    assert "32 entries" in sections["processor"]["load/store buffer"]
    assert sections["secondary cache"]["size"] == "4 MB"
    assert "300 ns" in sections["main memory"]["access time"]
