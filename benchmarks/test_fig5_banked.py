"""Bench: regenerate Figure 5 (multi-cycle banked caches, 1-128 banks)."""

from conftest import run_once

from repro.core import figure5
from repro.core.reporting import render_ipc_grid
from repro.workloads import REPRESENTATIVES


def test_figure5_banked(benchmark, publish, settings):
    data = run_once(
        benchmark, lambda: figure5(REPRESENTATIVES, settings=settings)
    )
    publish(
        "figure5",
        render_ipc_grid(data, "banks", "Figure 5: multi-cycle banked 32 KB caches"),
    )

    for name in REPRESENTATIVES:
        cells = data[name]
        # More banks never hurt (fewer conflicts).
        assert cells[(2, 1)] >= cells[(1, 1)] * 0.99
        assert cells[(8, 1)] >= cells[(4, 1)] * 0.99
        # Diminishing returns: 8 -> 128 banks is a small step (paper:
        # "the performance difference ... is small").
        gain_1_to_8 = cells[(8, 1)] - cells[(1, 1)]
        gain_8_to_128 = cells[(128, 1)] - cells[(8, 1)]
        assert gain_8_to_128 <= max(gain_1_to_8, 0.02)
        # Pipelining still costs IPC at fixed clock.
        assert cells[(8, 3)] <= cells[(8, 1)] * 1.02
