"""Shared configuration for the reproduction bench harness.

Every bench regenerates one of the paper's tables or figures, prints it,
and writes it under ``benchmarks/results/`` so the artifacts survive
pytest's stdout capture.  Instruction budgets scale with ``REPRO_SCALE``
(see repro.core.experiment); the defaults keep the full harness around
half an hour on a laptop.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import ExperimentSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Budgets used by every timing bench (figures 4-9, headlines).
BENCH_SETTINGS = ExperimentSettings(
    instructions=8_000,
    timing_warmup=2_000,
    functional_warmup=250_000,
)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return BENCH_SETTINGS


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def publish(results_dir):
    """Print a rendered table and persist it to results/<name>.txt."""

    def _publish(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing.

    The simulations are deterministic and expensive; calibration rounds
    would only repeat identical work.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
