"""Perf-regression suite: wall-clock benchmarks with a committed baseline.

Successor to ``bench_engine.py``; one file now measures everything and
emits ``BENCH_repro.json`` at the repo root:

* **engine** -- ``python -m repro all`` serial vs parallel vs warm
  (each once; the speedup and warm fraction are the interesting
  numbers, and the three reports are diffed to prove the engine keeps
  output byte-identical across execution strategies);
* **headline** -- ``python -m repro headlines --jobs 1`` against an
  empty store, repeated ``--repeats`` times (>= 3): the production
  path's wall clock, mean +- stddev;
* **tracing** -- the same run with a full JSONL event trace
  (``REPRO_TRACE``), quantifying what the event stream costs when on;
* **attribution** -- tracing plus ``REPRO_ATTRIBUTION=1``: the
  per-load critical-path accounting must stay within a few percent of
  tracing alone (the <5% acceptance gate);
* **counters** -- the same run with interval counter sampling on
  (``REPRO_COUNTER_INTERVAL``): the per-interval series snapshot must
  stay within 5% of the plain headline run (the counters-off case is
  the headline mode itself -- no sampler is ever installed, so off
  costs nothing by construction);
* **telemetry** -- ``--progress --serve-metrics 0``: live heartbeats,
  the progress display, and the /metrics endpoint all on, gated at
  <10% over the plain headline run (and the headline mode itself
  proves telemetry *off* costs nothing, since it never installs a
  beacon or hub);
* **spans** -- the telemetry run plus ``--spans-out`` (the sweep-scope
  orchestration span trace): the span recorder rides the telemetry
  mark channel, so its marginal cost over telemetry alone is gated at
  <5%;
* **backend** -- the same headline run on ``--backend fast``: its
  stdout must be byte-identical to every reference run's, and its
  speedup over the headline (reference) mean is gated at >= 3x;
* **scaling** -- the headline sweep on the fast backend at ``--jobs
  1``, ``2`` and ``4`` (each against an empty store, stdout asserted
  byte-identical across all three): the parallel executor's speedup
  and per-core efficiency, plus the host core count so the gate knows
  what the hardware could possibly deliver.

``--check [BASELINE]`` re-measures and compares against the committed
baseline (default: the repo-root ``BENCH_repro.json``), failing with
exit 1 on a >15% wall-clock regression (``--tolerance``), attribution
overhead above 5%, counter-sampling overhead above 5%, telemetry
overhead above 10%, a fast-backend speedup below 3x, or a scaling
failure -- the CI perf job's gates.
The scaling gate is **core-aware**: with >= 2 cores the ``--jobs 2``
speedup must reach 1.5x; on a single core no speedup is physically
possible, so the gate flips to bounding the parallel machinery's
*overhead* (``--jobs 2`` wall <= serial wall x 1.25) instead of
demanding magic.

Usage::

    python benchmarks/bench_suite.py [--jobs N] [--scale S]
        [--repeats K] [--out PATH] [--check [BASELINE]]
        [--tolerance F]

``--scale`` sets ``REPRO_SCALE`` for every run; a baseline only
compares against measurements taken at the same scale and command.
Not a pytest file on purpose: it measures minutes of wall clock.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Payload format version of BENCH_repro.json itself.  Schema 2 moved
#: ``jobs`` into the ``engine`` block (it never applied to the headline
#: modes, which always run ``--jobs 1``) and added the ``backend``
#: mode.  Schema 3 added the ``scaling`` mode (parallel speedup at
#: ``--jobs {1,2,4}`` with the host core count).  Schema 4 added the
#: ``counters`` mode (interval counter sampling overhead).
BENCH_SCHEMA = 4

#: Relative wall-clock regression tolerated before --check fails.
DEFAULT_TOLERANCE = 0.15

#: Attribution may cost at most this much on top of tracing alone.
ATTRIBUTION_GATE = 0.05

#: Interval counter sampling may cost at most this much on top of the
#: plain headline run.
COUNTERS_GATE = 0.05

#: Sampling interval (committed instructions) the counters mode uses.
COUNTERS_INTERVAL = "5000"

#: Live telemetry (heartbeats + progress + /metrics) may cost at most
#: this much on top of the plain headline run.
TELEMETRY_GATE = 0.10

#: Sweep span recording may cost at most this much on top of the
#: telemetry run it piggybacks on.
SPANS_GATE = 0.05

#: The fast backend must beat the reference headline mean by at least
#: this factor (a conservative floor well under the measured speedup,
#: so CI noise does not flake the gate).
BACKEND_SPEEDUP_GATE = 3.0

#: Job counts the scaling mode measures.
SCALING_JOBS = (1, 2, 4)

#: With >= 2 cores, --jobs 2 must beat --jobs 1 by this factor.
SCALING_SPEEDUP_GATE = 1.5

#: On a single core a speedup is impossible; instead the parallel
#: machinery (pool, pickling, dispatch, mark traffic) may cost at most
#: this much on top of the serial wall clock.  Deliberately coarse: two
#: workers time-slicing one core add genuine scheduler overhead, and
#: the gate exists to catch pathological serialization, not noise.
SCALING_OVERHEAD_GATE = 0.25


def _strip_timing(output: str) -> str:
    return "\n".join(
        line for line in output.splitlines() if "regenerated in" not in line
    )


def _env(cache_dir: Path, scale: float, extra: dict[str, str] | None = None):
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_CACHE_DIR=str(cache_dir),
        REPRO_SCALE=str(scale),
    )
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_ATTRIBUTION", None)
    env.pop("REPRO_BACKEND", None)
    env.pop("REPRO_COUNTER_INTERVAL", None)
    if extra:
        env.update(extra)
    return env


def _run_all(jobs: int, cache_dir: Path, scale: float) -> tuple[float, str]:
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "all", "--jobs", str(jobs)],
        env=_env(cache_dir, scale),
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"repro all --jobs {jobs} exited {proc.returncode}")
    return elapsed, _strip_timing(proc.stdout)


def _run_headlines(
    cache_dir: Path,
    scale: float,
    extra_env: dict[str, str] | None = None,
    extra_args: list[str] | None = None,
    jobs: int = 1,
) -> tuple[float, str]:
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "headlines", "--jobs", str(jobs)]
        + (extra_args or []),
        env=_env(cache_dir, scale, extra_env),
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"repro headlines exited {proc.returncode}")
    return elapsed, proc.stdout


def _mode_stats(samples: list[float]) -> dict:
    return {
        "samples": [round(sample, 2) for sample in samples],
        "mean_seconds": round(statistics.fmean(samples), 3),
        "stddev_seconds": round(
            statistics.pstdev(samples) if len(samples) > 1 else 0.0, 3
        ),
    }


def measure(jobs: int, scale: float, repeats: int) -> dict:
    """Run the whole suite; returns the BENCH_repro.json payload."""
    with tempfile.TemporaryDirectory(prefix="bench-repro-") as tmp:
        tmp_path = Path(tmp)
        serial_seconds, serial_report = _run_all(1, tmp_path / "serial", scale)
        parallel_seconds, parallel_report = _run_all(
            jobs, tmp_path / "parallel", scale
        )
        warm_seconds, warm_report = _run_all(1, tmp_path / "parallel", scale)
        if parallel_report != serial_report:
            raise SystemExit("parallel report differs from serial report")
        if warm_report != parallel_report:
            raise SystemExit("warm report differs from cold report")

        headline: list[float] = []
        tracing: list[float] = []
        attribution: list[float] = []
        counters: list[float] = []
        telemetry: list[float] = []
        spanned: list[float] = []
        fast: list[float] = []
        reference_stdout: str | None = None
        for repeat in range(repeats):
            base = tmp_path / f"repeat{repeat}"
            trace_path = base / "events.jsonl.gz"
            elapsed, stdout = _run_headlines(base / "plain", scale)
            headline.append(elapsed)
            if reference_stdout is None:
                reference_stdout = stdout
            elif stdout != reference_stdout:
                raise SystemExit(
                    "headline stdout varies across repeats; the simulated "
                    "numbers are supposed to be deterministic"
                )
            tracing.append(
                _run_headlines(
                    base / "traced",
                    scale,
                    {"REPRO_TRACE": str(trace_path)},
                )[0]
            )
            attribution.append(
                _run_headlines(
                    base / "attributed",
                    scale,
                    {
                        "REPRO_TRACE": str(trace_path),
                        "REPRO_ATTRIBUTION": "1",
                    },
                )[0]
            )
            counters.append(
                _run_headlines(
                    base / "counters",
                    scale,
                    {"REPRO_COUNTER_INTERVAL": COUNTERS_INTERVAL},
                )[0]
            )
            telemetry.append(
                _run_headlines(
                    base / "telemetered",
                    scale,
                    extra_args=["--progress", "--serve-metrics", "0"],
                )[0]
            )
            spanned.append(
                _run_headlines(
                    base / "spanned",
                    scale,
                    extra_args=[
                        "--progress",
                        "--serve-metrics",
                        "0",
                        "--spans-out",
                        str(base / "spans.jsonl.gz"),
                    ],
                )[0]
            )
            elapsed, stdout = _run_headlines(
                base / "fast", scale, extra_args=["--backend", "fast"]
            )
            fast.append(elapsed)
            if stdout != reference_stdout:
                raise SystemExit(
                    "fast backend stdout differs from the reference "
                    "backend's -- backends must be bit-identical"
                )

        scaling_walls: dict[int, float] = {}
        scaling_stdout: str | None = None
        for n in SCALING_JOBS:
            elapsed, stdout = _run_headlines(
                tmp_path / f"scaling-jobs{n}",
                scale,
                extra_args=["--backend", "fast"],
                jobs=n,
            )
            scaling_walls[n] = elapsed
            if scaling_stdout is None:
                scaling_stdout = stdout
            elif stdout != scaling_stdout:
                raise SystemExit(
                    f"--jobs {n} stdout differs from --jobs "
                    f"{SCALING_JOBS[0]} -- parallel execution must be "
                    "bit-identical to serial"
                )

    headline_stats = _mode_stats(headline)
    tracing_stats = _mode_stats(tracing)
    attribution_stats = _mode_stats(attribution)
    counters_stats = _mode_stats(counters)
    counters_stats["interval"] = int(COUNTERS_INTERVAL)
    counters_stats["overhead_vs_headline"] = round(
        counters_stats["mean_seconds"] / headline_stats["mean_seconds"] - 1.0,
        3,
    )
    telemetry_stats = _mode_stats(telemetry)
    spans_stats = _mode_stats(spanned)
    backend_stats = _mode_stats(fast)
    backend_stats["command"] = (
        "python -m repro headlines --jobs 1 --backend fast"
    )
    backend_stats["speedup_vs_reference"] = round(
        headline_stats["mean_seconds"] / backend_stats["mean_seconds"], 2
    )
    backend_stats["outputs_identical"] = True
    telemetry_stats["overhead_vs_headline"] = round(
        telemetry_stats["mean_seconds"] / headline_stats["mean_seconds"] - 1.0,
        3,
    )
    spans_stats["overhead_vs_telemetry"] = round(
        spans_stats["mean_seconds"] / telemetry_stats["mean_seconds"] - 1.0,
        3,
    )
    tracing_stats["overhead_vs_headline"] = round(
        tracing_stats["mean_seconds"] / headline_stats["mean_seconds"] - 1.0, 3
    )
    attribution_stats["overhead_vs_tracing"] = round(
        attribution_stats["mean_seconds"] / tracing_stats["mean_seconds"] - 1.0,
        3,
    )
    cores = os.cpu_count() or 1
    serial_wall = scaling_walls[SCALING_JOBS[0]]
    scaling_stats = {
        "command": "python -m repro headlines --backend fast --jobs N",
        "cores": cores,
        "walls": {
            str(n): round(wall, 2) for n, wall in scaling_walls.items()
        },
        "speedups": {
            str(n): round(serial_wall / scaling_walls[n], 2)
            for n in SCALING_JOBS
        },
        "efficiency": {
            str(n): round(
                (serial_wall / scaling_walls[n]) / min(n, cores), 2
            )
            for n in SCALING_JOBS
        },
        "outputs_identical": True,
    }
    return {
        "schema": BENCH_SCHEMA,
        "command": "python -m repro headlines --jobs 1",
        "scale": scale,
        "repeats": repeats,
        "headline": headline_stats,
        "tracing": tracing_stats,
        "attribution": attribution_stats,
        "counters": counters_stats,
        "telemetry": telemetry_stats,
        "spans": spans_stats,
        "backend": backend_stats,
        "scaling": scaling_stats,
        "engine": {
            "command": f"python -m repro all --jobs {jobs}",
            "jobs": jobs,
            "serial_seconds": round(serial_seconds, 2),
            "parallel_seconds": round(parallel_seconds, 2),
            "warm_seconds": round(warm_seconds, 2),
            "speedup": round(serial_seconds / parallel_seconds, 2),
            "warm_fraction": round(warm_seconds / parallel_seconds, 3),
            "reports_identical": True,
        },
    }


def compare_payloads(
    fresh: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    attribution_gate: float = ATTRIBUTION_GATE,
    counters_gate: float = COUNTERS_GATE,
    telemetry_gate: float = TELEMETRY_GATE,
    spans_gate: float = SPANS_GATE,
    backend_gate: float = BACKEND_SPEEDUP_GATE,
    scaling_gate: float = SCALING_SPEEDUP_GATE,
    scaling_overhead_gate: float = SCALING_OVERHEAD_GATE,
) -> list[str]:
    """Regression check; returns human-readable failures (empty == pass).

    Wall-clock means are compared mode by mode against the baseline
    with a relative ``tolerance``; the attribution-over-tracing and
    telemetry-over-headline overheads, the fast-backend speedup and
    the parallel-scaling gate are absolute properties of the fresh
    run, gated regardless of what the baseline recorded (so a baseline
    from before a mode existed still compares).  The scaling gate uses
    the fresh run's own core count: multi-core hosts must show the
    ``--jobs 2`` speedup, a single-core host must show the parallel
    path costing no more than ``scaling_overhead_gate`` over serial.
    """
    failures: list[str] = []
    for field in ("schema", "scale", "command"):
        if fresh.get(field) != baseline.get(field):
            failures.append(
                f"baseline mismatch: {field} is {baseline.get(field)!r} "
                f"in the baseline but {fresh.get(field)!r} in this run -- "
                "regenerate the baseline with the same parameters"
            )
    if failures:
        return failures
    for mode in ("headline", "tracing", "attribution"):
        fresh_mean = fresh[mode]["mean_seconds"]
        base_mean = baseline[mode]["mean_seconds"]
        limit = base_mean * (1.0 + tolerance)
        if fresh_mean > limit:
            failures.append(
                f"{mode} regressed: {fresh_mean:.2f}s vs baseline "
                f"{base_mean:.2f}s (>{tolerance:.0%} over)"
            )
    overhead = fresh["attribution"]["overhead_vs_tracing"]
    if overhead > attribution_gate:
        failures.append(
            f"attribution overhead {overhead:.1%} vs tracing exceeds "
            f"the {attribution_gate:.0%} gate"
        )
    counters_overhead = fresh.get("counters", {}).get("overhead_vs_headline")
    if counters_overhead is not None and counters_overhead > counters_gate:
        failures.append(
            f"counter-sampling overhead {counters_overhead:.1%} vs headline "
            f"exceeds the {counters_gate:.0%} gate"
        )
    telemetry_overhead = fresh.get("telemetry", {}).get("overhead_vs_headline")
    if telemetry_overhead is not None and telemetry_overhead > telemetry_gate:
        failures.append(
            f"telemetry overhead {telemetry_overhead:.1%} vs headline "
            f"exceeds the {telemetry_gate:.0%} gate"
        )
    spans_overhead = fresh.get("spans", {}).get("overhead_vs_telemetry")
    if spans_overhead is not None and spans_overhead > spans_gate:
        failures.append(
            f"spans overhead {spans_overhead:.1%} vs telemetry exceeds "
            f"the {spans_gate:.0%} gate"
        )
    speedup = fresh.get("backend", {}).get("speedup_vs_reference")
    if speedup is not None and speedup < backend_gate:
        failures.append(
            f"fast backend speedup {speedup:.2f}x over reference is below "
            f"the {backend_gate:.1f}x gate"
        )
    scaling = fresh.get("scaling")
    if scaling:
        cores = scaling.get("cores") or 1
        walls = scaling.get("walls", {})
        serial_wall = walls.get("1")
        jobs2_wall = walls.get("2")
        jobs2_speedup = scaling.get("speedups", {}).get("2")
        if cores >= 2:
            if jobs2_speedup is not None and jobs2_speedup < scaling_gate:
                failures.append(
                    f"--jobs 2 speedup {jobs2_speedup:.2f}x on a "
                    f"{cores}-core host is below the "
                    f"{scaling_gate:.1f}x gate"
                )
        elif serial_wall and jobs2_wall:
            limit = serial_wall * (1.0 + scaling_overhead_gate)
            if jobs2_wall > limit:
                failures.append(
                    f"--jobs 2 wall {jobs2_wall:.2f}s on a single-core "
                    f"host exceeds serial {serial_wall:.2f}s by more "
                    f"than the {scaling_overhead_gate:.0%} overhead gate"
                )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repeats per headline mode (minimum 3 for a stddev worth printing)",
    )
    parser.add_argument("--out", type=Path, default=REPO / "BENCH_repro.json")
    parser.add_argument(
        "--check",
        nargs="?",
        const=str(REPO / "BENCH_repro.json"),
        default=None,
        metavar="BASELINE",
        help=(
            "compare this run against BASELINE (default: the committed "
            "BENCH_repro.json) and exit 1 on regression"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative wall-clock slack for --check (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args()
    if args.repeats < 3:
        parser.error(f"--repeats must be >= 3, got {args.repeats}")

    baseline = None
    if args.check is not None:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            parser.error(f"baseline {baseline_path} does not exist")
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    payload = measure(args.jobs, args.scale, args.repeats)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))

    if baseline is not None:
        failures = compare_payloads(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf check passed (tolerance {args.tolerance:.0%}, "
            f"attribution gate {ATTRIBUTION_GATE:.0%}, "
            f"counters gate {COUNTERS_GATE:.0%}, "
            f"telemetry gate {TELEMETRY_GATE:.0%}, "
            f"spans gate {SPANS_GATE:.0%}, "
            f"backend gate {BACKEND_SPEEDUP_GATE:.1f}x, "
            f"scaling gate {SCALING_SPEEDUP_GATE:.1f}x on multi-core / "
            f"{SCALING_OVERHEAD_GATE:.0%} overhead on one core)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
