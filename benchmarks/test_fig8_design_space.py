"""Bench: regenerate Figure 8 (IPC vs size for the full design space)."""

from conftest import run_once

from repro.core import figure8
from repro.core.reporting import render_figure8
from repro.workloads import REPRESENTATIVES

K = 1024


def test_figure8_design_space(benchmark, publish, settings):
    data = run_once(
        benchmark, lambda: figure8(REPRESENTATIVES, settings=settings)
    )
    publish("figure8", render_figure8(data))

    def series(name, style, hit):
        return dict(data[name][(style, hit)])

    # IPC grows (weakly) with cache size for the average curves.
    avg = series("average", "duplicate", 1)
    assert avg[1024 * K] >= avg[4 * K]

    # database gains the most from large caches (big working set).
    db = series("database", "duplicate", 1)
    gcc = series("gcc", "duplicate", 1)
    assert db[1024 * K] / db[4 * K] > gcc[1024 * K] / gcc[4 * K]

    # With line buffers everywhere, duplicate is competitive with
    # eight-way banked on average (the paper's section 4.4 flip).
    avg_banked = series("average", "banked", 1)
    for size in (32 * K, 256 * K):
        assert avg[size] >= avg_banked[size] * 0.97

    # Pipelined caches trail single-cycle caches at fixed clock.
    avg2 = series("average", "duplicate", 2)
    assert avg2[32 * K] <= avg[32 * K] * 1.02

    # The DRAM point sits below the best SRAM configurations on average
    # for the database-style workloads that motivated the L2.
    dram_ipc = data["database"][("dram", 6)][0][1]
    assert dram_ipc < db[1024 * K]
