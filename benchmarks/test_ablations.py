"""Ablation benches: quantify the design choices the paper holds fixed.

DESIGN.md calls these out: MSHR depth [Fark94], line-buffer size
[Wils96], associativity (section 4.4's Jouppi-Wilton comparison via
[Henn96]), bank interleaving, write policy [Joup93], and the victim
cache [Joup90] as an alternative to the line buffer.
"""

from conftest import run_once

from repro.core.sweeps import (
    associativity_sweep,
    bank_interleave_sweep,
    direct_mapped_equivalence,
    line_buffer_size_sweep,
    mshr_sweep,
    victim_vs_line_buffer,
    write_policy_sweep,
)


def test_mshr_depth(benchmark, publish, settings):
    """Four MSHRs capture most of the memory-level parallelism."""
    data = run_once(benchmark, lambda: mshr_sweep("database", settings=settings))
    lines = ["MSHR ablation (database, 32K duplicate + LB)"]
    lines += [f"  {n} MSHRs: IPC={ipc:.3f}" for n, ipc in sorted(data.items())]
    publish("ablation_mshr", "\n".join(lines))

    assert data[2] >= data[1] * 0.99  # more MSHRs never hurt
    assert data[4] >= data[2] * 0.99
    gain_1_to_4 = data[4] - data[1]
    gain_4_to_8 = data[8] - data[4]
    assert gain_4_to_8 <= max(gain_1_to_4, 0.02)  # diminishing returns


def test_line_buffer_size(benchmark, publish, settings):
    """Hit rate grows with entries; 32 entries sits near the knee."""
    data = run_once(
        benchmark, lambda: line_buffer_size_sweep("gcc", settings=settings)
    )
    lines = ["Line-buffer size ablation (gcc, 32K duplicate)"]
    lines += [
        f"  {n:3d} entries: IPC={ipc:.3f} LB hit rate={rate:.1%}"
        for n, (ipc, rate) in sorted(data.items())
    ]
    publish("ablation_lb_size", "\n".join(lines))

    rates = [rate for _, (_, rate) in sorted(data.items())]
    assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
    # The knee: 4 -> 32 entries gains much more hit rate than 32 -> 64.
    assert (data[32][1] - data[4][1]) > (data[64][1] - data[32][1]) - 0.01


def test_associativity(benchmark, publish, settings):
    """Two-way beats direct-mapped at equal size (fewer conflicts)."""
    data = run_once(
        benchmark, lambda: associativity_sweep("gcc", settings=settings)
    )
    lines = ["Associativity ablation (gcc, duplicate cache): miss rates"]
    for (size, assoc), miss in sorted(data.items()):
        lines.append(f"  {size // 1024:3d}K {assoc}-way: {miss:.2%}")
    publish("ablation_assoc", "\n".join(lines))

    for size in {key[0] for key in data}:
        assert data[(size, 2)] <= data[(size, 1)] * 1.05
        assert data[(size, 4)] <= data[(size, 2)] * 1.10


def test_direct_mapped_equivalence(benchmark, publish, settings):
    """[Henn96]: 2-way of size S ~ direct-mapped of size 2S."""
    data = run_once(
        benchmark, lambda: direct_mapped_equivalence("gcc", settings=settings)
    )
    publish(
        "ablation_dm_equivalence",
        "Direct-mapped equivalence (gcc):\n"
        + "\n".join(f"  {k}: miss rate {v:.2%}" for k, v in data.items()),
    )
    # The 2-way S cache should land at or below direct-mapped S, and in
    # the neighborhood of direct-mapped 2S.
    assert data["twoway_S"] <= data["direct_S"] * 1.05
    assert data["twoway_S"] <= data["direct_S"]  * 1.05
    assert abs(data["twoway_S"] - data["direct_2S"]) <= max(
        0.02, 0.6 * data["direct_S"]
    )


def test_bank_interleaving(benchmark, publish, settings):
    """Line interleaving beats page interleaving for streaming codes."""
    data = run_once(
        benchmark, lambda: bank_interleave_sweep("tomcatv", settings=settings)
    )
    publish(
        "ablation_interleave",
        "Bank interleaving (tomcatv, 8-way banked + LB):\n"
        + "\n".join(f"  {k}: IPC={v[0]:.3f}" for k, v in data.items()),
    )
    assert data["line"][0] >= data["page"][0] * 0.98


def test_write_policy(benchmark, publish, settings):
    """Write-back is never worse than write-through on these workloads
    (stores are buffered, but write-through burns chip-bus bandwidth)."""
    data = run_once(
        benchmark, lambda: write_policy_sweep("gcc", settings=settings)
    )
    publish(
        "ablation_write_policy",
        "Write policy (gcc, 32K duplicate + LB):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in data.items()),
    )
    assert data["write-back"] >= data["write-through"] * 0.97


def test_victim_cache_vs_line_buffer(benchmark, publish, settings):
    """Both small buffers help a conflict-prone 8 KB cache; they
    compose (the LB saves ports, the VC saves miss latency)."""
    data = run_once(
        benchmark, lambda: victim_vs_line_buffer("gcc", settings=settings)
    )
    publish(
        "ablation_victim",
        "Victim cache vs line buffer (gcc, 8K duplicate):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in data.items()),
    )
    assert data["line-buffer"] >= data["plain"] * 0.99
    assert data["victim-cache"] >= data["plain"] * 0.99
    assert data["both"] >= max(data["line-buffer"], data["victim-cache"]) * 0.98


def test_next_line_prefetch(benchmark, publish, settings):
    """A negative result worth documenting: naive next-line prefetch
    *into the L1* loses in this memory system.

    For sequential codes the mechanism works (tomcatv's demand miss
    rate roughly halves) but the chip bus is already near saturation,
    so prefetch transfers delay demand fills; for random-access codes
    (database) prefetches are pure pollution plus stolen MSHR/bus
    capacity.  This is precisely why [Joup90] placed prefetches in
    dedicated stream buffers beside the cache rather than in it -- and
    why the paper's line buffer (which adds *no* memory traffic) is the
    better port-bandwidth remedy here.
    """
    from dataclasses import replace as dreplace

    from repro.core import duplicate, run_experiment
    from repro.core.sweeps import prefetch_sweep

    def run():
        data = prefetch_sweep(settings=settings)
        base = duplicate(32 * 1024, line_buffer=True)
        miss = {}
        for name in data:
            off = run_experiment(base, name, settings)
            on = run_experiment(
                dreplace(base, next_line_prefetch=True), name, settings
            )
            miss[name] = (off.memory.l1_miss_rate, on.memory.l1_miss_rate)
        return data, miss

    data, miss = run_once(benchmark, run)
    lines = ["Next-line prefetch ablation (32K duplicate + LB)"]
    for name, cells in data.items():
        delta = cells["on"] / cells["off"] - 1
        lines.append(
            f"  {name}: IPC {cells['off']:.3f} -> {cells['on']:.3f} ({delta:+.1%}); "
            f"L1 miss {miss[name][0]:.1%} -> {miss[name][1]:.1%}"
        )
    lines.append("  (prefetch-into-L1 trades bandwidth it does not have)")
    publish("ablation_prefetch", "\n".join(lines))

    # The mechanism works for streams: tomcatv's miss rate drops a lot.
    assert miss["tomcatv"][1] < miss["tomcatv"][0] * 0.7
    # ...but IPC does not improve: the system is bandwidth-bound.
    assert data["tomcatv"]["on"] <= data["tomcatv"]["off"] * 1.02
    # Random-access traffic sees no miss benefit and clear IPC loss.
    assert miss["database"][1] > miss["database"][0] * 0.9
    assert data["database"]["on"] < data["database"]["off"]


def test_window_size(benchmark, publish, settings):
    """A bigger instruction window hides more multi-cycle-hit latency."""
    from repro.core.sweeps import window_size_sweep

    data = run_once(
        benchmark, lambda: window_size_sweep("tomcatv", settings=settings)
    )
    publish(
        "ablation_window",
        "Window-size ablation (tomcatv, 3-cycle 32K duplicate + LB):\n"
        + "\n".join(f"  {w:4d} entries: IPC={v:.3f}" for w, v in sorted(data.items())),
    )
    assert data[64] >= data[16]  # the paper's window beats a small one
    assert data[128] >= data[64] * 0.98  # diminishing returns beyond


def test_issue_width(benchmark, publish, settings):
    """Machine width scales IPC sub-linearly (memory system limits)."""
    from repro.core.sweeps import issue_width_sweep

    data = run_once(
        benchmark, lambda: issue_width_sweep("tomcatv", settings=settings)
    )
    publish(
        "ablation_width",
        "Issue-width ablation (tomcatv, 32K duplicate + LB):\n"
        + "\n".join(f"  {w}-wide: IPC={v:.3f}" for w, v in sorted(data.items())),
    )
    assert data[2] > data[1]
    assert data[4] > data[2]
    # sub-linear: doubling 4 -> 8 gains less than 2 -> 4 did
    assert (data[8] - data[4]) < (data[4] - data[2]) + 0.02
