"""Bench: regenerate Figure 4 (ideal multi-cycle multi-ported caches)."""

from conftest import run_once

from repro.core import figure4
from repro.core.reporting import render_ipc_grid
from repro.workloads import REPRESENTATIVES


def test_figure4_ideal_ports(benchmark, publish, settings):
    data = run_once(
        benchmark, lambda: figure4(REPRESENTATIVES, settings=settings)
    )
    publish(
        "figure4",
        render_ipc_grid(
            data, "ports", "Figure 4: ideal multi-cycle multi-ported 32 KB caches"
        ),
    )

    for name in REPRESENTATIVES:
        cells = data[name]
        # Adding the second port helps; third and fourth add little.
        assert cells[(2, 1)] >= cells[(1, 1)]
        gain_12 = cells[(2, 1)] - cells[(1, 1)]
        gain_34 = cells[(4, 1)] - cells[(3, 1)]
        assert gain_34 <= gain_12 + 1e-6
        # Deeper hit pipelines never help at fixed clock.
        for ports in (1, 2, 3, 4):
            assert cells[(ports, 2)] <= cells[(ports, 1)] * 1.02
            assert cells[(ports, 3)] <= cells[(ports, 2)] * 1.02

    # Integer codes suffer much more from pipelining than FP codes.
    def stage_loss(name):
        return 1 - data[name][(2, 3)] / data[name][(2, 1)]

    assert stage_loss("gcc") > 2.5 * stage_loss("tomcatv")
    # tomcatv has the highest IPC (abundant ILP).
    assert data["tomcatv"][(2, 1)] > data["gcc"][(2, 1)]
    assert data["gcc"][(2, 1)] > data["database"][(2, 1)]
