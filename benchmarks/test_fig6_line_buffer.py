"""Bench: regenerate Figure 6 (line buffer with banked/duplicate caches)."""

from conftest import run_once

from repro.core import figure6
from repro.core.reporting import render_figure6
from repro.workloads import REPRESENTATIVES


def test_figure6_line_buffer(benchmark, publish, settings):
    data = run_once(
        benchmark, lambda: figure6(REPRESENTATIVES, settings=settings)
    )
    publish("figure6", render_figure6(data))

    for name in REPRESENTATIVES:
        cells = data[name]
        # The line buffer never hurts, for either organization and any
        # hit time (paper: "machine performance is always increased").
        for style in ("banked", "duplicate"):
            for hit in (1, 2, 3):
                assert cells[(style, True, hit)] >= cells[(style, False, hit)] * 0.99

    # The LB helps the two-ported duplicate cache more than the
    # eight-way banked cache (less port pressure to relieve there).
    def gain(name, style):
        return data[name][(style, True, 1)] / data[name][(style, False, 1)] - 1

    avg_dup = sum(gain(n, "duplicate") for n in REPRESENTATIVES) / 3
    avg_banked = sum(gain(n, "banked") for n in REPRESENTATIVES) / 3
    assert avg_dup >= avg_banked - 0.005

    # With the LB, the duplicate cache catches/overtakes the banked one.
    for name in REPRESENTATIVES:
        assert (
            data[name][("duplicate", True, 1)]
            >= data[name][("banked", True, 1)] * 0.97
        )

    # The LB recovers part of the pipelining loss for integer codes.
    gcc = data["gcc"]
    drop_plain = gcc[("duplicate", False, 1)] - gcc[("duplicate", False, 3)]
    drop_lb = gcc[("duplicate", True, 1)] - gcc[("duplicate", True, 3)]
    assert drop_lb < drop_plain
