"""Bench: regenerate Figure 3 (misses per instruction vs cache size)."""

from conftest import run_once

from repro.analysis import monotone_non_increasing, render_miss_rate_chart
from repro.core import figure3
from repro.core.reporting import render_figure3
from repro.workloads import BENCHMARKS


def test_figure3_miss_rate_curves(benchmark, publish):
    curves = run_once(
        benchmark,
        lambda: figure3(
            instructions=250_000,
            warmup_instructions=300_000,
            benchmarks=tuple(BENCHMARKS),
        ),
    )
    chart = render_miss_rate_chart(
        curves, ["gcc", "tomcatv", "database"],
        title="Figure 3 (chart): gcc vs tomcatv vs database",
    )
    publish("figure3", render_figure3(curves) + "\n\n" + chart)

    at = {
        name: {size: miss for size, miss in series}
        for name, series in curves.items()
    }
    K = 1024

    # Curves decline (allowing simulation jitter).
    for name, series in curves.items():
        values = [miss for _, miss in series]
        assert monotone_non_increasing(values, tolerance=0.003), name

    # Group ordering at small sizes: integer lowest, multiprogramming
    # and floating point much larger (paper, section 4).
    for integer in ("gcc", "li"):
        for big in ("tomcatv", "database", "VCS", "apsi"):
            assert at[integer][8 * K] < at[big][8 * K]

    # Floating point codes drop radically once their arrays fit.
    assert at["tomcatv"][512 * K] < at["tomcatv"][128 * K] / 5
    assert at["su2cor"][256 * K] < at["su2cor"][64 * K] / 5
    assert at["apsi"][128 * K] < at["apsi"][32 * K] / 5

    # Multiprogramming keeps missing even at 1 MB.
    assert at["database"][1024 * K] > 0.01
    assert at["VCS"][1024 * K] > 0.005

    # Integer benchmarks essentially fit by 1 MB.
    assert at["gcc"][1024 * K] < 0.01
    assert at["li"][1024 * K] < 0.005
