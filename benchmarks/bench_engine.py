"""Wall-clock benchmark of the execution engine: serial vs parallel vs warm.

Runs ``python -m repro all`` three times as subprocesses --

1. **serial** (``--jobs 1``) against an empty result store,
2. **parallel** (``--jobs N``) against another empty store,
3. **warm** (``--jobs 1``) reusing the parallel run's store --

and writes ``BENCH_engine.json`` with the three wall times, the
parallel speedup, and the warm-over-cold fraction.  Also diffs the
three reports (timing footer lines stripped) to prove the engine keeps
output byte-identical across execution strategies.

A fourth pair of runs measures the observability layer: ``headlines``
with tracing disabled vs with a full JSONL event trace (``REPRO_TRACE``),
each against an empty store so both actually simulate.  The disabled
run IS the production path -- its wall time backs the "tracing adds
nothing when off" claim -- and the enabled ratio shows what a full
event stream costs when you ask for one.

Usage::

    python benchmarks/bench_engine.py [--jobs N] [--scale S] [--out PATH]

``--scale`` sets ``REPRO_SCALE`` for all runs (default 1).  Not a
pytest file on purpose: it measures minutes of wall clock.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def _strip_timing(output: str) -> str:
    return "\n".join(
        line for line in output.splitlines() if "regenerated in" not in line
    )


def _run(jobs: int, cache_dir: Path, scale: float) -> tuple[float, str]:
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_CACHE_DIR=str(cache_dir),
        REPRO_SCALE=str(scale),
    )
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "all", "--jobs", str(jobs)],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"repro all --jobs {jobs} exited {proc.returncode}")
    return elapsed, _strip_timing(proc.stdout)


def _run_headlines(
    cache_dir: Path, scale: float, trace_path: Path | None = None
) -> tuple[float, int]:
    """Time ``repro headlines`` against an empty store; returns wall
    seconds and the number of events traced (0 when tracing is off)."""
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_CACHE_DIR=str(cache_dir),
        REPRO_SCALE=str(scale),
    )
    if trace_path is not None:
        env["REPRO_TRACE"] = str(trace_path)
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "headlines", "--jobs", "1"],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"repro headlines exited {proc.returncode}")
    events = 0
    if trace_path is not None:
        with trace_path.open(encoding="utf-8") as lines:
            events = sum(1 for _ in lines)
    return elapsed, events


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--out", type=Path, default=REPO / "BENCH_engine.json"
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bench-engine-") as tmp:
        tmp_path = Path(tmp)
        serial_seconds, serial_report = _run(1, tmp_path / "serial", args.scale)
        parallel_seconds, parallel_report = _run(
            args.jobs, tmp_path / "parallel", args.scale
        )
        warm_seconds, warm_report = _run(1, tmp_path / "parallel", args.scale)
        untraced_seconds, _ = _run_headlines(tmp_path / "untraced", args.scale)
        traced_seconds, traced_events = _run_headlines(
            tmp_path / "traced", args.scale, trace_path=tmp_path / "events.jsonl"
        )

    if parallel_report != serial_report:
        raise SystemExit("parallel report differs from serial report")
    if warm_report != parallel_report:
        raise SystemExit("warm report differs from cold report")

    payload = {
        "command": "python -m repro all",
        "scale": args.scale,
        "jobs": args.jobs,
        "serial_seconds": round(serial_seconds, 2),
        "parallel_seconds": round(parallel_seconds, 2),
        "warm_seconds": round(warm_seconds, 2),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "warm_fraction": round(warm_seconds / parallel_seconds, 3),
        "reports_identical": True,
        "tracing": {
            "command": "python -m repro headlines --jobs 1",
            "disabled_seconds": round(untraced_seconds, 2),
            "enabled_seconds": round(traced_seconds, 2),
            "enabled_overhead": round(
                traced_seconds / untraced_seconds - 1.0, 3
            ),
            "events_traced": traced_events,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
