"""Wall-clock benchmark of the execution engine: serial vs parallel vs warm.

Runs ``python -m repro all`` three times as subprocesses --

1. **serial** (``--jobs 1``) against an empty result store,
2. **parallel** (``--jobs N``) against another empty store,
3. **warm** (``--jobs 1``) reusing the parallel run's store --

and writes ``BENCH_engine.json`` with the three wall times, the
parallel speedup, and the warm-over-cold fraction.  Also diffs the
three reports (timing footer lines stripped) to prove the engine keeps
output byte-identical across execution strategies.

Usage::

    python benchmarks/bench_engine.py [--jobs N] [--scale S] [--out PATH]

``--scale`` sets ``REPRO_SCALE`` for all runs (default 1).  Not a
pytest file on purpose: it measures minutes of wall clock.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def _strip_timing(output: str) -> str:
    return "\n".join(
        line for line in output.splitlines() if "regenerated in" not in line
    )


def _run(jobs: int, cache_dir: Path, scale: float) -> tuple[float, str]:
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_CACHE_DIR=str(cache_dir),
        REPRO_SCALE=str(scale),
    )
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "all", "--jobs", str(jobs)],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"repro all --jobs {jobs} exited {proc.returncode}")
    return elapsed, _strip_timing(proc.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--out", type=Path, default=REPO / "BENCH_engine.json"
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bench-engine-") as tmp:
        tmp_path = Path(tmp)
        serial_seconds, serial_report = _run(1, tmp_path / "serial", args.scale)
        parallel_seconds, parallel_report = _run(
            args.jobs, tmp_path / "parallel", args.scale
        )
        warm_seconds, warm_report = _run(1, tmp_path / "parallel", args.scale)

    if parallel_report != serial_report:
        raise SystemExit("parallel report differs from serial report")
    if warm_report != parallel_report:
        raise SystemExit("warm report differs from cold report")

    payload = {
        "command": "python -m repro all",
        "scale": args.scale,
        "jobs": args.jobs,
        "serial_seconds": round(serial_seconds, 2),
        "parallel_seconds": round(parallel_seconds, 2),
        "warm_seconds": round(warm_seconds, 2),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "warm_fraction": round(warm_seconds / parallel_seconds, 3),
        "reports_identical": True,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
