"""White-box tests for the cacti model's organization search."""

import pytest

from repro.timing import access_time
from repro.timing.cacti import (
    ArrayOrganization,
    CacheGeometryError,
    _organization_delay_ns,
    _search_organizations,
    _subarray_geometry,
)
from repro.timing.process import DEFAULT_PROCESS


class TestSubarrayGeometry:
    def test_monolithic_8k(self):
        rows, cols = _subarray_geometry(
            8192, 2, 32, ArrayOrganization(1, 1, 1)
        )
        assert rows == 8192 / (32 * 2)
        assert cols == 8 * 32 * 2

    def test_splitting_halves_dimensions(self):
        base_rows, base_cols = _subarray_geometry(
            8192, 2, 32, ArrayOrganization(1, 1, 1)
        )
        rows, cols = _subarray_geometry(8192, 2, 32, ArrayOrganization(2, 2, 1))
        assert rows == base_rows / 2
        assert cols == base_cols / 2

    def test_nspd_trades_rows_for_columns(self):
        rows1, cols1 = _subarray_geometry(
            8192, 2, 32, ArrayOrganization(1, 1, 1)
        )
        rows2, cols2 = _subarray_geometry(
            8192, 2, 32, ArrayOrganization(1, 1, 2)
        )
        assert rows2 == rows1 / 2 and cols2 == cols1 * 2

    def test_degenerate_rejected(self):
        with pytest.raises(CacheGeometryError):
            _subarray_geometry(4096, 2, 32, ArrayOrganization(1, 32, 4))


class TestDelayModel:
    def test_more_rows_slower_bitlines(self):
        small = _organization_delay_ns(
            8192, 2, 32, ArrayOrganization(1, 2, 1), DEFAULT_PROCESS
        )
        large = _organization_delay_ns(
            65536, 2, 32, ArrayOrganization(1, 2, 1), DEFAULT_PROCESS
        )
        assert large > small

    def test_search_finds_no_worse_than_monolithic(self):
        org, best = _search_organizations(65536, 2, 32, 1, DEFAULT_PROCESS)
        monolithic = _organization_delay_ns(
            65536, 2, 32, ArrayOrganization(1, 1, 1), DEFAULT_PROCESS
        )
        assert best <= monolithic

    def test_min_banks_constrains_search(self):
        org, _ = _search_organizations(4096, 2, 32, 8, DEFAULT_PROCESS)
        assert org.subarrays >= 8

    def test_impossible_constraint_raises(self):
        with pytest.raises(CacheGeometryError):
            # 33 > MAX_SUBARRAYS leaves an empty design space.
            _search_organizations(8192, 2, 32, 33, DEFAULT_PROCESS)


class TestAccessTimeVariants:
    def test_higher_associativity_never_faster(self):
        for size in (8192, 65536):
            two = access_time(size, associativity=2).access_fo4
            eight = access_time(size, associativity=8).access_fo4
            assert eight >= two - 0.5  # comparator grows with ways

    def test_result_carries_organization(self):
        result = access_time(64 * 1024)
        assert result.organization.subarrays >= 1
        assert result.access_ns == pytest.approx(result.access_fo4 * 0.2)

    def test_block_size_variant_valid(self):
        result = access_time(16 * 1024, block_bytes=64)
        assert result.access_fo4 > 0
