"""Tests for the cacti-style access-time model (Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timing import (
    FIGURE1_SIZES,
    CacheGeometryError,
    access_time,
    banked_access_fo4,
    duplicate_access_fo4,
    figure1_curves,
    single_ported_access_fo4,
)
from repro.timing.cacti import MAX_SUBARRAYS, PAPER_ANCHORS


class TestPaperAnchors:
    """The model must hit the access times the paper states explicitly."""

    def test_8k_is_25_fo4(self):
        assert single_ported_access_fo4(8 * 1024) == pytest.approx(25.0, abs=0.2)

    def test_512k_is_1_67_cycles(self):
        """Section 2.2: a 512 KB cache is accessed in 1.67 x 25 FO4."""
        assert single_ported_access_fo4(512 * 1024) == pytest.approx(41.75, abs=0.3)

    def test_1m_is_2_20_cycles(self):
        """Section 2.2: a 1 MB cache is accessed in 2.20 x 25 FO4."""
        assert single_ported_access_fo4(1024 * 1024) == pytest.approx(55.0, abs=0.5)

    def test_64k_fits_29_fo4_cycle(self):
        """Section 4.4: 29 FO4 accommodates a one-cycle 64 KB cache."""
        assert single_ported_access_fo4(64 * 1024) <= 29.0 + 1e-6

    def test_all_anchors(self):
        for size, target in PAPER_ANCHORS:
            assert single_ported_access_fo4(size) == pytest.approx(target, rel=0.02)


class TestFigure1Shape:
    def test_single_ported_monotone_in_size(self):
        fo4s = [single_ported_access_fo4(s) for s in FIGURE1_SIZES]
        assert fo4s == sorted(fo4s)

    def test_banked_monotone_in_size(self):
        fo4s = [banked_access_fo4(s) for s in FIGURE1_SIZES]
        assert fo4s == sorted(fo4s)

    def test_banked_slower_below_16k(self):
        """Figure 1: eight-way banking hurts small caches."""
        for size in (4 * 1024, 8 * 1024):
            assert banked_access_fo4(size) > single_ported_access_fo4(size)

    def test_banked_equal_at_16k_and_above(self):
        """Caches >= 16 KB are already eight-way banked internally."""
        for size in FIGURE1_SIZES:
            if size >= 16 * 1024:
                assert banked_access_fo4(size) == pytest.approx(
                    single_ported_access_fo4(size)
                )

    def test_internal_banking_emerges_at_16k(self):
        """The unconstrained optimum has >= 8 sub-arrays at >= 16 KB."""
        assert access_time(4 * 1024).organization.subarrays < 8
        for size in (16 * 1024, 64 * 1024, 1024 * 1024):
            assert access_time(size).organization.subarrays >= 8

    def test_duplicate_cache_uses_single_ported_times(self):
        """Section 2.1: duplicate caches keep single-ported access time."""
        for size in FIGURE1_SIZES:
            assert duplicate_access_fo4(size) == single_ported_access_fo4(size)

    def test_figure1_curves_structure(self):
        curves = figure1_curves()
        assert set(curves) == {"single_ported", "eight_way_banked"}
        for points in curves.values():
            assert [s for s, _ in points] == list(FIGURE1_SIZES)

    def test_subarray_limit_respected(self):
        """The paper's modified cacti allows at most 32 sub-arrays."""
        for size in FIGURE1_SIZES:
            assert access_time(size).organization.subarrays <= MAX_SUBARRAYS


class TestInputValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(CacheGeometryError):
            access_time(10_000)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(CacheGeometryError):
            access_time(0)

    def test_rejects_bad_associativity(self):
        with pytest.raises(CacheGeometryError):
            access_time(8192, associativity=0)

    def test_rejects_bad_min_banks(self):
        with pytest.raises(CacheGeometryError):
            access_time(8192, min_banks=0)


class TestProperties:
    @given(st.integers(min_value=12, max_value=20))
    def test_more_banks_never_faster(self, log_size):
        size = 2**log_size
        assert banked_access_fo4(size) >= single_ported_access_fo4(size) - 1e-9

    @given(st.integers(min_value=12, max_value=19))
    def test_doubling_size_never_faster(self, log_size):
        assert single_ported_access_fo4(2 ** (log_size + 1)) >= (
            single_ported_access_fo4(2**log_size) - 1e-9
        )

    @given(
        st.integers(min_value=12, max_value=20),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_access_time_positive_and_finite(self, log_size, assoc):
        result = access_time(2**log_size, associativity=assoc)
        assert 0 < result.access_fo4 < 200
        assert result.raw_ns > 0
