"""Tests for pipeline-depth / cycle-time / cache-size trade-offs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timing import (
    design_points,
    fits_in_cycles,
    max_cache_size,
    pipelined_access_fo4,
    required_depth,
    single_ported_access_fo4,
)


class TestLatchOverhead:
    def test_depth_one_adds_nothing(self):
        assert pipelined_access_fo4(40.0, 1) == pytest.approx(40.0)

    def test_each_stage_adds_1_5_fo4(self):
        """Section 2.2: each pipeline latch costs 1.5 FO4."""
        assert pipelined_access_fo4(40.0, 2) == pytest.approx(41.5)
        assert pipelined_access_fo4(40.0, 3) == pytest.approx(43.0)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            pipelined_access_fo4(40.0, 0)


class TestRequiredDepth:
    def test_paper_512k_two_cycles_at_25_fo4(self):
        """Section 2.2: 512 KB pipelines into two 25 FO4 cycles."""
        access = single_ported_access_fo4(512 * 1024)
        assert required_depth(access, 25.0) == 2

    def test_paper_1m_three_cycles_at_25_fo4(self):
        """Section 2.2: a 1 MB cache needs a three-cycle hit time."""
        access = single_ported_access_fo4(1024 * 1024)
        assert required_depth(access, 25.0) == 3

    def test_8k_single_cycle_at_25_fo4(self):
        assert required_depth(single_ported_access_fo4(8 * 1024), 25.0) == 1

    def test_none_when_too_slow(self):
        assert required_depth(100.0, 10.0, max_depth=3) is None

    def test_fits_rejects_nonpositive_cycle(self):
        with pytest.raises(ValueError):
            fits_in_cycles(25.0, 1, 0.0)


class TestMaxCacheSize:
    def test_29_fo4_fits_64k_single_cycle(self):
        """Section 4.4/5: 29 FO4 accommodates a one-cycle 64 KB cache."""
        fit = max_cache_size(29.0, 1)
        assert fit is not None and fit.size_bytes == 64 * 1024

    def test_below_24_fo4_no_single_cycle_cache(self):
        """Section 5: under 24 FO4 not even a 4 KB single-cycle cache fits."""
        assert max_cache_size(23.0, 1) is None

    def test_10_fo4_requires_three_cycles(self):
        """Section 4.4: at 10 FO4 at least three cycles of pipelining."""
        assert max_cache_size(10.0, 1) is None
        assert max_cache_size(10.0, 2) is None
        fit = max_cache_size(10.0, 3)
        assert fit is not None

    def test_25_fo4_two_cycle_fits_512k(self):
        fit = max_cache_size(25.0, 2)
        assert fit is not None and fit.size_bytes == 512 * 1024

    def test_deeper_pipeline_never_smaller(self):
        for cycle_time in (10.0, 15.0, 20.0, 25.0, 30.0):
            sizes = []
            for depth in (1, 2, 3):
                fit = max_cache_size(cycle_time, depth)
                sizes.append(0 if fit is None else fit.size_bytes)
            assert sizes == sorted(sizes)

    def test_design_points_skips_unrealizable(self):
        points = design_points((10.0, 25.0))
        assert all(p.size_bytes >= 4096 for p in points)
        # at 10 FO4 depths 1 and 2 are unrealizable
        assert sum(1 for p in points if p.cycle_time_fo4 == 10.0) == 1
        assert sum(1 for p in points if p.cycle_time_fo4 == 25.0) == 3


class TestProperties:
    @given(
        st.floats(min_value=5.0, max_value=40.0),
        st.integers(min_value=1, max_value=3),
    )
    def test_larger_cycle_time_never_shrinks_fit(self, cycle_time, depth):
        smaller = max_cache_size(cycle_time, depth)
        larger = max_cache_size(cycle_time + 5.0, depth)
        if smaller is not None:
            assert larger is not None
            assert larger.size_bytes >= smaller.size_bytes

    @given(st.floats(min_value=20.0, max_value=80.0))
    def test_required_depth_consistent_with_fits(self, access):
        depth = required_depth(access, 25.0)
        if depth is not None:
            assert fits_in_cycles(access, depth, 25.0)
            if depth > 1:
                assert not fits_in_cycles(access, depth - 1, 25.0)
