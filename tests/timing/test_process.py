"""Tests for the process technology constants and FO4 conversions."""

import pytest

from repro.timing import (
    FO4_NS,
    L2_ACCESS_NS,
    MEMORY_ACCESS_NS,
    REFERENCE_CLOCK_MHZ,
    REFERENCE_CYCLE_FO4,
    clock_mhz,
    fo4_to_ns,
    latency_in_cycles,
    ns_to_fo4,
)


class TestFo4Conversion:
    def test_round_trip(self):
        assert ns_to_fo4(fo4_to_ns(25.0)) == pytest.approx(25.0)

    def test_reference_cycle_is_5ns(self):
        """25 FO4 == 5 ns, the paper's 200 MHz reference machine."""
        assert fo4_to_ns(REFERENCE_CYCLE_FO4) == pytest.approx(5.0)

    def test_fo4_is_200ps(self):
        assert FO4_NS == pytest.approx(0.2)

    def test_reference_clock(self):
        assert clock_mhz(REFERENCE_CYCLE_FO4) == pytest.approx(REFERENCE_CLOCK_MHZ)

    def test_faster_cycle_gives_higher_clock(self):
        assert clock_mhz(10.0) > clock_mhz(25.0)

    def test_clock_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            clock_mhz(0)


class TestLatencyScaling:
    def test_l2_is_10_cycles_at_reference(self):
        """Section 3.1: 4 MB L2 has a 'ten cycle (50ns) access time'."""
        assert latency_in_cycles(L2_ACCESS_NS, REFERENCE_CYCLE_FO4) == 10

    def test_memory_is_60_cycles_at_reference(self):
        """Section 3.1: 'sixty cycle (300ns) access time' main memory."""
        assert latency_in_cycles(MEMORY_ACCESS_NS, REFERENCE_CYCLE_FO4) == 60

    def test_faster_clock_means_more_cycles(self):
        """A 10 FO4 machine sees the 50 ns L2 as 25 cycles."""
        assert latency_in_cycles(L2_ACCESS_NS, 10.0) == 25
        assert latency_in_cycles(MEMORY_ACCESS_NS, 10.0) == 150

    def test_minimum_one_cycle(self):
        assert latency_in_cycles(0.01, 25.0) == 1

    def test_rejects_nonpositive_cycle_time(self):
        with pytest.raises(ValueError):
            latency_in_cycles(50.0, -1.0)
