"""The tracing facility: ring bounds, activation scoping, JSONL sink."""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import trace
from repro.observability.trace import DEFAULT_CAPACITY, TraceEvent, Tracer


class TestTracer:
    def test_capture_retains_events_in_order(self):
        tracer = Tracer()
        tracer.capture("a", 1, {"x": 1})
        tracer.capture("b", 2, {"x": 2})
        assert [e.kind for e in tracer.events()] == ["a", "b"]
        assert tracer.events("b") == [TraceEvent(2, "b", {"x": 2})]
        assert len(tracer) == 2 and tracer.emitted == 2

    def test_ring_drops_oldest_once_full(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.capture("k", i, {})
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [e.cycle for e in tracer.events()] == [7, 8, 9]
        # counts survive the ring: all ten emissions are still counted
        assert tracer.count("k") == 10

    def test_zero_capacity_counts_without_retaining(self):
        tracer = Tracer(capacity=0)
        tracer.capture("k", 0, {})
        assert len(tracer) == 0
        assert tracer.emitted == 1
        assert tracer.count("k") == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Tracer(capacity=-1)

    def test_clear_resets_everything(self):
        tracer = Tracer()
        tracer.capture("k", 0, {})
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0 and tracer.count("k") == 0

    def test_sink_receives_one_json_line_per_event(self):
        sink = io.StringIO()
        tracer = Tracer(capacity=1, sink=sink)
        tracer.capture("mem.load", 5, {"line": 3, "outcome": "l1_hit"})
        tracer.capture("mem.load", 6, {"line": 4, "outcome": "lb_hit"})
        tracer.flush()  # sink writes are batched
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2  # the sink sees dropped events too
        first = json.loads(lines[0])
        assert first == {"cycle": 5, "kind": "mem.load", "line": 3, "outcome": "l1_hit"}

    def test_sink_flushes_automatically_at_batch_size(self):
        sink = io.StringIO()
        tracer = Tracer(capacity=4, sink=sink)
        for i in range(trace.SINK_BATCH_LINES):
            tracer.capture("k", i, {})
        assert len(sink.getvalue().splitlines()) == trace.SINK_BATCH_LINES

    def test_kind_filter_skips_capture_entirely(self):
        tracer = Tracer(kinds=("keep",))
        assert tracer.wants("keep") and not tracer.wants("drop")
        tracer.capture("keep", 1, {"x": 1})
        tracer.capture("drop", 2, {"x": 2})
        assert tracer.emitted == 1
        assert tracer.count("drop") == 0  # filtered kinds are not counted
        assert [e.kind for e in tracer.events()] == ["keep"]

    def test_unfiltered_tracer_wants_everything(self):
        tracer = Tracer()
        assert tracer.enabled_kinds is None
        assert tracer.wants("anything")


class TestActivation:
    def test_disabled_by_default(self):
        assert trace.active() is None

    def test_tracing_scope_installs_and_restores(self):
        with trace.tracing() as tracer:
            assert trace.active() is tracer
        assert trace.active() is None

    def test_tracing_scopes_nest(self):
        with trace.tracing() as outer:
            with trace.tracing() as inner:
                assert trace.active() is inner
            assert trace.active() is outer

    def test_tracing_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with trace.tracing():
                raise RuntimeError("boom")
        assert trace.active() is None

    def test_emit_goes_to_active_tracer_only(self):
        trace.emit("k", 0, x=1)  # disabled: silently dropped
        with trace.tracing() as tracer:
            trace.emit("k", 7, x=2)
        assert tracer.events() == [TraceEvent(7, "k", {"x": 2})]

    def test_activate_deactivate(self):
        tracer = Tracer()
        trace.activate(tracer)
        assert trace.active() is tracer
        trace.deactivate()
        assert trace.active() is None


class TestProperties:
    @given(
        capacity=st.integers(min_value=0, max_value=50),
        n_events=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_never_exceeds_capacity(self, capacity, n_events):
        tracer = Tracer(capacity=capacity)
        for i in range(n_events):
            tracer.capture("k", i, {})
        assert len(tracer) <= capacity
        assert len(tracer) == min(capacity, n_events)
        assert tracer.emitted == n_events
        assert tracer.dropped == n_events - len(tracer)
        assert tracer.dropped >= 0

    @given(
        kinds=st.lists(
            st.sampled_from(["a", "b", "c"]), min_size=0, max_size=100
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_by_kind_partitions_emitted(self, kinds):
        tracer = Tracer(capacity=5)
        for i, kind in enumerate(kinds):
            tracer.capture(kind, i, {})
        assert sum(tracer.by_kind.values()) == tracer.emitted == len(kinds)
        for kind in ("a", "b", "c"):
            assert tracer.count(kind) == kinds.count(kind)

    def test_default_capacity_is_bounded(self):
        assert 0 < DEFAULT_CAPACITY <= 1_000_000
