"""The event channel: always-on taps, tracer dispatch, kind taxonomy."""

import pytest

from repro.observability import trace
from repro.observability.events import ALL_KINDS, EventChannel
from repro.robustness.errors import SimulationInvariantError
from repro.robustness.invariants import GrantLedger, bus_causality_tap


class TestEventChannel:
    def test_taps_fire_even_with_tracing_disabled(self):
        seen = []
        channel = EventChannel("k", (lambda cycle, fields: seen.append(cycle),))
        channel.emit(3, x=1)
        assert seen == [3]

    def test_tracer_captures_channel_emissions(self):
        channel = EventChannel("k")
        with trace.tracing() as tracer:
            channel.emit(5, x=2)
        assert tracer.count("k") == 1
        assert tracer.events("k")[0].fields == {"x": 2}

    def test_taps_run_before_tracer(self):
        order = []
        channel = EventChannel("k", (lambda c, f: order.append("tap"),))

        class Spy:
            emitted = 0

            def capture(self, kind, cycle, fields):
                order.append("tracer")

        trace.activate(Spy())  # autouse fixture deactivates afterwards
        channel.emit(0)
        assert order == ["tap", "tracer"]

    def test_tap_errors_propagate_to_emitter(self):
        def explode(cycle, fields):
            raise SimulationInvariantError("tap says no")

        channel = EventChannel("k", (explode,))
        with pytest.raises(SimulationInvariantError, match="tap says no"):
            channel.emit(0)

    def test_add_tap(self):
        seen = []
        channel = EventChannel("k")
        channel.add_tap(lambda cycle, fields: seen.append(fields))
        channel.emit(0, a=1)
        assert seen == [{"a": 1}]


class TestKinds:
    def test_kinds_are_unique_and_hierarchical(self):
        assert len(set(ALL_KINDS)) == len(ALL_KINDS)
        for kind in ALL_KINDS:
            prefix = kind.split(".", 1)[0]
            assert prefix in ("cpu", "mem", "engine", "telemetry", "point")


class TestInvariantTaps:
    def test_grant_ledger_tap_books_grants(self):
        ledger = GrantLedger(1, "test ports")
        channel = EventChannel("mem.port.grant", (ledger.tap,))
        channel.emit(10, key=0)
        channel.emit(10, key=1)  # different key: fine
        with pytest.raises(SimulationInvariantError, match="exceed per-cycle"):
            channel.emit(10, key=0)  # same (cycle, key): oversubscribed

    def test_grant_ledger_tap_honors_weight(self):
        ledger = GrantLedger(2, "test ports")
        channel = EventChannel("mem.port.grant", (ledger.tap,))
        with pytest.raises(SimulationInvariantError):
            channel.emit(4, key=0, weight=3)

    def test_bus_causality_tap_accepts_causal_window(self):
        bus_causality_tap(10, {"bus": "chip", "start": 10, "done": 12})

    def test_bus_causality_tap_rejects_acausal_window(self):
        with pytest.raises(SimulationInvariantError, match="acausal"):
            bus_causality_tap(10, {"bus": "chip", "start": 9, "done": 12})
        with pytest.raises(SimulationInvariantError, match="acausal"):
            bus_causality_tap(10, {"bus": "chip", "start": 10, "done": 10})
