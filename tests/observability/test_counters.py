"""Interval counter sampling: semantics, serialization, and analysis.

Covers the interval-accounting contract (every committed instruction
lands in exactly one row; the trailing partial interval is emitted and
flagged, never dropped), the schema-v4 persistence path (store
round-trip, quarantine of mis-stamped entries, bounded ledger records),
the series analysis helpers behind ``repro compare``, and the
Prometheus ``metric_name`` charset validation shared with telemetry.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import kernel
from repro.core.experiment import ExperimentSettings, _simulate
from repro.core.organizations import KB, banked, duplicate, ideal_ports
from repro.engine.executor import Engine, ExecutionPlan
from repro.engine.ledger import build_record
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.engine.store import SCHEMA_VERSION, ResultStore
from repro.observability import counters, telemetry
from repro.workloads.catalog import benchmark

FAST = ExperimentSettings(
    instructions=1_000, timing_warmup=200, functional_warmup=10_000
)

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the parallel counters test assumes cheap fork workers",
)


def _run(every: int, org=None, instructions: int | None = None):
    settings = FAST
    if instructions is not None:
        settings = ExperimentSettings(
            instructions=instructions,
            timing_warmup=FAST.timing_warmup,
            functional_warmup=FAST.functional_warmup,
        )
    with counters.sampling(every):
        return _simulate(
            org if org is not None else duplicate(32 * KB, line_buffer=True),
            benchmark("gcc"),
            settings,
        )


class TestConfiguration:
    def test_off_by_default(self):
        assert counters.interval() is None
        assert not counters.enabled()
        result = _simulate(duplicate(32 * KB), benchmark("gcc"), FAST)
        assert result.counters is None

    def test_env_flag_value_is_the_interval(self, monkeypatch):
        monkeypatch.setenv(counters.ENV_FLAG, "250")
        assert counters.interval() == 250
        assert counters.enabled()

    @pytest.mark.parametrize("raw", ("", "0", "-5", "garbage"))
    def test_bad_env_values_read_as_off(self, monkeypatch, raw):
        monkeypatch.setenv(counters.ENV_FLAG, raw)
        assert counters.interval() is None
        assert not counters.enabled()

    def test_sampling_scope_restores_previous_state(self):
        assert counters.interval() is None
        with counters.sampling(100):
            assert counters.interval() == 100
            with counters.sampling(7):
                assert counters.interval() == 7
            assert counters.interval() == 100
        assert counters.interval() is None

    def test_sampling_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            with counters.sampling(0):
                pass  # pragma: no cover


class TestIntervalAccounting:
    def test_exact_multiple_has_no_partial_row(self):
        series = _run(250).counters
        cols = counters.columns_of(series)
        assert cols["instructions"] == [250, 250, 250, 250]
        assert cols["partial"] == [0, 0, 0, 0]

    def test_non_multiple_emits_flagged_partial_tail(self):
        series = _run(300).counters
        cols = counters.columns_of(series)
        assert cols["instructions"] == [300, 300, 300, 100]
        assert cols["partial"] == [0, 0, 0, 1]

    def test_interval_longer_than_window_is_one_partial_row(self):
        series = _run(5_000).counters
        cols = counters.columns_of(series)
        assert cols["instructions"] == [1_000]
        assert cols["partial"] == [1]

    @pytest.mark.parametrize("instructions", (999, 1_000, 1_001))
    def test_rows_tile_the_window_at_any_size(self, instructions):
        """Off-by-one window sizes around a multiple of the interval."""
        series = _run(250, instructions=instructions).counters
        cols = counters.columns_of(series)
        assert sum(cols["instructions"]) == instructions
        assert sum(cols["partial"]) == (1 if instructions % 250 else 0)
        # Every row but a partial tail covers exactly one interval.
        for count, partial in zip(cols["instructions"], cols["partial"]):
            assert count == 250 or partial

    def test_cycles_tile_the_measured_region(self):
        result = _run(300)
        cols = counters.columns_of(result.counters)
        assert sum(cols["cycles"]) == result.cycles

    def test_deltas_sum_to_whole_run_aggregates(self):
        result = _run(250, org=banked(32 * KB, banks=2))
        cols = counters.columns_of(result.counters)
        assert sum(cols["loads"]) == result.memory.loads
        assert sum(cols["stores"]) == result.memory.stores
        assert sum(cols["l1_load_misses"]) == result.memory.l1_load_misses
        assert (
            sum(cols["window_full_stalls"])
            == result.pipeline.window_full_stalls
        )

    def test_warmup_never_pollutes_the_first_row(self):
        """The first interval's deltas are measured-region only: a run
        with warmup and one without measure the same region."""
        warm = _run(250).counters
        assert counters.columns_of(warm)["loads"][0] > 0
        # Row values are deltas against the begin() baseline, so the
        # (heavily cache-missing) warmup traffic must not appear.
        total_loads = sum(counters.columns_of(warm)["loads"])
        result = _run(250)
        assert total_loads == result.memory.loads

    def test_mshr_peak_bounded_by_file_size(self):
        series = _run(100, org=banked(32 * KB, banks=1)).counters
        cols = counters.columns_of(series)
        assert max(cols["mshr_occupancy_peak"]) <= 4
        assert any(peak > 0 for peak in cols["mshr_occupancy_peak"])

    def test_columns_cover_every_row_value(self):
        series = _run(250).counters
        assert series["columns"] == list(counters.COLUMNS)
        assert len(series["data"]) == len(counters.COLUMNS)
        assert series["version"] == counters.SERIES_VERSION


class TestSerialization:
    def test_result_dict_round_trip(self):
        result = _run(300)
        restored = result_from_dict(result_to_dict(result))
        assert restored.counters == result.counters

    def test_counter_less_dicts_read_tolerantly(self):
        result = _simulate(duplicate(32 * KB), benchmark("gcc"), FAST)
        payload = result_to_dict(result)
        payload.pop("counters")
        assert result_from_dict(payload).counters is None

    def test_store_round_trip(self, tmp_path):
        from repro.engine.key import ExperimentKey

        result = _run(300)
        store = ResultStore(tmp_path)
        key = ExperimentKey(
            duplicate(32 * KB, line_buffer=True), "gcc", FAST
        )
        store.save(key, result)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.counters == result.counters

    def test_schema_mismatch_quarantined_by_cache_verify(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.engine.key import ExperimentKey

        monkeypatch.chdir(tmp_path)
        store = ResultStore(tmp_path / "store")
        key = ExperimentKey(duplicate(32 * KB), "gcc", FAST)
        store.save(key, _run(300))
        # Mis-stamp the entry: claim the previous (counter-less) schema
        # while living in the v4 directory.
        [entry] = list((tmp_path / "store").glob("v*/??/*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["schema"] = SCHEMA_VERSION - 1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load(key) is None
        assert (
            main(["cache", "verify", "--cache-dir", str(tmp_path / "store")])
            == 0
        )
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert not entry.exists()

    def test_ledger_summary_is_bounded(self):
        """runs.jsonl carries a fixed-size digest, never the series."""
        fine = _run(10)  # 100 rows
        coarse = _run(500)  # 2 rows
        summaries = {}
        for name, result in (("fine", fine), ("coarse", coarse)):
            summary = counters.series_summary(result.counters)
            assert set(summary) == {
                "interval",
                "rows",
                "partial_rows",
                "digest",
            }
            summaries[name] = json.dumps(summary)
        # 50x more rows must not grow the ledger field.
        assert len(summaries["fine"]) <= len(summaries["coarse"]) + 4
        assert counters.series_summary(None) is None

    def test_build_record_embeds_summary_not_series(self):
        from repro.engine.key import ExperimentKey

        result = _run(10)
        key = ExperimentKey(
            duplicate(32 * KB, line_buffer=True), "gcc", FAST
        )
        record = build_record(
            {key: result},
            {key: "simulated"},
            wall_seconds=1.0,
            jobs=1,
            store_schema=SCHEMA_VERSION,
        )
        [row] = record["points"]
        assert row["counters"]["rows"] == 100
        assert "data" not in json.dumps(row)


@FORK_ONLY
class TestParallelDispatch:
    def test_series_identical_across_jobs_1_and_2(self, tmp_path, monkeypatch):
        """Counter-bearing results survive the worker boundary intact."""
        monkeypatch.setenv(counters.ENV_FLAG, "250")
        plans = {}
        for jobs in (1, 2):
            store = ResultStore(tmp_path / f"jobs{jobs}")
            engine = Engine(jobs=jobs, store=store)
            try:
                with kernel.use_backend("reference"):
                    plan = ExecutionPlan(engine)
                    keys = [
                        plan.add(org, name, FAST)
                        for org in (
                            banked(32 * KB, banks=2),
                            ideal_ports(32 * KB, ports=2),
                        )
                        for name in ("gcc", "tomcatv")
                    ]
                    plan.execute()
                    plans[jobs] = [
                        result_to_dict(plan.resolve(key)) for key in keys
                    ]
            finally:
                engine.shutdown_pool()
        assert plans[1] == plans[2]
        for payload in plans[1]:
            assert payload["counters"] is not None
            assert payload["counters"]["interval"] == 250


class TestAnalysis:
    def test_derived_rates_shapes_and_ranges(self):
        series = _run(250, org=banked(32 * KB, banks=2)).counters
        rates = counters.derived_rates(series)
        rows = counters.row_count(series)
        for values in rates.values():
            assert len(values) == rows
        assert all(rate > 0 for rate in rates["ipc"])
        for key in ("port_grant_rate", "bank_conflict_rate"):
            assert all(0.0 <= rate <= 1.0 for rate in rates[key])

    def test_align_requires_matching_intervals(self):
        a = _run(250).counters
        b = _run(300).counters
        with pytest.raises(ValueError, match="different intervals"):
            counters.align(a, b)

    def test_align_is_the_shorter_row_count(self):
        a = _run(250).counters
        b = _run(250, instructions=500).counters
        assert counters.align(a, b) == 2

    def test_rank_divergent_is_sorted_by_absolute_gap(self):
        a = _run(250, org=banked(32 * KB, banks=2)).counters
        b = _run(250, org=ideal_ports(32 * KB, ports=2)).counters
        ranked = counters.rank_divergent(a, b)
        gaps = [abs(entry["gap"]) for entry in ranked]
        assert gaps == sorted(gaps, reverse=True)
        windows = sorted(tuple(e["instructions"]) for e in ranked)
        assert windows[0] == (0, 250)

    def test_figure5_pair_verdict_blames_bank_conflicts(self):
        """Acceptance: banked-2 vs dual-ported yields a ranked report
        and a paper-style verdict citing the structural difference."""
        a = _run(250, org=banked(32 * KB, banks=2)).counters
        b = _run(250, org=ideal_ports(32 * KB, ports=2)).counters
        ranked = counters.rank_divergent(a, b)
        assert ranked and ranked[0]["pressure"] == "bank_conflict_rate"
        sentence = counters.verdict(
            "banked-2", "dual-ported", a, b, figure="Fig. 5"
        )
        assert "banked-2 loses to dual-ported" in sentence
        assert "bank-conflict rate peaks at" in sentence
        assert sentence.endswith("-- cf. Fig. 5")

    def test_identical_series_verdict_reports_no_divergence(self):
        series = _run(250).counters
        sentence = counters.verdict("a", "b", series, series)
        assert "track each other" in sentence

    def test_sparkline_levels(self):
        assert counters.sparkline([]) == ""
        assert counters.sparkline([0.0, 0.0]) == "▁▁"
        line = counters.sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[-1] == "█"

    def test_render_table_marks_partials(self):
        series = _run(300).counters
        table = counters.render_table(series)
        assert "Interval counters (300 instructions/interval" in table
        assert "3*" in table  # the trailing partial row is flagged
        assert "IPC" in table and "bank conf" in table

    def test_render_sparklines_covers_the_headline_rates(self):
        series = _run(250).counters
        block = counters.render_sparklines(series)
        assert "ipc" in block
        assert "bank_conflict_rate" in block
        assert "min" in block and "max" in block
        # Four sampled intervals -> four spark characters per rate.
        first = block.splitlines()[0].split()[1]
        assert len(first) == 4

    def test_dominant_pressure_picks_the_maximum(self):
        rates = {key: [0.1] for key, _ in counters.PRESSURE_LABELS}
        rates["mshr_stall_share"] = [0.9]
        key, label, value = counters.dominant_pressure(rates, 0)
        assert key == "mshr_stall_share"
        assert label == "MSHR-full stalls"
        assert value == 0.9

    def test_render_csv_is_complete(self):
        series = _run(300).counters
        lines = counters.render_csv(series).splitlines()
        header = lines[0].split(",")
        assert header == ["index", *counters.COLUMNS]
        assert len(lines) == 1 + counters.row_count(series)
        for line in lines[1:]:
            assert len(line.split(",")) == len(header)

    def test_counter_track_events_are_perfetto_counters(self):
        series = _run(300).counters
        events = counters.counter_track_events(series, label="dup+lb")
        assert events
        assert all(event["ph"] == "C" for event in events)
        # Timestamps follow the cycle axis, one batch per interval.
        cols = counters.columns_of(series)
        last = [e for e in events if e["name"] == "dup+lb: ipc"][-1]
        assert last["ts"] == sum(cols["cycles"][:-1])


class TestMetricNames:
    def test_valid_names_join(self):
        assert (
            telemetry.metric_name("repro_counter", "bank_conflicts")
            == "repro_counter_bank_conflicts"
        )
        assert telemetry.metric_name("a:b", "c_1") == "a:b_c_1"

    @pytest.mark.parametrize(
        "parts",
        (("repro", "bad-name"), ("1leading",), ("sp ace",), ("",)),
    )
    def test_invalid_charset_rejected(self, parts):
        with pytest.raises(ValueError, match="invalid Prometheus"):
            telemetry.metric_name(*parts)

    def test_every_series_column_makes_a_valid_gauge_name(self):
        for column in counters.COLUMNS:
            name = telemetry.metric_name("repro_counter", column)
            assert name.startswith("repro_counter_")

    def test_hub_renders_counter_gauges(self):
        hub = telemetry.TelemetryHub()
        hub.handle(
            {
                "type": "counters",
                "point": "p1",
                "label": "banked-2/gcc",
                "index": 2,
                "row": {"instructions": 250, "bank_conflicts": 31},
            }
        )
        text = hub.prometheus()
        assert (
            'repro_counter_interval_index{point="banked-2/gcc"} 2' in text
        )
        assert (
            'repro_counter_bank_conflicts{point="banked-2/gcc"} 31' in text
        )

    def test_sampler_feeds_an_active_beacon(self):
        messages = []
        beacon = telemetry.TelemetryBeacon(
            "p1", "dup/gcc", messages.append
        )
        telemetry._BEACON = beacon
        try:
            result = _run(300)
        finally:
            telemetry._BEACON = None
        rows = [m for m in messages if m["type"] == "counters"]
        assert len(rows) == counters.row_count(result.counters)
        assert rows[0]["row"]["instructions"] == 300
        assert rows[-1]["row"]["partial"] == 1


class TestHotPathDiscipline:
    def test_sampler_owned_by_memory_system_only_when_enabled(self):
        from repro.memory.hierarchy import MemorySystem

        config = duplicate(32 * KB).memory_config(FAST.backside)
        assert MemorySystem(config).counters is None
        with counters.sampling(100):
            sampler = MemorySystem(config).counters
        assert sampler is not None
        assert sampler.every == 100
        assert sampler.next_at == -1  # armed only at measurement start
