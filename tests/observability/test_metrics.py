"""Counters, timers, the registry, and the simulation snapshot."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.experiment import ExperimentSettings, run_experiment
from repro.core.organizations import banked, dram_cache, duplicate
from repro.observability.metrics import Counter, MetricsRegistry, Timer

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


class TestCounter:
    def test_add_accumulates(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_negative_add_rejected(self):
        counter = Counter("x")
        with pytest.raises(ValueError, match="backwards"):
            counter.add(-1)

    def test_negative_set_rejected(self):
        counter = Counter("x")
        with pytest.raises(ValueError, match="negative"):
            counter.set(-3)

    @given(amounts=st.lists(st.integers(min_value=0, max_value=10_000)))
    @settings(max_examples=50, deadline=None)
    def test_never_negative(self, amounts):
        counter = Counter("x")
        for amount in amounts:
            counter.add(amount)
            assert counter.value >= 0
        assert counter.value == sum(amounts)


class TestTimer:
    def test_accumulates_entries(self):
        timer = Timer("t")
        with timer:
            pass
        with timer:
            pass
        assert timer.entries == 2
        assert timer.seconds >= 0.0


class TestRegistry:
    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert len(registry) == 1

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", ".x", "x.", "a..b"):
            with pytest.raises(ValueError, match="bad metric name"):
                registry.counter(bad)

    def test_to_dict_is_sorted_and_flat(self):
        registry = MetricsRegistry()
        registry.counter("b.two").set(2)
        registry.counter("a.one").set(1)
        exported = registry.to_dict()
        assert list(exported) == ["a.one", "b.two"]
        assert exported == {"a.one": 1, "b.two": 2}

    def test_timers_export_seconds_and_calls(self):
        registry = MetricsRegistry()
        with registry.timer("phase.run"):
            pass
        exported = registry.to_dict()
        assert "phase.run.seconds" in exported
        assert exported["phase.run.calls"] == 1

    def test_subtree_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("mem.l1.hits").set(1)
        registry.counter("mem.l2.hits").set(2)
        registry.counter("cpu.cycles").set(3)
        assert registry.subtree("mem") == {"mem.l1.hits": 1, "mem.l2.hits": 2}
        assert registry.subtree("mem.l1") == {"mem.l1.hits": 1}
        assert registry.subtree("cpu.cycles") == {"cpu.cycles": 3}


class TestSimulationSnapshot:
    def test_core_populates_metrics(self):
        result = run_experiment(duplicate(line_buffer=True), "gcc", FAST)
        metrics = result.metrics
        assert metrics  # populated by the core at end of run
        # headline identities against the legacy stats objects
        assert metrics["cpu.instructions"] == result.instructions
        assert metrics["cpu.cycles"] == result.cycles
        assert metrics["memory.loads"] == result.memory.loads
        assert metrics["memory.l1.load_hits"] == result.memory.l1_load_hits
        assert (
            metrics["cpu.pipeline.window_full_stalls"]
            == result.pipeline.window_full_stalls
        )
        # previously-discarded component counters are now exported
        assert metrics["memory.ports.requests"] > 0
        assert "memory.mshr.primary_misses" in metrics
        assert "memory.line_buffer.load_hits" in metrics
        assert "memory.bus.chip.transfers" in metrics
        # every exported value is a deterministic, JSON-exact int
        assert all(isinstance(v, int) for v in metrics.values())
        assert all(v >= 0 for v in metrics.values())

    def test_served_by_sums_to_accesses(self):
        result = run_experiment(banked(), "tomcatv", FAST)
        served = sum(
            value
            for name, value in result.metrics.items()
            if name.startswith("memory.served_by.")
        )
        assert served == result.metrics["memory.loads"] + result.metrics[
            "memory.stores"
        ]

    def test_dram_mode_exports_dram_tree(self):
        result = run_experiment(dram_cache(), "gcc", FAST)
        metrics = result.metrics
        assert "memory.dram.hits" in metrics
        assert "memory.bus.memory.transfers" in metrics
        assert "memory.l2.hits" not in metrics  # no off-chip L2 in DRAM mode

    def test_sram_mode_has_no_dram_tree(self):
        result = run_experiment(duplicate(), "gcc", FAST)
        assert "memory.dram.hits" not in result.metrics
        assert "memory.l2.hits" in result.metrics
