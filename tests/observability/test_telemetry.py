"""Live sweep telemetry: beacon, hub, display, /metrics endpoint."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import duplicate
from repro.engine.key import ExperimentKey
from repro.observability import telemetry
from repro.observability.telemetry import (
    _BEAT_CALL_MASK,
    MetricsServer,
    ProgressDisplay,
    TelemetryBeacon,
    TelemetryHub,
    point_beacon,
    render_final_summary,
    render_progress_lines,
    render_prometheus,
    sweep_telemetry,
)
from repro.robustness.watchdog import LivenessMonitor

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


def _key(workload: str = "gcc") -> ExperimentKey:
    return ExperimentKey(duplicate(32 * 1024, line_buffer=True), workload, FAST)


def _hub(**kwargs) -> TelemetryHub:
    return TelemetryHub(**kwargs)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestBeacon:
    def test_start_and_end_carry_identity(self):
        sent = []
        beacon = TelemetryBeacon("abc123", "org / gcc", sent.append, budget=1800)
        beacon.start()
        beacon.end("ok")
        assert [m["type"] for m in sent] == ["start", "end"]
        assert sent[0]["point"] == "abc123"
        assert sent[0]["label"] == "org / gcc"
        assert sent[0]["budget"] == 1800
        assert sent[0]["worker"].startswith("pid:")

    def test_progress_is_rate_limited_by_call_mask(self):
        sent = []
        beacon = TelemetryBeacon("p", "l", sent.append, interval=0.0)
        beacon.start()
        for i in range(_BEAT_CALL_MASK):
            beacon.progress(i, i)
        assert [m["type"] for m in sent] == ["start"]  # mask swallows all
        beacon.progress(64, 64)  # call 64: mask passes, interval 0 passes
        assert sent[-1]["type"] == "beat"
        assert sent[-1]["instructions"] == 64

    def test_progress_is_rate_limited_by_wall_clock(self):
        sent = []
        beacon = TelemetryBeacon("p", "l", sent.append, interval=3600.0)
        beacon.start()
        for i in range(5 * (_BEAT_CALL_MASK + 1)):
            beacon.progress(i, i)
        # The mask passes five times but the hour-long interval never does.
        assert [m["type"] for m in sent] == ["start"]

    def test_send_error_disables_beacon_not_simulation(self):
        calls = []

        def explode(message):
            calls.append(message)
            raise OSError("queue torn down")

        beacon = TelemetryBeacon("p", "l", explode, interval=0.0)
        beacon.start()
        assert len(calls) == 1
        beacon.end("ok")  # must not raise, must not retry the send
        assert len(calls) == 1

    def test_stall_reports_evidence(self):
        sent = []
        beacon = TelemetryBeacon("p", "l", sent.append)
        beacon.progress(500, 900)
        beacon.stall(cycle=101_000, stalled_cycles=100_000)
        assert sent[-1]["type"] == "stall"
        assert sent[-1]["stalled_cycles"] == 100_000
        assert sent[-1]["instructions"] == 500

    def test_end_carries_error_type(self):
        sent = []
        beacon = TelemetryBeacon("p", "l", sent.append)
        beacon.end("error", "DeadlockError")
        assert sent[-1] == {
            "type": "end",
            "status": "error",
            "error_type": "DeadlockError",
            "point": "p",
            "label": "l",
            "worker": sent[-1]["worker"],
        }


class TestBeaconGlobals:
    def test_point_beacon_is_none_when_telemetry_off(self):
        assert telemetry._WORKER_QUEUE is None
        assert point_beacon(_key()) is None

    def test_point_beacon_with_explicit_send(self):
        sent = []
        beacon = point_beacon(_key(), send=sent.append)
        assert beacon is not None
        assert beacon.budget == FAST.timing_warmup + FAST.instructions
        beacon.start()
        assert sent[0]["point"] == _key().digest[:12]

    def test_install_and_clear(self):
        beacon = TelemetryBeacon("p", "l", lambda m: None)
        telemetry.install_beacon(beacon)
        try:
            assert telemetry.beacon() is beacon
        finally:
            telemetry.clear_beacon()
        assert telemetry.beacon() is None

    def test_notify_stall_routes_through_active_beacon(self):
        sent = []
        telemetry.install_beacon(TelemetryBeacon("p", "l", sent.append))
        try:
            telemetry.notify_stall(5000, 1000)
        finally:
            telemetry.clear_beacon()
        assert sent[-1]["type"] == "stall"
        telemetry.notify_stall(1, 1)  # no beacon: a no-op, not an error


class TestLivenessMonitor:
    def test_ages_and_status_with_fake_clock(self):
        clock = FakeClock()
        monitor = LivenessMonitor(stale_after=10.0, clock=clock)
        assert monitor.status("w1") == "unknown"
        assert monitor.age("w1") == float("inf")
        monitor.beat("w1")
        assert monitor.status("w1") == "alive"
        clock.now += 5.0
        assert monitor.age("w1") == 5.0
        clock.now += 6.0
        assert monitor.status("w1") == "stale"
        assert monitor.stale_workers() == ["w1"]
        monitor.beat("w1")
        assert monitor.status("w1") == "alive"
        assert monitor.workers() == ["w1"]

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            LivenessMonitor(stale_after=0.0)


class TestHubLifecycle:
    def test_cached_and_finished_points_reach_totals(self):
        hub = _hub()
        hub.batch_started(3)
        hub.point_cached("a" * 12, "org / gcc", "store")
        hub.point_queued("b" * 12, "org / tomcatv")
        hub.point_started("b" * 12, "org / tomcatv")
        hub.point_finished("b" * 12, "org / tomcatv", "simulated")
        hub.point_started("c" * 12, "org / swim")
        hub.point_finished("c" * 12, "org / swim", "gap")
        snapshot = hub.snapshot()
        assert snapshot["total"] == 3
        assert snapshot["done"] == 3
        assert snapshot["cached"] == 1
        assert snapshot["simulated"] == 1
        assert snapshot["gaps"] == 1
        assert snapshot["in_flight"] == []

    def test_heartbeats_track_progress_and_worker_rate(self):
        clock = FakeClock()
        hub = _hub(clock=clock)
        hub.batch_started(1)
        hub.point_started("p1", "org / gcc")
        hub.handle(
            {
                "type": "start",
                "point": "p1",
                "label": "org / gcc",
                "worker": "pid:1",
                "budget": 1800,
                "attempt": 1,
            }
        )
        clock.now += 1.0
        hub.handle(
            {
                "type": "beat",
                "point": "p1",
                "label": "org / gcc",
                "worker": "pid:1",
                "instructions": 600,
                "cycle": 400,
                "budget": 1800,
                "attempt": 1,
            }
        )
        clock.now += 1.0
        hub.handle(
            {
                "type": "beat",
                "point": "p1",
                "label": "org / gcc",
                "worker": "pid:1",
                "instructions": 1200,
                "cycle": 800,
                "budget": 1800,
                "attempt": 1,
            }
        )
        snapshot = hub.snapshot()
        (point,) = snapshot["in_flight"]
        assert point["status"] == "running"
        assert point["instructions"] == 1200
        assert point["fraction"] == pytest.approx(1200 / 1800)
        assert snapshot["workers"]["pid:1"]["rate"] == pytest.approx(600.0)
        assert snapshot["workers"]["pid:1"]["alive"] is True

    def test_stall_heartbeat_marks_point_stalled(self):
        hub = _hub()
        hub.batch_started(1)
        hub.point_started("p1", "org / gcc")
        hub.handle(
            {
                "type": "stall",
                "point": "p1",
                "label": "org / gcc",
                "worker": "pid:9",
                "cycle": 101_000,
                "stalled_cycles": 100_000,
            }
        )
        snapshot = hub.snapshot()
        assert snapshot["stalled"] == ["org / gcc"]
        assert snapshot["in_flight"][0]["stalled_cycles"] == 100_000

    def test_late_heartbeat_cannot_resurrect_terminal_point(self):
        hub = _hub()
        hub.batch_started(1)
        hub.point_started("p1", "org / gcc")
        hub.point_finished("p1", "org / gcc", "simulated")
        hub.handle(
            {
                "type": "beat",
                "point": "p1",
                "label": "org / gcc",
                "worker": "pid:1",
                "instructions": 10,
                "cycle": 10,
            }
        )
        snapshot = hub.snapshot()
        assert snapshot["done"] == 1
        assert snapshot["in_flight"] == []

    def test_retry_bumps_attempt(self):
        hub = _hub()
        hub.batch_started(1)
        hub.point_started("p1", "org / gcc")
        hub.point_retrying("p1", "org / gcc", 2)
        snapshot = hub.snapshot()
        assert snapshot["in_flight"][0]["attempt"] == 2

    def test_eta_scales_with_remaining_points(self):
        clock = FakeClock()
        hub = _hub(clock=clock)
        hub.batch_started(4)
        clock.now += 10.0
        hub.point_finished("p1", "a", "simulated")
        snapshot = hub.snapshot()
        assert snapshot["elapsed"] == 10.0
        assert snapshot["eta"] == pytest.approx(30.0)

    def test_bad_message_in_handle_is_tolerated_by_drain_contract(self):
        hub = _hub()
        # handle() itself may raise on garbage; the drain loop catches it.
        # The contract tested here: a well-formed-but-unknown type is a
        # silent no-op, not a crash.
        hub.handle({"type": "mystery", "point": "p", "label": "l"})
        assert hub.snapshot()["in_flight"][0]["status"] == "running"

    def test_failure_log_and_store_counters_flow_through(self, tmp_path):
        from repro.engine.store import ResultStore
        from repro.robustness.runner import FailureLog, FailureRecord

        store = ResultStore(tmp_path / "cache")
        store.load(_key())  # a miss
        log = FailureLog()
        log.record(
            FailureRecord(
                label="org / gcc",
                workload="gcc",
                error_type="DeadlockError",
                message="stall",
                attempts=2,
                resolution="gap",
            )
        )
        hub = _hub()
        hub.attach_store(store)
        hub.attach_failure_log(log)
        snapshot = hub.snapshot()
        assert snapshot["store_misses"] == 1
        assert snapshot["store_hits"] == 0
        assert snapshot["failure_log_depth"] == 1


class TestPrometheusRendering:
    def _snapshot(self) -> dict:
        hub = _hub()
        hub.batch_started(2)
        hub.point_cached("p1", "org / gcc", "store")
        hub.handle(
            {
                "type": "beat",
                "point": "p2",
                "label": "org / tomcatv",
                "worker": "pid:7",
                "instructions": 100,
                "cycle": 80,
                "budget": 1800,
            }
        )
        return hub.snapshot()

    def test_required_series_present(self):
        text = render_prometheus(self._snapshot())
        for series in (
            "repro_sweep_points_total 2",
            "repro_sweep_points_done 1",
            "repro_sweep_points_cached 1",
            "repro_sweep_points_in_flight 1",
            "repro_store_hits_total 0",
            "repro_failure_log_depth 0",
            'repro_worker_alive{worker="pid:7"} 1',
        ):
            assert series in text, series

    def test_exposition_format_discipline(self):
        text = render_prometheus(self._snapshot())
        assert text.endswith("\n")
        names = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                names.add(line.split()[2])
            elif not line.startswith("#"):
                bare = line.split("{")[0].split()[0]
                assert bare in names, f"sample {bare} without HELP/TYPE"
        # Every HELP has a TYPE.
        helps = [ln for ln in text.splitlines() if ln.startswith("# HELP")]
        types = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
        assert len(helps) == len(types)

    def test_no_workers_no_worker_series(self):
        hub = _hub()
        hub.batch_started(1)
        text = hub.prometheus()
        assert "repro_worker_alive" not in text


class TestProgressDisplay:
    def _busy_hub(self) -> TelemetryHub:
        hub = _hub()
        hub.batch_started(2)
        hub.point_cached("p1", "org / gcc", "memo")
        hub.handle(
            {
                "type": "beat",
                "point": "p2",
                "label": "org / tomcatv",
                "worker": "pid:3",
                "instructions": 900,
                "cycle": 700,
                "budget": 1800,
            }
        )
        return hub

    def test_render_lines_summarize_sweep_and_points(self):
        lines = render_progress_lines(self._busy_hub().snapshot())
        assert lines[0].startswith("sweep: 1/2 points")
        assert "1 cached" in lines[0]
        assert "org / tomcatv" in lines[1]
        assert "900/1800 instr (50%)" in lines[1]

    def test_stalled_point_is_called_out(self):
        hub = self._busy_hub()
        hub.handle(
            {
                "type": "stall",
                "point": "p2",
                "label": "org / tomcatv",
                "stalled_cycles": 100_000,
            }
        )
        lines = render_progress_lines(hub.snapshot())
        assert any(
            "STALLED: no commit for 100000 cycles" in line for line in lines
        )

    def test_plain_mode_appends_only_on_done_change(self):
        hub = self._busy_hub()
        stream = io.StringIO()
        display = ProgressDisplay(hub, stream, ansi=False)
        display.render()
        display.render()  # same done count: no new line
        hub.point_finished("p2", "org / tomcatv", "simulated")
        display.render()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("sweep: 1/2")
        assert lines[1].startswith("sweep: 2/2")

    def test_ansi_mode_redraws_in_place(self):
        hub = self._busy_hub()
        stream = io.StringIO()
        display = ProgressDisplay(hub, stream, ansi=True)
        display.render()
        first = stream.getvalue()
        assert "\x1b[2K" in first
        assert "\x1b[" not in first.split("\x1b[2K")[0]  # no cursor-up yet
        display.render()
        assert "\x1b[2F" in stream.getvalue()  # moved up over the 2-line block

    def test_close_is_idempotent_and_renders_final_state(self):
        hub = self._busy_hub()
        stream = io.StringIO()
        display = ProgressDisplay(hub, stream, ansi=False)
        display.start()
        display.close()
        display.close()
        assert "sweep: 1/2" in stream.getvalue()


class TestDispatchSurface:
    """The engine's dispatch profile flows through every telemetry view."""

    _PROFILE = {
        "points": 6,
        "chunks": 4,
        "workers": 2,
        "steals": 2,
        "utilization": 0.913,
        "pool_reused": False,
        "worker_stats": {
            "pid:11": {"points": 4, "busy_seconds": 2.5, "steals": 2},
            "pid:12": {"points": 2, "busy_seconds": 1.25, "steals": 0},
        },
    }

    def _hub_with_dispatch(self) -> TelemetryHub:
        hub = _hub()
        hub.batch_started(6)
        hub.record_dispatch(dict(self._PROFILE))
        return hub

    def test_record_dispatch_round_trips_through_snapshot(self):
        snapshot = self._hub_with_dispatch().snapshot()
        assert snapshot["dispatch"] == self._PROFILE

    def test_no_dispatch_recorded_means_none_in_snapshot(self):
        hub = _hub()
        hub.batch_started(1)
        assert hub.snapshot()["dispatch"] is None

    def test_prometheus_exposes_dispatch_and_worker_series(self):
        text = render_prometheus(self._hub_with_dispatch().snapshot())
        for series in (
            "repro_dispatch_chunks_total 4",
            "repro_dispatch_steals_total 2",
            "repro_dispatch_utilization 0.913",
            'repro_worker_points_total{worker="pid:11"} 4',
            'repro_worker_points_total{worker="pid:12"} 2',
            'repro_worker_busy_seconds_total{worker="pid:11"} 2.5',
            'repro_worker_steals_total{worker="pid:12"} 0',
        ):
            assert series in text, series

    def test_prometheus_omits_dispatch_series_without_a_profile(self):
        hub = _hub()
        hub.batch_started(1)
        text = render_prometheus(hub.snapshot())
        assert "repro_dispatch_" not in text
        assert "repro_worker_points_total" not in text

    def test_dispatch_series_keep_exposition_discipline(self):
        text = render_prometheus(self._hub_with_dispatch().snapshot())
        helps = [ln for ln in text.splitlines() if ln.startswith("# HELP")]
        types = [ln for ln in text.splitlines() if ln.startswith("# TYPE")]
        assert len(helps) == len(types)

    def test_progress_block_gains_a_pool_line(self):
        lines = render_progress_lines(self._hub_with_dispatch().snapshot())
        pool = [line for line in lines if line.startswith("  pool:")]
        assert len(pool) == 1
        assert "2 workers" in pool[0]
        assert "4 chunks" in pool[0]
        assert "2 steals" in pool[0]
        assert "91% busy" in pool[0]
        assert "pool cold" in pool[0]  # pool_reused is False

    def test_warm_pool_with_no_steals_renders_lean(self):
        profile = dict(self._PROFILE, steals=0, pool_reused=True)
        hub = _hub()
        hub.batch_started(6)
        hub.record_dispatch(profile)
        (pool,) = [
            line
            for line in render_progress_lines(hub.snapshot())
            if line.startswith("  pool:")
        ]
        assert "steals" not in pool
        assert "pool cold" not in pool


class TestMetricsServer:
    def test_metrics_and_healthz_over_http(self):
        hub = _hub()
        hub.batch_started(5)
        server = MetricsServer(hub, 0)  # ephemeral port
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = resp.read().decode("utf-8")
            assert "repro_sweep_points_total 5" in body
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as resp:
                health = json.load(resp)
            assert health["status"] == "ok"
            assert health["uptime_seconds"] >= 0
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert excinfo.value.code == 404
        finally:
            server.close()


class TestSweepTelemetryScope:
    def test_off_state_installs_nothing(self):
        stream = io.StringIO()  # not a TTY: progress auto-off
        with sweep_telemetry(stream=stream) as hub:
            assert hub is None
            assert telemetry.active_hub() is None
        assert stream.getvalue() == ""

    def test_explicit_off_beats_tty(self):
        with sweep_telemetry(progress=False) as hub:
            assert hub is None

    def test_progress_installs_and_clears_hub(self):
        stream = io.StringIO()
        with sweep_telemetry(progress=True, stream=stream) as hub:
            assert hub is not None
            assert telemetry.active_hub() is hub
            hub.batch_started(1)
            hub.point_finished("p", "org / gcc", "simulated")
        assert telemetry.active_hub() is None
        assert "sweep: 1/1 points" in stream.getvalue()

    def test_serve_port_announces_endpoint(self):
        stream = io.StringIO()
        with sweep_telemetry(
            progress=False, serve_port=0, stream=stream
        ) as hub:
            assert hub is not None
            announced = stream.getvalue()
            assert "/metrics and /healthz on http://127.0.0.1:" in announced
            port = int(announced.rstrip().rstrip("]").rsplit(":", 1)[1])
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=5
            ) as resp:
                assert resp.status == 200
        assert telemetry.active_hub() is None


class TestWorkerQueue:
    def test_queue_round_trip_through_drain_thread(self):
        import time as time_mod

        hub = _hub()
        queue = hub.worker_queue()
        try:
            if queue is None:
                pytest.skip("multiprocessing manager unavailable in sandbox")
            assert hub.worker_queue() is queue  # lazily created once
            queue.put(
                {
                    "type": "beat",
                    "point": "p1",
                    "label": "org / gcc",
                    "worker": "pid:42",
                    "instructions": 10,
                    "cycle": 8,
                    "budget": 100,
                }
            )
            deadline = time_mod.monotonic() + 5.0
            while time_mod.monotonic() < deadline:
                if hub.snapshot()["in_flight"]:
                    break
                time_mod.sleep(0.05)
            (point,) = hub.snapshot()["in_flight"]
            assert point["worker"] == "pid:42"
            assert point["instructions"] == 10
        finally:
            hub.close()

    def test_close_without_queue_is_safe(self):
        hub = _hub()
        hub.close()
        hub.close()


class TestSpansSurface:
    """Sweep span summaries flow through snapshot, /metrics, and recap."""

    def _spanned_hub(self) -> TelemetryHub:
        hub = _hub()
        hub.batch_started(2)
        hub.point_finished("p1", "org / gcc", "simulated")
        hub.point_finished("p2", "org / tomcatv", "simulated")
        hub.record_spans(
            {
                "recorded": 9,
                "by_name": {
                    "point": {"count": 2, "seconds": 3.5},
                    "sweep": {"count": 1, "seconds": 4.0},
                },
                "top": [{"name": "sweep", "count": 1, "seconds": 4.0}],
            }
        )
        return hub

    def test_snapshot_carries_spans(self):
        snapshot = self._spanned_hub().snapshot()
        assert snapshot["spans"]["recorded"] == 9
        assert _hub().snapshot()["spans"] is None

    def test_prometheus_span_series(self):
        text = render_prometheus(self._spanned_hub().snapshot())
        assert "repro_span_recorded_total 9" in text
        assert 'repro_span_seconds_total{name="point"} 3.5' in text
        assert 'repro_span_count_total{name="point"} 2' in text

    def test_span_series_keep_exposition_discipline(self):
        text = render_prometheus(self._spanned_hub().snapshot())
        names = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                names.add(line.split()[2])
            elif not line.startswith("#") and line.strip():
                bare = line.split("{")[0].split()[0]
                assert bare in names, f"sample {bare} without HELP/TYPE"

    def test_no_spans_no_span_series(self):
        hub = _hub()
        hub.batch_started(1)
        assert "repro_span" not in hub.prometheus()


class TestFinalSummary:
    def test_recap_line(self):
        hub = _hub()
        hub.batch_started(3)
        hub.point_finished("p1", "a", "simulated")
        hub.point_finished("p2", "b", "simulated")
        hub.point_finished("p3", "c", "gap")
        hub.record_dispatch(
            {"workers": 2, "utilization": 0.75, "steals": 1, "chunks": 2}
        )
        hub.record_spans({"recorded": 12, "by_name": {}, "top": []})
        line = render_final_summary(hub.snapshot())
        assert line.startswith("sweep finished: 3/3 points in ")
        assert "1 FAILED" in line
        assert "2 workers 75% busy" in line
        assert "1 steal(s)" in line
        assert "12 spans" in line

    def test_minimal_recap_without_extras(self):
        hub = _hub()
        hub.batch_started(1)
        hub.point_finished("p1", "a", "simulated")
        line = render_final_summary(hub.snapshot())
        assert "FAILED" not in line
        assert "workers" not in line
        assert "spans" not in line

    def test_progress_close_prints_the_recap_once(self):
        hub = _hub()
        hub.batch_started(1)
        hub.point_finished("p1", "a", "simulated")
        stream = io.StringIO()
        display = ProgressDisplay(hub, stream, ansi=False)
        display.start()
        display.close()
        display.close()
        output = stream.getvalue()
        assert output.count("sweep finished:") == 1
