"""Latency attribution: exact sums, no perturbation, histogram math.

The load-bearing guarantee is **exactness**: for every traced load the
critical-path components sum to the observed latency, across SRAM
multi-port, banked, duplicate, and DRAM-cache organizations.  The
accumulator enforces the invariant at record time, so these tests both
check the traced event paths directly and prove the enforcement
tripwire works.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.core.experiment import ExperimentSettings, _simulate
from repro.core.organizations import KB, banked, dram_cache, duplicate, ideal_ports
from repro.observability import attribution, events, trace
from repro.observability.attribution import (
    BUCKET_BOUNDS,
    AttributionAccumulator,
    LatencyHistogram,
    critical_path,
)
from repro.robustness.errors import SimulationInvariantError
from repro.workloads.catalog import benchmark

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)

#: One organization per hardware style the taxonomy must decompose.
ORGANIZATIONS = [
    pytest.param(ideal_ports(32 * KB, ports=2), id="sram-multiport"),
    pytest.param(banked(32 * KB, banks=4), id="banked"),
    pytest.param(duplicate(32 * KB, line_buffer=True), id="duplicate-lb"),
    pytest.param(dram_cache(line_buffer=True), id="dram-cache"),
]


def _attributed_run(organization, bench="gcc"):
    with attribution.attributing():
        with trace.tracing(capacity=500_000) as tracer:
            result = _simulate(organization, benchmark(bench), FAST)
    assert tracer.dropped == 0, "test capacity must retain the whole stream"
    return result, tracer


class TestExactSums:
    @pytest.mark.parametrize("organization", ORGANIZATIONS)
    def test_every_load_path_sums_to_its_latency(self, organization):
        result, tracer = _attributed_run(organization)
        loads = tracer.events(events.MEM_LOAD)
        assert loads, "expected traced loads"
        for event in loads:
            path = event.fields.get("path")
            assert path is not None, f"missing path on {event}"
            latency = event.fields["done"] - event.cycle
            assert sum(path.values()) == latency, event

    @pytest.mark.parametrize("organization", ORGANIZATIONS)
    def test_component_totals_equal_aggregate_load_latency(self, organization):
        result, _ = _attributed_run(organization)
        metrics = result.metrics
        assert (
            metrics["attribution.latency.cycles"]
            == metrics["memory.load_latency_total"]
        )
        component_total = sum(
            value
            for name, value in metrics.items()
            if name.startswith("attribution.component.")
            and name.endswith(".cycles")
        )
        assert component_total == metrics["attribution.latency.cycles"]
        assert metrics["attribution.loads"] == metrics["memory.loads"]

    def test_banked_point_attributes_bank_conflicts(self):
        result, _ = _attributed_run(banked(32 * KB, banks=1), "tomcatv")
        metrics = result.metrics
        conflicts = metrics.get("attribution.component.bank_conflict.cycles", 0)
        assert conflicts > 0
        # The arbiter's wait counter covers loads AND stores; the
        # load-only attribution view must stay within it.
        assert conflicts <= metrics["memory.ports.wait_cycles"]

    def test_outcome_split_covers_every_load(self):
        result, _ = _attributed_run(duplicate(32 * KB, line_buffer=True))
        metrics = result.metrics
        outcome_loads = sum(
            value
            for name, value in metrics.items()
            if name.startswith("attribution.outcome.") and name.endswith(".loads")
        )
        assert outcome_loads == metrics["attribution.loads"]


class TestNoPerturbation:
    @pytest.mark.parametrize("organization", ORGANIZATIONS)
    def test_attribution_changes_no_simulated_number(self, organization):
        plain = _simulate(organization, benchmark("gcc"), FAST)
        with attribution.attributing():
            attributed = _simulate(organization, benchmark("gcc"), FAST)
        assert attributed.cycles == plain.cycles
        assert attributed.instructions == plain.instructions
        stripped = {
            name: value
            for name, value in attributed.metrics.items()
            if not name.startswith("attribution.")
        }
        assert stripped == plain.metrics

    def test_disabled_runs_carry_no_attribution_keys(self):
        result = _simulate(duplicate(32 * KB), benchmark("gcc"), FAST)
        assert not any(
            name.startswith("attribution.") for name in result.metrics
        )


class TestEnableSwitch:
    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv(attribution.ENV_FLAG, "1")
        assert attribution.enabled()
        monkeypatch.setenv(attribution.ENV_FLAG, "0")
        assert not attribution.enabled()
        monkeypatch.setenv(attribution.ENV_FLAG, "")
        assert not attribution.enabled()

    def test_attributing_scope_restores(self):
        assert not attribution.enabled()
        with attribution.attributing():
            assert attribution.enabled()
        assert not attribution.enabled()


class TestAccumulatorGuards:
    def test_mismatched_sum_raises(self):
        accumulator = AttributionAccumulator()
        with pytest.raises(SimulationInvariantError, match="sum to 3"):
            accumulator.record("l1_hit", 5, [("l1_access", 3)])

    def test_unknown_component_raises(self):
        accumulator = AttributionAccumulator()
        with pytest.raises(SimulationInvariantError, match="unknown"):
            accumulator.record("l1_hit", 1, [("warp_drive", 1)])

    def test_negative_component_raises(self):
        accumulator = AttributionAccumulator()
        with pytest.raises(SimulationInvariantError, match="negative"):
            accumulator.record("l1_hit", 0, [("l1_access", 1), ("memory", -1)])

    def test_reset_zeroes_everything(self):
        accumulator = AttributionAccumulator()
        accumulator.record("l1_hit", 2, [("l1_access", 2)])
        accumulator.reset()
        assert accumulator.loads == 0
        assert accumulator.to_metrics()["attribution.latency.cycles"] == 0

    def test_critical_path_drops_zero_terms(self):
        path = critical_path(l2_access=10, bus_queue=0, bus_transfer=3)
        assert path == (("l2_access", 10), ("bus_transfer", 3))


class TestHistogram:
    @given(st.lists(st.integers(min_value=0, max_value=5_000), min_size=1))
    @hyp_settings(max_examples=60, deadline=None)
    def test_percentiles_are_monotone_and_bounded(self, values):
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        # Percentiles interpolate inside fixed buckets, so the upper
        # bound is the observed max rounded up to its bucket ceiling
        # (overflow values report the exact max instead).
        top = max(values)
        ceiling = next((b for b in BUCKET_BOUNDS if b >= top), top)
        assert 0 <= p50 <= p95 <= p99 <= ceiling
        assert histogram.total == len(values)
        assert histogram.sum == sum(values)
        assert sum(histogram.counts) + histogram.overflow == len(values)

    def test_interpolation_in_uniform_bucket(self):
        histogram = LatencyHistogram()
        for value in (1, 2, 3, 4):
            histogram.record(value)
        assert histogram.percentile(0.5) == pytest.approx(2.0)
        assert histogram.percentile(1.0) == pytest.approx(4.0)

    def test_overflow_reports_observed_maximum(self):
        histogram = LatencyHistogram()
        histogram.record(99_999)
        assert histogram.percentile(0.99) == 99_999
        assert histogram.overflow == 1

    def test_fraction_validation(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_metrics_export_shape(self):
        accumulator = AttributionAccumulator()
        accumulator.record("l1_hit", 2, [("l1_access", 2)])
        accumulator.record("miss_alloc", 80, [("l1_access", 2), ("memory", 78)])
        metrics = accumulator.to_metrics()
        assert metrics["attribution.loads"] == 2
        assert metrics["attribution.latency.cycles"] == 82
        assert metrics["attribution.latency.le_0002"] == 1
        assert metrics["attribution.component.memory.cycles"] == 78
        assert metrics["attribution.outcome.miss_alloc.loads"] == 1
        assert all(
            isinstance(value, (int, float)) for value in metrics.values()
        )
