"""The profiler and the pipeline-utilization breakdown table."""

import pytest

from repro.core.experiment import ExperimentSettings, run_experiment
from repro.core.organizations import banked, duplicate
from repro.cpu.result import SimulationResult
from repro.observability import PhaseProfiler, tracing
from repro.observability.utilization import utilization_rows, utilization_summary

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


class TestPhaseProfiler:
    def test_records_phases_in_order(self):
        profiler = PhaseProfiler()
        with profiler.phase("alpha"):
            pass
        with profiler.phase("beta"):
            pass
        assert [r.name for r in profiler.records()] == ["alpha", "beta"]
        assert profiler.total_seconds >= 0.0

    def test_reentering_a_phase_accumulates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("alpha"):
                pass
        assert len(profiler.records()) == 1

    def test_counts_events_when_tracing(self):
        profiler = PhaseProfiler()
        with tracing(capacity=0) as tracer:
            with profiler.phase("sim"):
                tracer.capture("k", 0, {})
                tracer.capture("k", 1, {})
        assert profiler.records()[0].events == 2

    def test_summary_renders_table(self):
        profiler = PhaseProfiler()
        with profiler.phase("alpha"):
            pass
        summary = profiler.summary()
        assert "alpha" in summary
        assert "events/s" in summary
        assert "total" in summary

    def test_empty_summary_is_empty(self):
        assert PhaseProfiler().summary() == ""


class TestPhaseRecordMath:
    def test_events_per_second_guards_zero_wall_clock(self):
        from repro.observability import PhaseRecord

        record = PhaseRecord("idle")
        assert record.events_per_second == 0.0
        record.seconds = 2.0
        record.events = 500
        assert record.events_per_second == 250.0

    def test_phase_yields_its_record(self):
        profiler = PhaseProfiler()
        with profiler.phase("alpha") as record:
            assert record.name == "alpha"
        assert profiler.records() == [record]

    def test_summary_reports_throughput_and_dashes(self):
        profiler = PhaseProfiler()
        with tracing(capacity=0) as tracer:
            with profiler.phase("traced"):
                for cycle in range(100):
                    tracer.capture("k", cycle, {})
        with profiler.phase("quiet"):
            pass
        summary = profiler.summary()
        traced_row = next(
            line for line in summary.splitlines() if "traced" in line
        )
        quiet_row = next(
            line for line in summary.splitlines() if "quiet" in line
        )
        assert "100" in traced_row  # event count column
        assert "-" in quiet_row  # no events -> dashes, not zeros
        total_row = next(
            line for line in summary.splitlines() if "total" in line
        )
        assert "100.0%" in total_row

    def test_events_only_counted_while_tracing(self):
        profiler = PhaseProfiler()
        with profiler.phase("untraced"):
            pass
        assert profiler.records()[0].events == 0

    def test_phase_records_time_even_when_body_raises(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("boom"):
                raise RuntimeError("body failed")
        assert [r.name for r in profiler.records()] == ["boom"]
        assert profiler.records()[0].seconds >= 0.0


class TestUtilizationRowMath:
    def test_zero_cycle_metrics_render_dashes_not_zerodiv(self):
        rows = utilization_rows({})
        as_map = {(row[0], row[1]): row[2] for row in rows}
        assert as_map[("pipeline", "IPC")] == "-"
        assert as_map[("fetch stalls", "window full")] == "-"
        assert as_map[("cache ports", "avg wait (cycles)")] == "-"

    def test_served_by_rows_only_for_populated_levels(self):
        metrics = {
            "cpu.cycles": 100,
            "cpu.instructions": 100,
            "memory.loads": 10,
            "memory.stores": 0,
            "memory.served_by.l1": 8,
            "memory.served_by.memory": 2,
            "memory.served_by.l2": 0,
        }
        rows = utilization_rows(metrics)
        served = [row[1] for row in rows if row[0] == "data served by"]
        assert served == ["l1", "memory"]

    def test_bus_rows_require_the_metric_to_exist(self):
        base = {"cpu.cycles": 100, "cpu.instructions": 100}
        assert not any(
            row[0].startswith("bus") for row in utilization_rows(base)
        )
        with_bus = dict(
            base,
            **{
                "memory.bus.chip.busy_cycles": 40,
                "memory.bus.chip.queue_cycles": 5,
            },
        )
        rows = utilization_rows(with_bus)
        bus_rows = [row for row in rows if row[0] == "bus chip<->L2"]
        assert ["bus chip<->L2", "busy", "40.0%"] in bus_rows
        assert ["bus chip<->L2", "queue cycles", "5"] in bus_rows

    def test_line_buffer_hit_rate_row(self):
        metrics = {
            "cpu.cycles": 100,
            "cpu.instructions": 100,
            "memory.line_buffer.load_lookups": 50,
            "memory.line_buffer.load_hits": 25,
        }
        rows = utilization_rows(metrics)
        assert ["line buffer", "load hit rate", "50.0%"] in rows


class TestUtilization:
    def test_rows_cover_the_paper_breakdown(self):
        result = run_experiment(duplicate(line_buffer=True), "gcc", FAST)
        rows = utilization_rows(result.metrics)
        sections = {row[0] for row in rows}
        assert {"pipeline", "fetch stalls", "data served by", "cache ports", "MSHRs"} <= sections
        assert ["pipeline", "IPC", f"{result.ipc:.2f}"] in rows

    def test_bank_conflicts_only_for_banked_caches(self):
        banked_rows = utilization_rows(
            run_experiment(banked(banks=2), "tomcatv", FAST).metrics
        )
        assert any(row[1] == "bank conflicts" for row in banked_rows)

    def test_summary_renders_and_handles_edge_results(self):
        result = run_experiment(duplicate(line_buffer=True), "gcc", FAST)
        text = utilization_summary(result, "Utilization: gcc")
        assert "Utilization: gcc" in text
        assert "line buffer" in text
        failed = SimulationResult(instructions=0, cycles=1, failed=True)
        assert "simulation failed" in utilization_summary(failed)
        bare = SimulationResult(instructions=1, cycles=1)
        assert "no metrics snapshot" in utilization_summary(bare)
