"""The profiler and the pipeline-utilization breakdown table."""

from repro.core.experiment import ExperimentSettings, run_experiment
from repro.core.organizations import banked, duplicate
from repro.cpu.result import SimulationResult
from repro.observability import PhaseProfiler, tracing
from repro.observability.utilization import utilization_rows, utilization_summary

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


class TestPhaseProfiler:
    def test_records_phases_in_order(self):
        profiler = PhaseProfiler()
        with profiler.phase("alpha"):
            pass
        with profiler.phase("beta"):
            pass
        assert [r.name for r in profiler.records()] == ["alpha", "beta"]
        assert profiler.total_seconds >= 0.0

    def test_reentering_a_phase_accumulates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("alpha"):
                pass
        assert len(profiler.records()) == 1

    def test_counts_events_when_tracing(self):
        profiler = PhaseProfiler()
        with tracing(capacity=0) as tracer:
            with profiler.phase("sim"):
                tracer.capture("k", 0, {})
                tracer.capture("k", 1, {})
        assert profiler.records()[0].events == 2

    def test_summary_renders_table(self):
        profiler = PhaseProfiler()
        with profiler.phase("alpha"):
            pass
        summary = profiler.summary()
        assert "alpha" in summary
        assert "events/s" in summary
        assert "total" in summary

    def test_empty_summary_is_empty(self):
        assert PhaseProfiler().summary() == ""


class TestUtilization:
    def test_rows_cover_the_paper_breakdown(self):
        result = run_experiment(duplicate(line_buffer=True), "gcc", FAST)
        rows = utilization_rows(result.metrics)
        sections = {row[0] for row in rows}
        assert {"pipeline", "fetch stalls", "data served by", "cache ports", "MSHRs"} <= sections
        assert ["pipeline", "IPC", f"{result.ipc:.2f}"] in rows

    def test_bank_conflicts_only_for_banked_caches(self):
        banked_rows = utilization_rows(
            run_experiment(banked(banks=2), "tomcatv", FAST).metrics
        )
        assert any(row[1] == "bank conflicts" for row in banked_rows)

    def test_summary_renders_and_handles_edge_results(self):
        result = run_experiment(duplicate(line_buffer=True), "gcc", FAST)
        text = utilization_summary(result, "Utilization: gcc")
        assert "Utilization: gcc" in text
        assert "line buffer" in text
        failed = SimulationResult(instructions=0, cycles=1, failed=True)
        assert "simulation failed" in utilization_summary(failed)
        bare = SimulationResult(instructions=1, cycles=1)
        assert "no metrics snapshot" in utilization_summary(bare)
