"""Unit suite for the sweep-scope span tracer.

Covers the span lifecycle (nesting, explicit parents, error capture,
double-close tolerance), cross-process reassembly through the worker
emit channel, sink round-trips including torn tails and truncated gzip
members, and the critical-path analyzer on hand-built traces whose
answers are known exactly.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.observability import spans as sp
from repro.observability.spans import (
    NULL_SPAN,
    SpanRecorder,
    analyze,
    collecting,
    next_trace_id,
    path_segments,
    read_spans,
    render_analysis,
)


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with spans off."""
    sp.uninstall()
    yield
    sp.uninstall()


def _recorder(**kwargs) -> SpanRecorder:
    recorder = SpanRecorder(**kwargs)
    recorder.trace_id = "t-test"
    return recorder


class TestSpanLifecycle:
    def test_nesting_assigns_parents(self):
        recorder = _recorder()
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                assert inner.parent == outer.span_id
        assert outer.parent is None
        by_name = {s["name"]: s for s in recorder.finished}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        # Children close first, so they land in the stream first.
        assert recorder.finished[0]["name"] == "inner"

    def test_span_ids_are_unique_and_pid_scoped(self):
        recorder = _recorder()
        ids = {recorder._next_span_id() for _ in range(100)}
        assert len(ids) == 100
        assert all("." in span_id for span_id in ids)

    def test_timing_fields(self):
        recorder = _recorder()
        with recorder.span("timed"):
            pass
        span = recorder.finished[0]
        assert span["dur"] >= 0.0
        assert span["t0"] > 0
        assert span["trace"] == "t-test"
        assert span["proc"] == recorder.proc

    def test_exception_marks_error_attr(self):
        recorder = _recorder()
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("boom")
        assert recorder.finished[0]["attrs"]["error"] == "ValueError"
        assert recorder._stack == []

    def test_set_attaches_attrs_mid_span(self):
        recorder = _recorder()
        with recorder.span("s", fixed=1) as scope:
            scope.set(late=2)
        assert recorder.finished[0]["attrs"] == {"fixed": 1, "late": 2}

    def test_double_close_records_once(self):
        recorder = _recorder()
        scope = recorder.open("once")
        scope.close()
        scope.close()
        assert recorder.recorded == 1

    def test_close_with_explicit_end_time(self):
        recorder = _recorder()
        scope = recorder.open("waited")
        scope.close(end=scope.t0 + 2.5)
        assert recorder.finished[0]["dur"] == pytest.approx(2.5, abs=1e-6)

    def test_negative_duration_clamps_to_zero(self):
        recorder = _recorder()
        scope = recorder.open("skewed")
        scope.close(end=scope.t0 - 1.0)
        assert recorder.finished[0]["dur"] == 0.0

    def test_open_with_explicit_parent_and_out_of_order_close(self):
        recorder = _recorder()
        with recorder.span("root") as root:
            late = recorder.open("overlapping", parent=root.span_id)
            with recorder.span("nested"):
                pass
            late.close()
        spans = {s["name"]: s for s in recorder.finished}
        assert spans["overlapping"]["parent"] == spans["root"]["span"]
        assert spans["nested"]["parent"] == spans["root"]["span"]

    def test_instant_has_zero_duration(self):
        recorder = _recorder()
        recorder.instant("steal", chunk=3)
        span = recorder.finished[0]
        assert span["dur"] == 0.0
        assert span["attrs"] == {"chunk": 3}

    def test_null_span_is_inert(self):
        with NULL_SPAN as scope:
            assert scope is None
        NULL_SPAN.set(anything=1)
        NULL_SPAN.close()

    def test_module_span_gates(self):
        assert sp.span("off") is NULL_SPAN  # nothing installed
        recorder = SpanRecorder()
        sp.install(recorder)
        assert sp.span("no-trace") is NULL_SPAN  # no trace open
        recorder.trace_id = "t"
        assert sp.span("live") is not NULL_SPAN

    def test_record_rejects_junk(self):
        recorder = _recorder()
        recorder.record(None)
        recorder.record("not a dict")
        recorder.record({"no": "span key"})
        assert recorder.recorded == 0

    def test_record_dedups_by_span_id(self):
        recorder = _recorder()
        span = {"span": "abc", "name": "dup", "t0": 1.0, "dur": 0.5}
        recorder.record(dict(span))
        recorder.record(dict(span))
        assert recorder.recorded == 1


class TestRootTrace:
    def test_trace_opens_and_restores(self):
        recorder = SpanRecorder()
        assert recorder.trace_id is None
        with recorder.trace("t-1", "sweep", points=4) as root:
            assert recorder.trace_id == "t-1"
            with recorder.span("child") as child:
                assert child.parent == root.span_id
        assert recorder.trace_id is None
        root_span = [s for s in recorder.finished if s["name"] == "sweep"][0]
        assert root_span["parent"] is None
        assert root_span["attrs"] == {"points": 4}

    def test_trace_error_reaches_root_attrs(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with recorder.trace("t-err", "sweep"):
                raise RuntimeError("die")
        root = recorder.finished[-1]
        assert root["attrs"]["error"] == "RuntimeError"

    def test_next_trace_id_is_digest_derived_and_unique(self):
        digest = "abcdef0123456789"
        first = next_trace_id(digest)
        second = next_trace_id(digest)
        assert first.startswith(digest[:12])
        assert first != second


class TestCrossProcess:
    def test_worker_emit_and_parent_reassembly(self):
        wire: list[dict] = []
        worker = SpanRecorder(emit=wire.append, proc="worker-9")
        ctx = {"trace": "t-x", "parent": "parent-span"}
        with sp_adopt(worker, ctx):
            with worker.span("point", chunk=2):
                with worker.span("point.run"):
                    pass
        assert worker.finished == []  # emitted, not retained
        assert len(wire) == 2
        point = [s for s in wire if s["name"] == "point"][0]
        assert point["trace"] == "t-x"
        assert point["parent"] == "parent-span"
        assert point["proc"] == "worker-9"

        parent = SpanRecorder()
        parent.trace_id = "t-x"
        for span in wire:
            parent.record(span)
        assert parent.recorded == 2
        names = {s["name"] for s in parent.finished}
        assert names == {"point", "point.run"}

    def test_adopt_none_is_a_noop(self):
        recorder = _recorder()
        sp.install(recorder)
        with sp.adopt(None):
            assert recorder.trace_id == "t-test"

    def test_adopt_without_recorder_is_a_noop(self):
        with sp.adopt({"trace": "t", "parent": "p"}):
            pass

    def test_adopt_restores_previous_context(self):
        recorder = _recorder()
        sp.install(recorder)
        with sp.adopt({"trace": "other", "parent": "pp"}):
            assert recorder.trace_id == "other"
            assert recorder.current_parent() == "pp"
        assert recorder.trace_id == "t-test"
        assert recorder.current_parent() is None

    def test_span_context_roundtrip(self):
        recorder = _recorder()
        with recorder.span("outer") as outer:
            ctx = recorder.span_context()
        assert ctx == {"trace": "t-test", "parent": outer.span_id}
        recorder.trace_id = None
        assert recorder.span_context() is None

    def test_install_worker_ships_over_callable(self):
        wire: list[dict] = []
        sp.install_worker(wire.append)
        recorder = sp.active()
        assert recorder is not None
        recorder.trace_id = "t-w"
        with sp.span("point"):
            pass
        assert wire and wire[0]["name"] == "point"
        assert wire[0]["proc"].startswith("worker-")


def sp_adopt(recorder, ctx):
    """Adopt on an explicit recorder (workers use the module global)."""
    sp.install(recorder)
    return sp.adopt(ctx)


class TestSinks:
    def test_plain_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with collecting(path) as recorder:
            with recorder.trace("t-file", "sweep"):
                with recorder.span("child"):
                    pass
        spans = read_spans(path)
        assert {s["name"] for s in spans} == {"sweep", "child"}

    def test_gzip_roundtrip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl.gz")
        with collecting(path) as recorder:
            with recorder.trace("t-gz", "sweep"):
                pass
        spans = read_spans(path)
        assert spans[0]["trace"] == "t-gz"

    def test_append_mode_accumulates_traces(self, tmp_path):
        path = str(tmp_path / "spans.jsonl.gz")
        for trace in ("t-a", "t-b"):
            with collecting(path) as recorder:
                with recorder.trace(trace, "sweep"):
                    pass
        traces = {s["trace"] for s in read_spans(path)}
        assert traces == {"t-a", "t-b"}

    def test_collecting_restores_previous_recorder(self, tmp_path):
        outer = SpanRecorder()
        sp.install(outer)
        with collecting(str(tmp_path / "x.jsonl")) as inner:
            assert sp.active() is inner
        assert sp.active() is outer

    def test_collecting_without_path_keeps_spans_in_memory(self):
        with collecting() as recorder:
            with recorder.trace("t-mem", "sweep"):
                pass
        assert recorder.path is None
        assert recorder.finished

    def test_torn_last_line_is_tolerated(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        good = json.dumps({"span": "a", "name": "ok", "t0": 1.0, "dur": 0.1})
        path.write_text(good + '\n{"span": "b", "name": "to', encoding="utf-8")
        spans = read_spans(str(path))
        assert len(spans) == 1
        assert spans[0]["span"] == "a"

    def test_non_span_lines_are_skipped(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        lines = [
            json.dumps({"span": "a", "name": "ok", "t0": 1.0, "dur": 0.1}),
            json.dumps([1, 2, 3]),
            json.dumps({"not": "a span"}),
            "",
        ]
        path.write_text("\n".join(lines), encoding="utf-8")
        assert len(read_spans(str(path))) == 1

    def test_truncated_gzip_is_salvaged(self, tmp_path):
        path = tmp_path / "cut.jsonl.gz"
        lines = "\n".join(
            json.dumps({"span": f"s{i}", "name": "n", "t0": float(i), "dur": 0.1})
            for i in range(200)
        )
        blob = gzip.compress(lines.encode("utf-8"))
        path.write_bytes(blob[: len(blob) // 2])
        spans = read_spans(str(path))  # must not raise
        assert isinstance(spans, list)

    def test_sink_batches_until_flush(self, tmp_path):
        path = str(tmp_path / "batched.jsonl")
        with collecting(path) as recorder:
            recorder.trace_id = "t-batch"
            with recorder.span("one"):
                pass
            assert read_spans(path) == []  # buffered, not yet written
            recorder.flush()
            assert len(read_spans(path)) == 1


class TestSummaries:
    def test_summary_aggregates_by_name(self):
        recorder = _recorder()
        for _ in range(3):
            with recorder.span("point"):
                pass
        with recorder.span("absorb"):
            pass
        summary = recorder.summary(top=1)
        assert summary["recorded"] == 4
        assert summary["by_name"]["point"]["count"] == 3
        assert len(summary["top"]) == 1

    def test_summary_filters_by_trace(self):
        recorder = SpanRecorder()
        with recorder.trace("t-1", "sweep"):
            pass
        with recorder.trace("t-2", "sweep"):
            pass
        assert recorder.summary(trace_id="t-1")["by_name"]["sweep"]["count"] == 1

    def test_run_info_names_the_sink(self):
        recorder = SpanRecorder(path="/tmp/s.jsonl")
        with recorder.trace("t-ri", "sweep"):
            pass
        info = recorder.run_info(trace_id="t-ri")
        assert info["path"] == "/tmp/s.jsonl"
        assert info["trace"] == "t-ri"
        assert info["recorded"] == 1
        assert info["top"][0]["name"] == "sweep"


# ---------------------------------------------------------------------------
# Analyzer: hand-built traces with exactly known answers
# ---------------------------------------------------------------------------


def _span(span, name, t0, dur, parent=None, proc="coordinator", trace="t", **attrs):
    return {
        "trace": trace,
        "span": span,
        "parent": parent,
        "name": name,
        "t0": t0,
        "dur": dur,
        "proc": proc,
        "attrs": attrs,
    }


def _two_worker_trace() -> list[dict]:
    """10s sweep, 2 jobs: worker A busy 1..9, worker B busy 1..5."""
    return [
        _span("r", "sweep", 0.0, 10.0, jobs=2, points=3),
        _span("c1", "chunk", 0.5, 9.0, parent="r", chunk=0),
        _span("w1", "chunk.wait", 0.5, 0.5, parent="c1", chunk=0),
        _span("p1", "point", 1.0, 4.0, parent="c1", proc="worker-a"),
        _span("p2", "point", 5.0, 4.5, parent="c1", proc="worker-a"),
        _span("c2", "chunk", 0.5, 5.0, parent="r", chunk=1),
        _span("w2", "chunk.wait", 0.5, 0.5, parent="c2", chunk=1),
        _span("p3", "point", 1.0, 4.0, parent="c2", proc="worker-b"),
    ]


class TestAnalyze:
    def test_empty_input(self):
        assert analyze([]) is None

    def test_basic_shape(self):
        analysis = analyze(_two_worker_trace())
        assert analysis["trace"] == "t"
        assert analysis["jobs"] == 2
        assert analysis["points"] == 3
        assert analysis["wall_seconds"] == 10.0
        assert analysis["span_count"] == 8

    def test_workers_and_serial_estimate(self):
        analysis = analyze(_two_worker_trace())
        assert analysis["workers"] == {"worker-a": 8.5, "worker-b": 4.0}
        assert analysis["serial_estimate_seconds"] == 12.5
        assert analysis["achieved_speedup"] == pytest.approx(1.25)
        # max point is 4.5s -> ideal bound min(2, 12.5/4.5)
        assert analysis["ideal_speedup"] == pytest.approx(2.0)

    def test_critical_worker_is_the_long_one(self):
        analysis = analyze(_two_worker_trace())
        assert analysis["critical_worker"] == "worker-a"
        assert analysis["critical_worker_seconds"] == pytest.approx(8.5)

    def test_queue_wait_fraction(self):
        analysis = analyze(_two_worker_trace())
        assert analysis["queue_wait_seconds"] == pytest.approx(1.0)
        # 1.0s of wait across 14.0s of chunk lifetime.
        assert analysis["queue_wait_fraction"] == pytest.approx(1.0 / 14.0, abs=1e-4)
        assert analysis["worst_wait"]["seconds"] == 0.5

    def test_critical_path_self_times_sum_to_wall(self):
        analysis = analyze(_two_worker_trace())
        assert analysis["critical_path_seconds"] == pytest.approx(
            analysis["wall_seconds"], rel=0.01
        )
        names = [seg["name"] for seg in analysis["critical_path"]]
        assert names[0] == "sweep"
        assert "point" in names

    def test_picks_last_trace_by_default(self):
        spans = [
            _span("r1", "sweep", 0.0, 1.0, trace="t-old"),
            _span("r2", "sweep", 5.0, 2.0, trace="t-new"),
        ]
        analysis = analyze(spans)
        assert analysis["trace"] == "t-new"
        assert analyze(spans, trace_id="t-old")["wall_seconds"] == 1.0

    def test_unknown_trace_is_none(self):
        assert analyze(_two_worker_trace(), trace_id="t-missing") is None

    def test_root_prefers_sweep_name(self):
        spans = [
            _span("big", "ledger.append", 0.0, 50.0),
            _span("r", "sweep", 0.0, 10.0),
        ]
        assert analyze(spans)["wall_seconds"] == 10.0

    def test_root_falls_back_to_longest(self):
        spans = [
            _span("a", "alpha", 0.0, 1.0),
            _span("b", "beta", 0.0, 3.0),
        ]
        assert analyze(spans)["wall_seconds"] == 3.0

    def test_path_segments_cover_nested_chain(self):
        root = sp._build_tree(
            [
                _span("r", "sweep", 0.0, 10.0),
                _span("a", "stage", 0.0, 6.0, parent="r"),
                _span("b", "stage", 6.0, 4.0, parent="r"),
                _span("a1", "leaf", 1.0, 5.0, parent="a"),
            ]
        )[0]
        segments = path_segments(root)
        self_by_span = {seg["span"]: seg["self_seconds"] for seg in segments}
        assert self_by_span["r"] == pytest.approx(0.0)
        assert self_by_span["a"] == pytest.approx(1.0)
        assert self_by_span["b"] == pytest.approx(4.0)
        assert self_by_span["a1"] == pytest.approx(5.0)


class TestRenderAnalysis:
    def test_verdict_line(self):
        text = render_analysis(analyze(_two_worker_trace()))
        assert "jobs 2:" in text
        assert "85% of wall clock on the critical path of worker-a" in text
        assert "ideal speedup 2.0x, achieved 1.2x" in text
        assert "critical path:" in text
        assert "by span name:" in text

    def test_queue_wait_clause_when_significant(self):
        spans = _two_worker_trace()
        for s in spans:
            if s["name"] == "chunk.wait":
                s["dur"] = 6.0
        text = render_analysis(analyze(spans))
        assert "of chunk lifetime queued" in text

    def test_tiny_queue_wait_is_suppressed(self):
        spans = _two_worker_trace()
        for s in spans:
            if s["name"] == "chunk.wait":
                s["dur"] = 0.001
        assert "queued" not in render_analysis(analyze(spans))

    def test_dominant_chunk_is_named(self):
        spans = _two_worker_trace()
        spans[2]["dur"] = 8.0  # w1, chunk 0
        text = render_analysis(analyze(spans))
        assert "dominated by one chunk (chunk 0)" in text
