"""Chrome trace-event export: schema validity, async pairing, JSONL I/O.

The exported JSON has to load in Perfetto / chrome://tracing, so these
tests parse the file back and hold it to the trace-event contract:
every entry has a phase, complete slices have non-negative durations,
async begin/end events pair up by (category, id), and metadata names
every track before its first event.
"""

from __future__ import annotations

import gzip
import io
import json

import pytest

from repro.core.experiment import ExperimentSettings, _simulate
from repro.core.organizations import KB, banked, duplicate
from repro.observability import trace
from repro.observability.chrometrace import (
    ORCHESTRATION_PID,
    chrome_trace_events,
    read_jsonl,
    span_trace_events,
    write_chrome_spans,
    write_chrome_trace,
)
from repro.workloads.catalog import benchmark

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


@pytest.fixture(scope="module")
def traced_run():
    with trace.tracing(capacity=500_000) as tracer:
        _simulate(duplicate(32 * KB, line_buffer=True), benchmark("gcc"), FAST)
    assert tracer.dropped == 0
    return tracer.events()


class TestChromeEvents:
    def test_every_event_is_well_formed(self, traced_run):
        for entry in chrome_trace_events(traced_run):
            assert entry["ph"] in {"M", "X", "i", "b", "e"}
            assert entry["pid"] == 1
            if entry["ph"] == "M":
                assert entry["name"] in {"process_name", "thread_name"}
                continue
            assert isinstance(entry["ts"], int) and entry["ts"] >= 0
            assert entry["cat"]
            if entry["ph"] == "X":
                assert entry["dur"] >= 0

    def test_metadata_precedes_all_events(self, traced_run):
        entries = chrome_trace_events(traced_run)
        named_tids = set()
        for entry in entries:
            if entry["ph"] == "M":
                if entry["name"] == "thread_name":
                    named_tids.add(entry["tid"])
                continue
            assert entry["tid"] in named_tids, f"unnamed track {entry['tid']}"

    def test_async_pairs_balance(self, traced_run):
        open_pairs: dict[tuple, int] = {}
        for entry in chrome_trace_events(traced_run):
            if entry["ph"] not in {"b", "e"}:
                continue
            key = (entry["cat"], entry["id"])
            open_pairs[key] = open_pairs.get(key, 0) + (
                1 if entry["ph"] == "b" else -1
            )
            assert open_pairs[key] >= 0, f"end before begin for {key}"
        assert all(count == 0 for count in open_pairs.values())

    def test_load_slices_cover_outcomes(self, traced_run):
        slices = [
            entry
            for entry in chrome_trace_events(traced_run)
            if entry["ph"] == "X" and entry["cat"] == "mem" and entry["tid"] == 2
        ]
        assert slices
        assert {entry["name"] for entry in slices} <= {
            "l1_hit",
            "lb_hit",
            "delayed_hit",
            "victim_hit",
            "miss_merged",
            "miss_alloc",
        }


class TestWriteChromeTrace:
    def test_written_file_parses_and_counts(self, traced_run, tmp_path):
        destination = tmp_path / "run.trace.json"
        count = write_chrome_trace(traced_run, destination)
        document = json.loads(destination.read_text(encoding="utf-8"))
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert len(document["traceEvents"]) == count > 0

    def test_accepts_file_like_destination(self, traced_run):
        buffer = io.StringIO()
        count = write_chrome_trace(traced_run, buffer)
        assert len(json.loads(buffer.getvalue())["traceEvents"]) == count


class TestJsonlRoundTrip:
    def _sink_run(self, path):
        sink = trace.open_sink(str(path))
        try:
            with trace.tracing(capacity=500_000, sink=sink) as tracer:
                _simulate(banked(32 * KB, banks=4), benchmark("gcc"), FAST)
        finally:
            sink.close()
        return tracer.events()

    def test_gzip_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        ring_events = self._sink_run(path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert sum(1 for _ in handle) == len(ring_events)
        assert list(read_jsonl(path)) == ring_events

    def test_plain_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ring_events = self._sink_run(path)
        assert list(read_jsonl(path)) == ring_events

    def test_export_from_file_matches_export_from_ring(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        ring_events = self._sink_run(path)
        assert chrome_trace_events(read_jsonl(path)) == chrome_trace_events(
            ring_events
        )


class TestSpanTraceEvents:
    """Orchestration spans -> per-worker Chrome tracks."""

    def _spans(self):
        return [
            {
                "trace": "t", "span": "r", "parent": None, "name": "sweep",
                "t0": 100.0, "dur": 10.0, "proc": "coordinator",
                "attrs": {"jobs": 2},
            },
            {
                "trace": "t", "span": "c1", "parent": "r", "name": "chunk",
                "t0": 100.5, "dur": 9.0, "proc": "coordinator",
                "attrs": {"chunk": 0},
            },
            {
                "trace": "t", "span": "w1", "parent": "c1", "name": "chunk.wait",
                "t0": 100.5, "dur": 1.5, "proc": "coordinator",
                "attrs": {"chunk": 0},
            },
            {
                "trace": "t", "span": "p1", "parent": "c1", "name": "point",
                "t0": 102.0, "dur": 4.0, "proc": "worker-1",
                "attrs": {"digest": "abc"},
            },
            {
                "trace": "t", "span": "s1", "parent": "r", "name": "chunk.steal",
                "t0": 103.0, "dur": 0.0, "proc": "coordinator",
                "attrs": {"chunk": 1},
            },
        ]

    def test_one_track_per_proc_coordinator_first(self):
        events = span_trace_events(self._spans())
        process_meta = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert process_meta[0]["args"]["name"] == "repro sweep orchestration"
        threads = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert threads == {"coordinator": 1, "worker-1": 2}

    def test_slices_are_relative_microseconds(self):
        events = span_trace_events(self._spans())
        slices = {e["args"]["span"]: e for e in events if e["ph"] == "X"}
        assert slices["r"]["ts"] == 0
        assert slices["r"]["dur"] == 10_000_000
        assert slices["p1"]["ts"] == 2_000_000
        assert slices["p1"]["dur"] == 4_000_000
        assert slices["p1"]["pid"] == ORCHESTRATION_PID

    def test_zero_duration_becomes_instant(self):
        events = span_trace_events(self._spans())
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "chunk.steal"

    def test_queue_wait_doubles_as_async_pair(self):
        events = span_trace_events(self._spans())
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["cat"] == ends[0]["cat"] == "queue"
        assert begins[0]["id"] == ends[0]["id"] == 0
        assert ends[0]["ts"] - begins[0]["ts"] == 1_500_000

    def test_junk_entries_are_filtered(self):
        events = span_trace_events([{"no": "span"}, "junk", None])
        assert len(events) == 1  # just the process_name metadata

    def test_write_chrome_spans_roundtrip(self, tmp_path):
        destination = tmp_path / "spans.trace.json"
        count = write_chrome_spans(self._spans(), destination)
        document = json.loads(destination.read_text(encoding="utf-8"))
        assert len(document["traceEvents"]) == count > 0
        assert document["displayTimeUnit"] == "ms"
        assert "wall-clock" in document["otherData"]["time_unit"]

    def test_write_accepts_file_like(self):
        buffer = io.StringIO()
        count = write_chrome_spans(self._spans(), buffer)
        assert len(json.loads(buffer.getvalue())["traceEvents"]) == count

    def test_recorded_spans_export_cleanly(self, tmp_path):
        """End to end: a real recorder's output loads as a trace."""
        from repro.observability import spans as sp

        recorder = sp.SpanRecorder()
        with recorder.trace("t-e2e", "sweep", jobs=1):
            with recorder.span("plan.lookup"):
                pass
            recorder.instant("checkpoint.mark")
        buffer = io.StringIO()
        count = write_chrome_spans(recorder.finished, buffer)
        document = json.loads(buffer.getvalue())
        assert len(document["traceEvents"]) == count
        phases = {e["ph"] for e in document["traceEvents"]}
        assert "X" in phases and "M" in phases
