"""Telemetry for the recovery subsystem: timeout and resume counters."""

from repro.observability.telemetry import (
    TelemetryHub,
    render_progress_lines,
    render_prometheus,
)


class TestTimeoutAccounting:
    def test_timeout_counts_as_failed_and_gap_and_timeout(self):
        hub = TelemetryHub()
        hub.batch_started(2)
        hub.point_started("p1", "org / gcc")
        hub.point_finished("p1", "org / gcc", "timeout")
        hub.point_started("p2", "org / li")
        hub.point_finished("p2", "org / li", "done")
        snapshot = hub.snapshot()
        assert snapshot["done"] == 2
        assert snapshot["gaps"] == 1
        assert snapshot["timeouts"] == 1
        assert snapshot["in_flight"] == []

    def test_resumed_points_surface_in_snapshot(self):
        hub = TelemetryHub()
        hub.batch_started(5)
        hub.sweep_resumed(3)
        assert hub.snapshot()["resumed"] == 3

    def test_prometheus_exports_both_gauges(self):
        hub = TelemetryHub()
        hub.batch_started(1)
        hub.sweep_resumed(2)
        hub.point_started("p1", "org / gcc")
        hub.point_finished("p1", "org / gcc", "timeout")
        text = render_prometheus(hub.snapshot())
        assert "repro_sweep_points_timeouts 1" in text
        assert "repro_sweep_points_resumed 2" in text

    def test_progress_line_names_timeouts_and_resumed(self):
        hub = TelemetryHub()
        hub.batch_started(4)
        hub.sweep_resumed(2)
        hub.point_started("p1", "org / gcc")
        hub.point_finished("p1", "org / gcc", "timeout")
        lines = render_progress_lines(hub.snapshot())
        joined = "\n".join(lines)
        assert "1 timed out" in joined
        assert "2 resumed" in joined

    def test_quiet_runs_stay_quiet(self):
        hub = TelemetryHub()
        hub.batch_started(1)
        hub.point_started("p1", "org / gcc")
        hub.point_finished("p1", "org / gcc", "done")
        joined = "\n".join(render_progress_lines(hub.snapshot()))
        assert "timed out" not in joined
        assert "resumed" not in joined


class TestEventKinds:
    def test_new_kinds_are_registered(self):
        from repro.observability.events import (
            ALL_KINDS,
            ENGINE_RESUME,
            POINT_TIMEOUT,
        )

        assert ENGINE_RESUME == "engine.resume"
        assert POINT_TIMEOUT == "point.timeout"
        assert ENGINE_RESUME in ALL_KINDS
        assert POINT_TIMEOUT in ALL_KINDS

    def test_timeout_gap_emits_point_timeout_event(self):
        from repro.core.experiment import ExperimentSettings, _retry_reduced
        from repro.core.organizations import duplicate
        from repro.observability.events import POINT_TIMEOUT
        from repro.observability.trace import Tracer, activate, deactivate
        from repro.robustness.runner import FailureLog
        from repro.workloads.catalog import benchmark

        tracer = Tracer(capacity=16)
        activate(tracer)
        try:
            log = FailureLog()
            result = _retry_reduced(
                duplicate(32 * 1024),
                benchmark("gcc"),
                ExperimentSettings(),
                log,
                "DeadlineExceededError",
                "point exceeded its budget",
            )
        finally:
            deactivate()
        assert result.failed
        assert log.records[-1].resolution == "timeout"
        kinds = [event.kind for event in tracer.events()]
        assert POINT_TIMEOUT in kinds
