"""Stall-source diagnosis: rankings, narratives, and the Fig. 5 story.

The acceptance-level claim: on a banked Figure-5 design point the
diagnosis names bank conflicts as the dominant stall source, in a
paper-style sentence citing the figure.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import KB, banked, ideal_ports
from repro.observability.diagnose import (
    COMPONENT_LABELS,
    PointDiagnosis,
    _design_points,
    diagnose_design_point,
    narrative_line,
    render_diagnosis,
)

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


@pytest.fixture(scope="module")
def banked_diagnosis():
    return diagnose_design_point(
        "banked-1", "Fig. 5", banked(32 * KB, banks=1), "tomcatv", FAST
    )


class TestBankedFigure5:
    def test_bank_conflicts_dominate(self, banked_diagnosis):
        dominant = banked_diagnosis.dominant_stall()
        assert dominant is not None
        name, share = dominant
        assert name == "bank_conflict"
        assert 0.0 < share < 1.0

    def test_narrative_cites_the_figure(self, banked_diagnosis):
        line = narrative_line(banked_diagnosis)
        assert line.startswith("banked-1: ")
        assert "% of load cycles lost to bank conflicts" in line
        assert line.endswith("-- cf. Fig. 5")

    def test_ranking_is_sorted_and_stall_only(self, banked_diagnosis):
        ranking = banked_diagnosis.stall_ranking()
        assert ranking
        cycles = [count for _, count in ranking]
        assert cycles == sorted(cycles, reverse=True)
        assert all(count > 0 for count in cycles)
        names = [name for name, _ in ranking]
        assert "l1_access" not in names
        assert "line_buffer" not in names


class TestDiagnoseMechanics:
    def test_attribution_left_disabled_afterwards(self, banked_diagnosis):
        from repro.observability import attribution

        assert not attribution.enabled()

    def test_components_reconcile_with_load_cycles(self, banked_diagnosis):
        assert (
            sum(banked_diagnosis.components.values())
            == banked_diagnosis.load_cycles
        )
        assert sum(banked_diagnosis.outcomes.values()) == banked_diagnosis.loads

    def test_design_points_cover_figures_4_to_7(self):
        figures = {figure for _, figure, _ in _design_points()}
        assert figures == {"Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7"}
        labels = [label for label, _, _ in _design_points()]
        assert len(labels) == len(set(labels))

    def test_every_component_has_a_label(self):
        from repro.observability.attribution import COMPONENTS

        assert set(COMPONENT_LABELS) == set(COMPONENTS)


class TestRendering:
    def test_render_contains_tables_and_narratives(self, banked_diagnosis):
        ideal = diagnose_design_point(
            "ideal-2p", "Fig. 4", ideal_ports(32 * KB, ports=2), "tomcatv", FAST
        )
        report = render_diagnosis([ideal, banked_diagnosis], "tomcatv")
        assert "Stall-source diagnosis: tomcatv" in report
        assert "Critical-path breakdown" in report
        assert "cf. Fig. 5" in report
        assert "bank conflicts" in report

    def test_no_stall_narrative(self):
        diagnosis = PointDiagnosis(
            label="ideal",
            figure="Fig. 4",
            organization="ideal",
            ipc=2.0,
            loads=10,
            load_cycles=10,
            p50=1.0,
            p95=1.0,
            p99=1.0,
            components={"l1_access": 10},
            outcomes={"l1_hit": 10},
        )
        assert diagnosis.dominant_stall() is None
        assert "no stall cycles" in narrative_line(diagnosis)
