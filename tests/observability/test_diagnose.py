"""Stall-source diagnosis: rankings, narratives, and the Fig. 5 story.

The acceptance-level claim: on a banked Figure-5 design point the
diagnosis names bank conflicts as the dominant stall source, in a
paper-style sentence citing the figure.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import KB, banked, ideal_ports
from repro.observability.diagnose import (
    COMPONENT_LABELS,
    PointDiagnosis,
    _design_points,
    compare_catalog,
    diagnose_design_point,
    narrative_line,
    render_diagnosis,
)

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


@pytest.fixture(scope="module")
def banked_diagnosis():
    return diagnose_design_point(
        "banked-1", "Fig. 5", banked(32 * KB, banks=1), "tomcatv", FAST
    )


class TestBankedFigure5:
    def test_bank_conflicts_dominate(self, banked_diagnosis):
        dominant = banked_diagnosis.dominant_stall()
        assert dominant is not None
        name, share = dominant
        assert name == "bank_conflict"
        assert 0.0 < share < 1.0

    def test_narrative_cites_the_figure(self, banked_diagnosis):
        line = narrative_line(banked_diagnosis)
        assert line.startswith("banked-1: ")
        assert "% of load cycles lost to bank conflicts" in line
        assert line.endswith("-- cf. Fig. 5")

    def test_ranking_is_sorted_and_stall_only(self, banked_diagnosis):
        ranking = banked_diagnosis.stall_ranking()
        assert ranking
        cycles = [count for _, count in ranking]
        assert cycles == sorted(cycles, reverse=True)
        assert all(count > 0 for count in cycles)
        names = [name for name, _ in ranking]
        assert "l1_access" not in names
        assert "line_buffer" not in names


class TestDiagnoseMechanics:
    def test_attribution_left_disabled_afterwards(self, banked_diagnosis):
        from repro.observability import attribution

        assert not attribution.enabled()

    def test_components_reconcile_with_load_cycles(self, banked_diagnosis):
        assert (
            sum(banked_diagnosis.components.values())
            == banked_diagnosis.load_cycles
        )
        assert sum(banked_diagnosis.outcomes.values()) == banked_diagnosis.loads

    def test_design_points_cover_figures_4_to_7(self):
        figures = {figure for _, figure, _ in _design_points()}
        assert figures == {"Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7"}
        labels = [label for label, _, _ in _design_points()]
        assert len(labels) == len(set(labels))

    def test_every_component_has_a_label(self):
        from repro.observability.attribution import COMPONENTS

        assert set(COMPONENT_LABELS) == set(COMPONENTS)


class TestCounterEvidence:
    @pytest.fixture(scope="class")
    def counted_diagnosis(self):
        return diagnose_design_point(
            "banked-1",
            "Fig. 5",
            banked(32 * KB, banks=1),
            "tomcatv",
            FAST,
            counter_interval=300,
        )

    def test_worst_interval_cites_cycles_and_pressure(
        self, counted_diagnosis
    ):
        worst = counted_diagnosis.worst_interval
        assert worst is not None
        assert worst["cycle_end"] > worst["cycle_start"] >= 0
        assert worst["ipc"] > 0.0
        assert worst["pressure_label"]
        assert 0.0 <= worst["pressure_value"]

    def test_worst_interval_is_the_ipc_minimum(self, counted_diagnosis):
        from repro.observability import counters as obs_counters

        # Re-derive from the diagnosis's own evidence: the cited IPC
        # must not exceed any other interval's.
        worst = counted_diagnosis.worst_interval
        assert worst["index"] >= 0
        assert worst["ipc"] <= counted_diagnosis.ipc * 1.5
        assert obs_counters.PRESSURE_LABELS  # taxonomy is non-empty

    def test_narrative_appends_interval_evidence(self, counted_diagnosis):
        line = narrative_line(counted_diagnosis)
        assert "worst interval" in line
        assert "IPC under" in line

    def test_sampling_left_disabled_afterwards(self, counted_diagnosis):
        from repro.observability import counters as obs_counters

        assert not obs_counters.enabled()

    def test_without_counters_no_interval_claim(self, banked_diagnosis):
        assert banked_diagnosis.worst_interval is None
        assert "worst interval" not in narrative_line(banked_diagnosis)

    def test_compare_catalog_has_the_figure5_pair(self):
        catalog = compare_catalog()
        assert "banked-2" in catalog
        assert "dual-ported" in catalog
        # Every catalog entry carries (figure, organization).
        for label, (figure, organization) in catalog.items():
            assert figure.startswith("Fig.")
            assert organization.label


class TestRendering:
    def test_render_contains_tables_and_narratives(self, banked_diagnosis):
        ideal = diagnose_design_point(
            "ideal-2p", "Fig. 4", ideal_ports(32 * KB, ports=2), "tomcatv", FAST
        )
        report = render_diagnosis([ideal, banked_diagnosis], "tomcatv")
        assert "Stall-source diagnosis: tomcatv" in report
        assert "Critical-path breakdown" in report
        assert "cf. Fig. 5" in report
        assert "bank conflicts" in report

    def test_no_stall_narrative(self):
        diagnosis = PointDiagnosis(
            label="ideal",
            figure="Fig. 4",
            organization="ideal",
            ipc=2.0,
            loads=10,
            load_cycles=10,
            p50=1.0,
            p95=1.0,
            p99=1.0,
            components={"l1_access": 10},
            outcomes={"l1_hit": 10},
        )
        assert diagnosis.dominant_stall() is None
        assert "no stall cycles" in narrative_line(diagnosis)
