"""The zero-overhead-when-disabled contract, stated as properties.

Three observable guarantees when no tracer is active:

* no events are emitted anywhere (there is nothing to receive them);
* simulation results -- including their serialized dict forms -- are
  byte-for-byte identical whether or not a tracer was active during the
  run (tracing observes, never perturbs);
* the metrics snapshot carries no trace-derived keys, so the result
  store may be shared freely between traced and untraced runs.
"""

import json

from repro.core.experiment import ExperimentSettings, run_experiment
from repro.core.organizations import banked, duplicate, ideal_ports
from repro.engine.executor import get_engine
from repro.engine.serialize import result_to_dict
from repro.observability import trace, tracing

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


def _fresh_run(organization, benchmark):
    get_engine().memo.clear()
    return run_experiment(organization, benchmark, FAST)


class TestDisabledPath:
    def test_disabled_run_emits_zero_events(self):
        assert trace.active() is None
        _fresh_run(duplicate(line_buffer=True), "gcc")
        # Activate a tracer only AFTER the run: had anything buffered or
        # leaked a reference, this tracer would see stragglers.
        with tracing() as tracer:
            pass
        assert tracer.emitted == 0

    def test_serialized_results_identical_with_and_without_tracing(self):
        for organization in (duplicate(line_buffer=True), banked(), ideal_ports()):
            untraced = result_to_dict(_fresh_run(organization, "gcc"))
            with tracing():
                traced = result_to_dict(_fresh_run(organization, "gcc"))
            assert json.dumps(untraced, sort_keys=True) == json.dumps(
                traced, sort_keys=True
            )

    def test_no_trace_keys_in_metrics(self):
        with tracing() as tracer:
            result = _fresh_run(duplicate(line_buffer=True), "gcc")
        assert tracer.emitted > 0  # the run really was traced
        assert not any(key.startswith("trace.") for key in result.metrics)
        assert not any("tracer" in key for key in result.metrics)

    def test_tracing_does_not_change_timing(self):
        untraced = _fresh_run(banked(), "tomcatv")
        with tracing():
            traced = _fresh_run(banked(), "tomcatv")
        assert untraced.cycles == traced.cycles
        assert untraced.metrics == traced.metrics
