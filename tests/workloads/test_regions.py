"""Tests for the region-mixture address models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import Region, RegionAddressModel


def model(regions, seed=1, base=0):
    return RegionAddressModel(tuple(regions), random.Random(seed), base)


class TestRegionValidation:
    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            Region("x", 1024, 1.0, "spiral")

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Region("x", 0, 1.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            Region("x", 1024, -0.5)

    def test_rejects_bad_hot_fraction(self):
        with pytest.raises(ValueError):
            Region("x", 1024, 1.0, "hot", hot_fraction=0.0)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            Region("x", 1024, 1.0, burst_mean=0.5)

    def test_rejects_zero_stride_sequential(self):
        with pytest.raises(ValueError):
            Region("x", 1024, 1.0, "sequential", stride=0)


class TestModelConstruction:
    def test_needs_regions(self):
        with pytest.raises(ValueError):
            model([])

    def test_needs_positive_weight(self):
        with pytest.raises(ValueError):
            model([Region("x", 1024, 0.0)])

    def test_regions_do_not_overlap(self):
        regions = [Region(f"r{i}", 8192, 1.0) for i in range(4)]
        m = model(regions)
        bases = m._bases
        for (base_a, reg_a), base_b in zip(
            zip(bases, regions), bases[1:], strict=False
        ):
            assert base_a + reg_a.size_bytes <= base_b

    def test_base_offset_shifts_everything(self):
        m0 = model([Region("x", 4096, 1.0)], base=0)
        m1 = model([Region("x", 4096, 1.0)], base=1 << 26)
        for _ in range(100):
            assert m1.next_address() >= 1 << 26
            assert m0.next_address() < 1 << 20


class TestPatterns:
    def test_sequential_walks_with_stride(self):
        m = model([Region("a", 4096, 1.0, "sequential", stride=8)])
        addresses = [m.next_address() for _ in range(10)]
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas == {8}

    def test_sequential_wraps(self):
        m = model([Region("a", 64, 1.0, "sequential", stride=8)])
        addresses = [m.next_address() for _ in range(16)]
        assert addresses[8] == addresses[0]

    def test_addresses_stay_in_region(self):
        region = Region("a", 8192, 1.0, "random")
        m = model([region])
        for _ in range(500):
            assert 0 <= m.next_address() < m.footprint_bytes

    def test_hot_pattern_concentrates(self):
        region = Region(
            "a", 64 * 1024, 1.0, "hot", hot_fraction=0.1, hot_weight=0.9,
            burst_mean=1.0,
        )
        m = model([region])
        hot_limit = 64 * 1024 * 0.1
        inside = sum(m.next_address() < hot_limit for _ in range(3000))
        assert inside > 2400  # ~90 % plus spill from bursts

    def test_bursts_stay_within_a_line(self):
        """Consecutive same-region accesses mostly share a cache line."""
        m = model([Region("a", 1 << 20, 1.0, "random", burst_mean=8)])
        addresses = [m.next_address() for _ in range(4000)]
        same_line = sum(
            (a >> 5) == (b >> 5) for a, b in zip(addresses, addresses[1:])
        )
        assert same_line / len(addresses) > 0.6

    def test_alignment(self):
        m = model(
            [
                Region("a", 8192, 0.5, "hot"),
                Region("b", 8192, 0.5, "sequential"),
            ]
        )
        for _ in range(200):
            assert m.next_address() % 8 == 0


class TestMixture:
    def test_weights_respected(self):
        m = model(
            [
                Region("a", 4096, 0.8, "random", burst_mean=1.0),
                Region("b", 4096, 0.2, "random", burst_mean=1.0),
            ]
        )
        boundary = m._bases[1]
        in_a = sum(m.next_address() < boundary for _ in range(5000))
        assert 0.72 < in_a / 5000 < 0.88

    def test_deterministic_under_seed(self):
        regions = [Region("a", 8192, 1.0, "hot")]
        a = [model(regions, seed=7).next_address() for _ in range(1)]
        m1, m2 = model(regions, seed=7), model(regions, seed=7)
        assert [m1.next_address() for _ in range(200)] == [
            m2.next_address() for _ in range(200)
        ]

    def test_weighted_footprint(self):
        m = model(
            [
                Region("a", 1000, 0.5),
                Region("b", 3000, 0.5),
            ]
        )
        assert m.total_weight_footprint() == 2000


class TestProperties:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=64),  # size KB
                st.floats(min_value=0.1, max_value=1.0),  # weight
                st.sampled_from(["hot", "random", "sequential"]),
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=0, max_value=1000),
    )
    def test_all_addresses_valid(self, specs, seed):
        regions = [
            Region(f"r{i}", kb * 1024, w, pattern)
            for i, (kb, w, pattern) in enumerate(specs)
        ]
        m = model(regions, seed=seed)
        for _ in range(200):
            address = m.next_address()
            assert address >= 0
            assert address % 8 == 0
            assert address < m.footprint_bytes
