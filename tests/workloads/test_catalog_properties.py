"""Catalog-wide properties: every benchmark behaves like its group."""

import itertools

import pytest

from repro.cpu.isa import Op
from repro.workloads import BENCHMARKS, WorkloadGenerator, by_group, trace


def stream(name, n=20_000, seed=3):
    return itertools.islice(trace(BENCHMARKS[name], seed), n)


class TestEverySpec:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_generates_valid_microops(self, name):
        for mop in stream(name, 3_000):
            assert mop.op in Op
            if mop.is_memory:
                assert mop.address >= 0 and mop.address % 8 == 0
            for distance in mop.srcs:
                assert 1 <= distance <= 256

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_reference_fraction_near_spec(self, name):
        spec = BENCHMARKS[name]
        refs = sum(m.is_memory for m in stream(name, 25_000))
        expected = spec.load_fraction + spec.store_fraction
        assert refs / 25_000 == pytest.approx(expected, abs=0.025)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_footprint_lines_cover_generated_addresses(self, name):
        generator = WorkloadGenerator(BENCHMARKS[name], seed=5)
        footprint = set(generator.footprint_lines(32))
        for is_store, address in generator.memory_references(8_000):
            assert address >> 5 in footprint


class TestGroupCharacter:
    def fp_fraction(self, name):
        ops = [m.op for m in stream(name, 15_000)]
        fp = sum(op in (Op.FADD, Op.FMUL, Op.FDIV, Op.FSQRT) for op in ops)
        return fp / len(ops)

    def test_fp_group_has_fp_work(self):
        for spec in by_group("SPECfp95"):
            assert self.fp_fraction(spec.name) > 0.15, spec.name

    def test_integer_groups_have_none(self):
        for group in ("SPECint95", "multiprogramming"):
            for spec in by_group(group):
                assert self.fp_fraction(spec.name) < 0.02, spec.name

    def test_multiprogramming_footprints_largest(self):
        def footprint(name):
            generator = WorkloadGenerator(BENCHMARKS[name], seed=1)
            return len(generator.footprint_lines(32))

        smallest_multi = min(
            footprint(s.name) for s in by_group("multiprogramming")
        )
        largest_int = max(footprint(s.name) for s in by_group("SPECint95"))
        assert smallest_multi > largest_int

    def test_fp_branch_rate_lowest(self):
        def branch_rate(name):
            ops = [m.op for m in stream(name, 15_000)]
            return sum(op is Op.BRANCH for op in ops) / len(ops)

        fp_max = max(branch_rate(s.name) for s in by_group("SPECfp95"))
        int_min = min(branch_rate(s.name) for s in by_group("SPECint95"))
        assert fp_max < int_min

    def test_kernel_bursts_respect_fraction(self):
        """gcc spends ~10 % of instructions in the kernel space."""
        kernel = 0
        total = 0
        for mop in stream("gcc", 40_000):
            if mop.is_memory:
                total += 1
                if mop.address >> 26 == 31:
                    kernel += 1
        assert kernel / total == pytest.approx(0.10, abs=0.04)
