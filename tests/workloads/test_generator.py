"""Tests for workload generation and the benchmark catalog."""

import itertools

import pytest

from repro.cpu.isa import Op
from repro.memory import SetAssociativeCache
from repro.workloads import (
    BENCHMARKS,
    GROUPS,
    REPRESENTATIVES,
    WorkloadGenerator,
    benchmark,
    by_group,
    trace,
)


def mix(spec, n=30_000, seed=2):
    counts: dict[Op, int] = {}
    for mop in itertools.islice(trace(spec, seed), n):
        counts[mop.op] = counts.get(mop.op, 0) + 1
    return {op: c / n for op, c in counts.items()}


class TestCatalog:
    def test_nine_benchmarks(self):
        assert len(BENCHMARKS) == 9

    def test_three_per_group(self):
        for group in GROUPS:
            assert len(by_group(group)) == 3

    def test_representatives(self):
        """gcc, tomcatv, database represent their groups (section 4)."""
        assert REPRESENTATIVES == ("gcc", "tomcatv", "database")
        groups = {benchmark(name).group for name in REPRESENTATIVES}
        assert groups == set(GROUPS)

    def test_lookup_case_insensitive(self):
        assert benchmark("GCC").name == "gcc"
        assert benchmark("vcs").name == "VCS"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark("doom")
        with pytest.raises(KeyError):
            by_group("games")

    def test_descriptions_match_table1(self):
        assert "SPARC" in benchmark("gcc").description
        assert "LISP" in benchmark("li").description
        assert "Mesh" in benchmark("tomcatv").description
        assert "TPC-B" in benchmark("database").description
        assert "17 files" in benchmark("pmake").description

    def test_database_idle_fraction_matches_table2(self):
        assert benchmark("database").idle_fraction == pytest.approx(0.646)
        assert benchmark("pmake").idle_fraction == pytest.approx(0.051)


class TestInstructionMix:
    """Generated mixes must match Table 2's load/store percentages."""

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_load_store_fractions(self, name):
        spec = benchmark(name)
        fractions = mix(spec)
        assert fractions[Op.LOAD] == pytest.approx(spec.load_fraction, abs=0.02)
        assert fractions[Op.STORE] == pytest.approx(spec.store_fraction, abs=0.02)

    def test_fp_benchmarks_contain_fp_ops(self):
        fractions = mix(benchmark("tomcatv"))
        fp = sum(fractions.get(op, 0) for op in (Op.FADD, Op.FMUL, Op.FDIV))
        assert fp > 0.2

    def test_integer_benchmarks_have_no_fp(self):
        fractions = mix(benchmark("gcc"))
        fp = sum(fractions.get(op, 0) for op in (Op.FADD, Op.FMUL, Op.FDIV))
        assert fp == 0

    def test_fp_branch_frequency_lower(self):
        assert mix(benchmark("tomcatv")).get(Op.BRANCH, 0) < mix(
            benchmark("gcc")
        ).get(Op.BRANCH, 0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = list(itertools.islice(trace(benchmark("gcc"), 3), 500))
        b = list(itertools.islice(trace(benchmark("gcc"), 3), 500))
        assert [(m.op, m.srcs, m.address) for m in a] == [
            (m.op, m.srcs, m.address) for m in b
        ]

    def test_different_seeds_differ(self):
        a = list(itertools.islice(trace(benchmark("gcc"), 1), 500))
        b = list(itertools.islice(trace(benchmark("gcc"), 2), 500))
        assert [(m.op, m.address) for m in a] != [(m.op, m.address) for m in b]

    def test_memory_references_match_instruction_stream(self):
        gen_a = WorkloadGenerator(benchmark("li"), seed=4)
        refs = gen_a.memory_references(2000)
        gen_b = WorkloadGenerator(benchmark("li"), seed=4)
        expected = [
            (m.op is Op.STORE, m.address)
            for m in itertools.islice(gen_b.instructions(), 2000)
            if m.is_memory
        ]
        assert refs == expected


class TestAddressSpaces:
    def test_multiprogram_uses_multiple_spaces(self):
        spec = benchmark("database")
        spaces = set()
        for mop in itertools.islice(trace(spec, 1), 40_000):
            if mop.is_memory:
                spaces.add(mop.address >> 26)
        assert len(spaces) >= spec.processes

    def test_kernel_space_visited(self):
        spec = benchmark("gcc")  # 10 % kernel time
        spaces = set()
        for mop in itertools.islice(trace(spec, 1), 30_000):
            if mop.is_memory:
                spaces.add(mop.address >> 26)
        assert 31 in spaces  # the kernel space index

    def test_single_process_int_benchmark_one_user_space(self):
        spec = benchmark("li")
        spaces = set()
        for mop in itertools.islice(trace(spec, 1), 20_000):
            if mop.is_memory:
                spaces.add(mop.address >> 26)
        assert spaces <= {0, 31}


class TestMissRateShape:
    """Cheap qualitative checks of Figure 3 behavior (full curves in
    benchmarks/test_fig3_miss_rates.py)."""

    @staticmethod
    def miss_rate(name, size_kb, n=60_000, warm=60_000):
        gen = WorkloadGenerator(benchmark(name), seed=1)
        warm_refs = gen.memory_references(warm)
        refs = gen.memory_references(n)
        cache = SetAssociativeCache(size_kb * 1024, 2, 32)
        for is_store, addr in warm_refs:
            if not cache.lookup(addr >> 5, write=is_store):
                cache.fill(addr >> 5, dirty=is_store)
        misses = 0
        for is_store, addr in refs:
            if not cache.lookup(addr >> 5, write=is_store):
                misses += 1
                cache.fill(addr >> 5, dirty=is_store)
        return misses / n

    def test_miss_rate_decreases_with_size(self):
        for name in ("gcc", "database"):
            small = self.miss_rate(name, 4)
            large = self.miss_rate(name, 256)
            assert large < small

    def test_integer_below_multiprogramming(self):
        """Figure 3: integer SPEC95 lowest, multiprogramming much larger."""
        assert self.miss_rate("li", 16) < self.miss_rate("database", 16)
        assert self.miss_rate("gcc", 16) < self.miss_rate("VCS", 16)

    def test_tomcatv_radical_drop(self):
        """FP working set fits at 256 KB: miss rate collapses.

        Needs a long warm-up: one full sweep of tomcatv's ~210 KB of
        arrays spans roughly 300k instructions.
        """
        before = self.miss_rate("tomcatv", 128, n=80_000, warm=400_000)
        after = self.miss_rate("tomcatv", 512, n=80_000, warm=400_000)
        assert after < before / 5

    def test_database_retains_misses_at_1mb(self):
        assert self.miss_rate("database", 1024, n=40_000, warm=40_000) > 0.005
