"""Tests for ILP profiles and branch models."""

import random

import pytest

from repro.cpu import TwoBitPredictor
from repro.cpu.isa import MAX_DEP_DISTANCE, Op
from repro.workloads import (
    FLOAT_BRANCHES,
    FLOAT_ILP,
    INTEGER_BRANCHES,
    INTEGER_ILP,
    BranchModel,
    BranchProfile,
    DependenceTracker,
    IlpProfile,
)


def collect_srcs(profile, n=4000, seed=3, address=False):
    tracker = DependenceTracker(profile, random.Random(seed))
    out = []
    for seq in range(n):
        out.append(tracker.next_srcs(seq, address=address))
    return out


class TestIlpProfiles:
    def test_distances_within_isa_limit(self):
        for profile in (INTEGER_ILP, FLOAT_ILP):
            for srcs in collect_srcs(profile):
                for distance in srcs:
                    assert 1 <= distance <= MAX_DEP_DISTANCE

    def test_integer_chains_are_tight(self):
        """Few chains => near producers => strong serialization."""
        distances = [d for srcs in collect_srcs(INTEGER_ILP) for d in srcs]
        assert sum(distances) / len(distances) < 2 * INTEGER_ILP.chains

    def test_float_has_more_parallel_chains(self):
        fp = [d for srcs in collect_srcs(FLOAT_ILP) for d in srcs]
        ints = [d for srcs in collect_srcs(INTEGER_ILP) for d in srcs]
        assert sum(fp) / len(fp) > 2 * (sum(ints) / len(ints))

    def test_float_loads_mostly_independent(self):
        dependent = sum(
            bool(s) for s in collect_srcs(FLOAT_ILP, n=2000, address=True)
        )
        assert dependent / 2000 < 0.2

    def test_integer_loads_pointer_chase(self):
        dependent = sum(
            bool(s) for s in collect_srcs(INTEGER_ILP, n=2000, address=True)
        )
        assert dependent / 2000 > 0.6

    def test_chain_distances_cluster_near_chain_count(self):
        """With k chains and round-robin-ish selection, dependence
        distances concentrate around k (the previous member of the same
        chain is ~k instructions back)."""
        distances = [d for srcs in collect_srcs(INTEGER_ILP) for d in srcs]
        near = sum(d <= 4 * INTEGER_ILP.chains for d in distances)
        assert near / len(distances) > 0.9

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            IlpProfile("bad", 0, 0.5, 0.1, 0.5)
        with pytest.raises(ValueError):
            IlpProfile("bad", 3, 1.5, 0.1, 0.5)

    def test_stale_chain_restarts(self):
        """A tail beyond the ISA window yields no dependence."""
        tracker = DependenceTracker(
            IlpProfile("one", 1, 1.0, 0.0, 1.0), random.Random(1)
        )
        tracker.next_srcs(0)
        assert tracker.next_srcs(MAX_DEP_DISTANCE + 5) == ()


class TestBranchProfiles:
    def test_validation(self):
        with pytest.raises(ValueError):
            BranchProfile(frequency=1.0, loop_fraction=0.5, mean_trip_count=8)
        with pytest.raises(ValueError):
            BranchProfile(frequency=0.1, loop_fraction=0.5, mean_trip_count=1)

    def test_branches_are_branch_ops(self):
        m = BranchModel(INTEGER_BRANCHES, random.Random(5))
        for _ in range(50):
            assert m.next_branch().op is Op.BRANCH

    def test_float_branches_more_predictable(self):
        """FP loop branches should train a 2-bit predictor much better."""

        def accuracy(profile):
            model = BranchModel(profile, random.Random(5))
            predictor = TwoBitPredictor(1024)
            for _ in range(6000):
                mop = model.next_branch()
                predictor.observe(mop.pc, mop.taken)
            return predictor.stats.accuracy

        assert accuracy(FLOAT_BRANCHES) > 0.93
        assert accuracy(FLOAT_BRANCHES) > accuracy(INTEGER_BRANCHES)

    def test_integer_branches_reasonably_predictable(self):
        model = BranchModel(INTEGER_BRANCHES, random.Random(5))
        predictor = TwoBitPredictor(1024)
        for _ in range(6000):
            mop = model.next_branch()
            predictor.observe(mop.pc, mop.taken)
        assert 0.6 < predictor.stats.accuracy < 0.97

    def test_loop_branches_mostly_taken(self):
        profile = BranchProfile(
            frequency=0.1, loop_fraction=1.0, mean_trip_count=16
        )
        model = BranchModel(profile, random.Random(5))
        taken = sum(model.next_branch().taken for _ in range(4000))
        assert taken / 4000 > 0.85

    def test_srcs_passed_through(self):
        m = BranchModel(INTEGER_BRANCHES, random.Random(5))
        assert m.next_branch(srcs=(2,)).srcs == (2,)
