"""Tests for trace capture, serialization, and characterization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import MicroOp, Op, alu, branch, load, store
from repro.workloads import benchmark, trace
from repro.workloads.traces import (
    capture,
    load_trace,
    profile_trace,
    replay,
    save_trace,
)


def sample_trace(n=200, seed=1):
    return capture(trace(benchmark("gcc"), seed), n)


class TestCaptureReplay:
    def test_capture_length(self):
        assert len(sample_trace(123)) == 123

    def test_capture_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            capture(iter([]), 0)

    def test_replay_is_fresh_each_time(self):
        captured = sample_trace(50)
        a = list(replay(captured))
        b = list(replay(captured))
        assert a == b == captured

    def test_replayed_trace_simulates_identically(self):
        from repro.cpu import simulate
        from repro.memory import MemoryConfig, MemorySystem

        captured = sample_trace(2000)
        results = []
        for _ in range(2):
            memory = MemorySystem(MemoryConfig())
            results.append(
                simulate(replay(captured), memory, max_instructions=2000)
            )
        assert results[0].ipc == results[1].ipc


class TestSerialization:
    def test_round_trip(self, tmp_path):
        captured = sample_trace(500)
        path = tmp_path / "gcc.trace"
        written = save_trace(captured, path)
        assert written == 500
        loaded = load_trace(path)
        assert len(loaded) == 500
        for original, restored in zip(captured, loaded):
            assert original.op == restored.op
            assert original.srcs == restored.srcs
            assert original.address == restored.address
            assert original.pc == restored.pc
            assert original.taken == restored.taken

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bogus.trace"
        path.write_text("not a trace\n1 2 3\n")
        with pytest.raises(ValueError):
            load_trace(path)

    @settings(max_examples=25)
    @given(
        st.lists(
            st.sampled_from(
                [
                    alu(),
                    alu(srcs=(1,)),
                    MicroOp(Op.FMUL, srcs=(2, 5)),
                    load(0xDEADBEE8, srcs=(3,)),
                    store(0x1000),
                    branch(0x44, taken=True, srcs=(1,)),
                    branch(0x48, taken=False),
                ]
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_round_trip_property(self, mops):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.trace"
            save_trace(mops, path)
            loaded = load_trace(path)
        assert [
            (m.op, m.srcs, m.address, m.pc, m.taken) for m in mops
        ] == [(m.op, m.srcs, m.address, m.pc, m.taken) for m in loaded]


class TestProfile:
    def test_profile_matches_spec(self):
        spec = benchmark("gcc")
        profile = profile_trace(capture(trace(spec, 1), 30_000))
        assert profile.load_fraction == pytest.approx(spec.load_fraction, abs=0.02)
        assert profile.store_fraction == pytest.approx(
            spec.store_fraction, abs=0.02
        )
        assert profile.instructions == 30_000
        assert profile.footprint_bytes > 0

    def test_branches_mostly_taken_for_fp(self):
        profile = profile_trace(capture(trace(benchmark("tomcatv"), 1), 30_000))
        assert profile.taken_fraction > 0.7
        assert profile.branch_fraction < 0.08

    def test_fractions_sum_to_one(self):
        profile = profile_trace(sample_trace(5000))
        assert sum(profile.op_fractions.values()) == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            profile_trace([])

    def test_summary_is_readable(self):
        summary = profile_trace(sample_trace(3000)).summary()
        assert "loads" in summary and "footprint" in summary

    def test_footprint_counts_distinct_lines(self):
        mops = [load(0), load(8), load(32), load(64)]
        profile = profile_trace(mops)
        assert profile.distinct_lines_32b == 3
        assert profile.footprint_bytes == 96
