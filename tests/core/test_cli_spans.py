"""CLI coverage for sweep span recording and the ``spans`` verb.

Exercises ``--spans-out`` / ``REPRO_SPANS`` on real sweeps (serial and
parallel), stdout byte-identity with spans on, the report/json/chrome
formats of ``repro spans``, the ledger hand-off (``runs show`` footer,
span file resolution through the run record), offline ``--from-jsonl``
analysis, and every error exit.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import experiment

FIGURE_ARGS = [
    "figure4",
    "--benchmarks",
    "gcc",
    "--instructions",
    "1200",
    "--timing-warmup",
    "200",
    "--functional-warmup",
    "5000",
    "--no-progress",
]


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_SPANS", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    experiment.clear_cache()
    yield
    experiment.clear_cache()


def _sweep(tmp_path, capsys, *extra) -> tuple[str, str]:
    """One spanned figure4 sweep; returns (stdout, stderr)."""
    path = str(tmp_path / "spans.jsonl.gz")
    assert main([*FIGURE_ARGS, "--spans-out", path, *extra]) == 0
    captured = capsys.readouterr()
    return captured.out, captured.err


class TestSpansRecording:
    def test_spans_out_writes_a_readable_sink(self, tmp_path, capsys):
        from repro.observability.spans import read_spans

        _, err = _sweep(tmp_path, capsys)
        assert "[spans: " in err
        spans = read_spans(str(tmp_path / "spans.jsonl.gz"))
        names = {s["name"] for s in spans}
        assert "sweep" in names
        assert "point" in names
        assert "ledger.append" in names

    def test_stdout_is_byte_identical_with_spans_on(self, tmp_path, capsys):
        assert main([*FIGURE_ARGS, "--cache-dir", str(tmp_path / "a")]) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                [
                    *FIGURE_ARGS,
                    "--cache-dir",
                    str(tmp_path / "b"),
                    "--spans-out",
                    str(tmp_path / "s.jsonl"),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == plain

    def test_parallel_sweep_reassembles_worker_spans(self, tmp_path, capsys):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("parallel span test assumes fork workers")
        from repro.observability.spans import analyze, read_spans

        _sweep(tmp_path, capsys, "--jobs", "2")
        spans = read_spans(str(tmp_path / "spans.jsonl.gz"))
        procs = {s["proc"] for s in spans if s["name"] == "point"}
        assert any(proc.startswith("worker-") for proc in procs)
        analysis = analyze(spans)
        assert analysis["jobs"] == 2
        assert analysis["critical_path_seconds"] <= analysis["wall_seconds"] * 1.01

    def test_env_var_activates_recording(self, tmp_path, capsys, monkeypatch):
        path = str(tmp_path / "env-spans.jsonl")
        monkeypatch.setenv("REPRO_SPANS", path)
        assert main(FIGURE_ARGS) == 0
        assert "[spans: " in capsys.readouterr().err
        assert (tmp_path / "env-spans.jsonl").exists()

    def test_non_sweep_verbs_do_not_record(self, tmp_path, capsys):
        path = tmp_path / "no-spans.jsonl"
        assert main(["cache", "info", "--spans-out", str(path)]) == 0
        assert not path.exists()


class TestSpansVerb:
    def test_report_resolves_last_run(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        assert main(["spans", "last"]) == 0
        out = capsys.readouterr().out
        assert "ideal speedup" in out
        assert "critical path:" in out
        assert "by span name:" in out

    def test_ref_defaults_to_last(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        assert main(["spans"]) == 0
        assert "ideal speedup" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        assert main(["spans", "last", "--format", "json"]) == 0
        analysis = json.loads(capsys.readouterr().out)
        assert analysis["jobs"] == 1
        assert analysis["span_count"] > 0
        assert analysis["critical_path_seconds"] <= analysis["wall_seconds"] * 1.01

    def test_chrome_format_writes_perfetto_tracks(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        out_path = tmp_path / "spans.trace.json"
        assert (
            main(["spans", "last", "--format", "chrome", "--trace-out", str(out_path)])
            == 0
        )
        assert "Chrome trace event(s)" in capsys.readouterr().out
        document = json.loads(out_path.read_text(encoding="utf-8"))
        tracks = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert "coordinator" in tracks

    def test_chrome_default_output_name(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        assert main(["spans", "last", "--format", "chrome"]) == 0
        assert (tmp_path / "spans.trace.json").exists()

    def test_from_jsonl_offline(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        source = str(tmp_path / "spans.jsonl.gz")
        assert main(["spans", "--from-jsonl", source]) == 0
        assert "ideal speedup" in capsys.readouterr().out

    def test_run_ledger_footer_in_runs_show(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        assert main(["runs", "show", "last"]) == 0
        out = capsys.readouterr().out
        assert "wall" in out  # per-point wall-clock column
        assert "spans:" in out
        assert "spans.jsonl.gz" in out

    def test_point_rows_carry_seconds(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        assert main(["runs", "show", "last", "--format", "json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert all(row["seconds"] >= 0 for row in record["points"])
        assert record["spans"]["recorded"] > 0
        assert record["spans"]["trace"].startswith(record["plan_digest"][:12])


class TestSpansVerbErrors:
    def test_no_runs_recorded(self, capsys):
        assert main(["spans", "last"]) == 2
        assert "no run matches" in capsys.readouterr().err

    def test_run_without_spans(self, tmp_path, capsys):
        assert main(FIGURE_ARGS) == 0
        capsys.readouterr()
        assert main(["spans", "last"]) == 2
        assert "recorded no spans" in capsys.readouterr().err

    def test_missing_span_file(self, tmp_path, capsys):
        _sweep(tmp_path, capsys)
        (tmp_path / "spans.jsonl.gz").unlink()
        assert main(["spans", "last"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_from_jsonl_missing_file(self, tmp_path, capsys):
        assert main(["spans", "--from-jsonl", str(tmp_path / "nope.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_from_jsonl_rejects_a_ref(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["spans", "last", "--from-jsonl", str(tmp_path / "x.jsonl")])
        assert "drop the run reference" in capsys.readouterr().err

    def test_extra_refs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["spans", "last", "extra"])
        assert "at most one run reference" in capsys.readouterr().err

    def test_unknown_format(self, capsys):
        with pytest.raises(SystemExit):
            main(["spans", "last", "--format", "BOGUS"])
        err = capsys.readouterr().err.strip().splitlines()[-1]
        assert "unknown spans format" in err
