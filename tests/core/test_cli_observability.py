"""CLI coverage for the observability verbs: trace, metrics, diagnose,
counters, compare.

Exercises exit codes, ``--format`` validation (one-line parser error,
case-insensitive values), gzip trace output, the loud dropped-events
warning, ``REPRO_TRACE`` env pickup, offline ``--from-jsonl``
conversion, ``metrics --attribution``, the interval-counter verbs
(table/json/csv/chrome, the A/B compare report, ``diagnose
--from-counters``), and the store-discipline rule that sampling runs
never write the shared result store.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.cli import main
from repro.core import experiment

FAST_FLAGS = [
    "--instructions",
    "1500",
    "--timing-warmup",
    "300",
    "--functional-warmup",
    "20000",
]


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    """Isolate every CLI run: cwd, store, env, in-process memo."""
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_ATTRIBUTION", raising=False)
    monkeypatch.delenv("REPRO_COUNTER_INTERVAL", raising=False)
    experiment.clear_cache()
    yield
    experiment.clear_cache()


class TestTraceVerb:
    def test_jsonl_default(self, capsys):
        assert main(["trace", "gcc", *FAST_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "Event stream" in out
        assert "mem.load" in out

    def test_unknown_format_is_a_one_line_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "gcc", "--format", "BOGUS", *FAST_FLAGS])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err.strip().splitlines()[-1]
        assert "unknown trace format 'BOGUS'" in err
        assert "choose from: chrome, jsonl" in err

    def test_format_is_case_insensitive(self, tmp_path, capsys):
        assert main(["trace", "gcc", "--format", "CHROME", *FAST_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "Chrome trace event(s)" in out
        document = json.loads(
            (tmp_path / "gcc.trace.json").read_text(encoding="utf-8")
        )
        assert document["traceEvents"]

    def test_trace_out_gzip(self, tmp_path, capsys):
        out_path = tmp_path / "stream.jsonl.gz"
        assert main(
            ["trace", "gcc", "--trace-out", str(out_path), *FAST_FLAGS]
        ) == 0
        with gzip.open(out_path, "rt", encoding="utf-8") as handle:
            first = json.loads(handle.readline())
        assert "kind" in first and "cycle" in first

    def test_dropped_events_warn_loudly(self, capsys):
        assert main(["trace", "gcc", "--trace-limit", "8", *FAST_FLAGS]) == 0
        err = capsys.readouterr().err
        assert "warning: ring overflowed" in err
        assert "event(s) dropped" in err

    def test_missing_benchmark_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace"])
        assert excinfo.value.code == 2
        assert "takes a benchmark name" in capsys.readouterr().err


class TestFromJsonl:
    def _make_stream(self, tmp_path, name):
        path = tmp_path / name
        assert main(
            ["trace", "gcc", "--trace-out", str(path), *FAST_FLAGS]
        ) == 0
        return path

    def test_converts_gzip_stream(self, tmp_path, capsys):
        source = self._make_stream(tmp_path, "events.jsonl.gz")
        capsys.readouterr()
        assert main(
            ["trace", "--from-jsonl", str(source), "--format", "chrome"]
        ) == 0
        assert "Chrome trace event(s)" in capsys.readouterr().out
        converted = tmp_path / "events.trace.json"
        assert json.loads(converted.read_text(encoding="utf-8"))["traceEvents"]

    def test_requires_chrome_format(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--from-jsonl", str(tmp_path / "x.jsonl")])
        assert excinfo.value.code == 2
        assert "--from-jsonl requires --format chrome" in capsys.readouterr().err

    def test_rejects_extra_benchmark(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "trace",
                    "gcc",
                    "--from-jsonl",
                    str(tmp_path / "x.jsonl"),
                    "--format",
                    "chrome",
                ]
            )
        assert excinfo.value.code == 2
        assert "drop the benchmark name" in capsys.readouterr().err


class TestMetricsVerb:
    def test_plain_metrics(self, capsys):
        assert main(["metrics", "gcc", *FAST_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "memory.loads" in out
        assert "attribution." not in out

    def test_attribution_metrics(self, capsys):
        assert main(["metrics", "gcc", "--attribution", *FAST_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "attribution.latency.p95" in out
        assert "attribution.component." in out

    def test_attribution_does_not_pollute_the_store(self, capsys):
        assert main(["metrics", "gcc", "--attribution", *FAST_FLAGS]) == 0
        experiment.clear_cache()
        capsys.readouterr()
        assert main(["metrics", "gcc", *FAST_FLAGS]) == 0
        assert "attribution." not in capsys.readouterr().out


class TestDiagnoseVerb:
    def test_diagnose_reports_and_exits_zero(self, capsys):
        assert main(["diagnose", "tomcatv", *FAST_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "Stall-source diagnosis: tomcatv" in out
        assert "cf. Fig. 5" in out
        assert "bank conflicts" in out

    def test_missing_benchmark_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["diagnose"])
        assert excinfo.value.code == 2
        assert "takes a benchmark name" in capsys.readouterr().err

    def test_unknown_benchmark_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["diagnose", "doom"])
        assert excinfo.value.code == 2


class TestReproTraceEnv:
    def test_env_trace_gzip_pickup(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "env-stream.jsonl.gz"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        assert main(["metrics", "gcc", *FAST_FLAGS]) == 0
        err = capsys.readouterr().err
        assert "[REPRO_TRACE:" in err and str(path) in err
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert sum(1 for _ in handle) > 0

    def test_env_trace_plain_pickup(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "env-stream.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        assert main(["metrics", "gcc", *FAST_FLAGS]) == 0
        assert json.loads(path.read_text(encoding="utf-8").splitlines()[0])


class TestCountersVerb:
    def test_table_default_with_sparklines(self, capsys):
        assert main(
            ["counters", "gcc", "--interval", "300", *FAST_FLAGS]
        ) == 0
        out = capsys.readouterr().out
        assert "Interval counters (300 instructions/interval" in out
        assert "sampled" in out
        assert "bank_conflict_rate" in out  # the sparkline block

    def test_json_carries_the_full_series(self, capsys):
        assert main(
            [
                "counters",
                "gcc",
                "--interval",
                "300",
                "--format",
                "json",
                *FAST_FLAGS,
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        series = payload["counters"]
        assert series["interval"] == 300
        assert series["columns"][0] == "instructions"
        assert sum(series["data"][0]) == 1500

    def test_csv_has_header_and_rows(self, capsys):
        assert main(
            [
                "counters",
                "gcc",
                "--interval",
                "300",
                "--format",
                "csv",
                *FAST_FLAGS,
            ]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("index,instructions,cycles,partial")
        assert len(lines) == 1 + 5  # 1500 instructions / 300 per row

    def test_chrome_merges_counter_tracks(self, tmp_path, capsys):
        assert main(
            [
                "counters",
                "gcc",
                "--interval",
                "300",
                "--format",
                "chrome",
                *FAST_FLAGS,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "counter-track sample(s)" in out
        document = json.loads(
            (tmp_path / "gcc.counters.trace.json").read_text(
                encoding="utf-8"
            )
        )
        counter_events = [
            e for e in document["traceEvents"] if e.get("ph") == "C"
        ]
        assert counter_events
        assert any(": ipc" in e["name"] for e in counter_events)

    def test_counters_do_not_pollute_the_store(self, tmp_path, capsys):
        assert main(
            ["counters", "gcc", "--interval", "300", *FAST_FLAGS]
        ) == 0
        assert not list((tmp_path / "store").glob("v*/??/*.json"))

    def test_bad_interval_is_a_parser_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["counters", "gcc", "--interval", "0", *FAST_FLAGS])
        assert excinfo.value.code == 2

    def test_unknown_format_lists_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["counters", "gcc", "--format", "BOGUS", *FAST_FLAGS])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err.strip().splitlines()[-1]
        assert "unknown counters format 'BOGUS'" in err

    def test_env_interval_is_the_default(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_COUNTER_INTERVAL", "500")
        assert main(["counters", "gcc", *FAST_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "(500 instructions/interval" in out


class TestCompareVerb:
    def test_default_pair_prints_ranked_table_and_verdict(self, capsys):
        assert main(
            ["compare", "gcc", "--interval", "300", *FAST_FLAGS]
        ) == 0
        out = capsys.readouterr().out
        assert "compared banked-2" in out
        assert "vs dual-ported" in out
        assert "Divergent intervals, widest IPC gap first" in out
        assert "-- cf. Fig." in out

    def test_json_payload_shape(self, capsys):
        assert main(
            [
                "compare",
                "gcc",
                "--a",
                "banked-2",
                "--b",
                "dual-ported",
                "--interval",
                "300",
                "--format",
                "json",
                *FAST_FLAGS,
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["a"]["label"] == "banked-2"
        assert payload["b"]["label"] == "dual-ported"
        assert payload["divergent_intervals"]
        entry = payload["divergent_intervals"][0]
        assert {"index", "gap", "pressure", "ipc_a", "ipc_b"} <= set(entry)
        assert "verdict" in payload

    def test_unknown_label_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", "gcc", "--a", "nonsense", *FAST_FLAGS])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown design point 'nonsense'" in err
        assert "banked-2" in err and "dual-ported" in err

    def test_compare_does_not_pollute_the_store(self, tmp_path, capsys):
        assert main(
            ["compare", "gcc", "--interval", "300", *FAST_FLAGS]
        ) == 0
        assert not list((tmp_path / "store").glob("v*/??/*.json"))


class TestDiagnoseFromCounters:
    def test_narratives_cite_the_worst_interval(self, capsys):
        assert main(
            ["diagnose", "gcc", "--from-counters", *FAST_FLAGS]
        ) == 0
        out = capsys.readouterr().out
        assert "worst interval" in out
        assert "IPC under" in out

    def test_plain_diagnose_is_unchanged(self, capsys):
        assert main(["diagnose", "gcc", *FAST_FLAGS]) == 0
        assert "worst interval" not in capsys.readouterr().out
