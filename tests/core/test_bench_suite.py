"""Unit tests for the perf-regression comparator in bench_suite.py.

Only the pure comparison logic runs here -- ``measure()`` costs minutes
of wall clock and belongs to the CI perf job, not the test suite.  The
module lives outside the package, so it is loaded by file path.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SUITE_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_suite.py"
)
_spec = importlib.util.spec_from_file_location("bench_suite", _SUITE_PATH)
bench_suite = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_suite)


def _payload(
    headline=10.0,
    tracing=11.0,
    attribution=11.3,
    overhead=0.03,
    scale=0.5,
    schema=bench_suite.BENCH_SCHEMA,
):
    return {
        "schema": schema,
        "command": "python -m repro headlines --jobs 1",
        "scale": scale,
        "headline": {"mean_seconds": headline},
        "tracing": {"mean_seconds": tracing},
        "attribution": {
            "mean_seconds": attribution,
            "overhead_vs_tracing": overhead,
        },
    }


class TestComparePayloads:
    def test_identical_payloads_pass(self):
        assert bench_suite.compare_payloads(_payload(), _payload()) == []

    def test_within_tolerance_passes(self):
        fresh = _payload(headline=11.4)  # +14% < 15%
        assert bench_suite.compare_payloads(fresh, _payload()) == []

    def test_regression_beyond_tolerance_fails(self):
        fresh = _payload(headline=11.6)  # +16% > 15%
        failures = bench_suite.compare_payloads(fresh, _payload())
        assert len(failures) == 1
        assert "headline regressed" in failures[0]

    def test_each_mode_is_gated(self):
        fresh = _payload(headline=12.0, tracing=13.0, attribution=13.5)
        failures = bench_suite.compare_payloads(fresh, _payload())
        assert [failure.split()[0] for failure in failures] == [
            "headline",
            "tracing",
            "attribution",
        ]

    def test_custom_tolerance(self):
        fresh = _payload(headline=11.4)
        failures = bench_suite.compare_payloads(
            fresh, _payload(), tolerance=0.10
        )
        assert failures and ">10%" in failures[0]

    def test_attribution_gate_is_absolute(self):
        # Overhead is judged on the fresh run alone, even when wall
        # clocks beat the baseline.
        fresh = _payload(headline=9.0, tracing=9.5, attribution=10.2, overhead=0.07)
        failures = bench_suite.compare_payloads(fresh, _payload())
        assert len(failures) == 1
        assert "attribution overhead" in failures[0]
        assert "5% gate" in failures[0]

    def test_telemetry_gate_is_absolute_and_optional(self):
        # The committed baseline may predate the telemetry mode; the
        # gate judges the fresh payload alone and tolerates absence.
        fresh = _payload()
        fresh["telemetry"] = {
            "mean_seconds": 11.2,
            "overhead_vs_headline": 0.12,
        }
        failures = bench_suite.compare_payloads(fresh, _payload())
        assert len(failures) == 1
        assert "telemetry overhead" in failures[0]
        assert "10% gate" in failures[0]
        fresh["telemetry"]["overhead_vs_headline"] = 0.08
        assert bench_suite.compare_payloads(fresh, _payload()) == []
        assert bench_suite.compare_payloads(_payload(), _payload()) == []

    def test_faster_runs_never_fail(self):
        fresh = _payload(headline=5.0, tracing=5.5, attribution=5.6, overhead=0.02)
        assert bench_suite.compare_payloads(fresh, _payload()) == []

    def test_backend_gate_is_absolute_and_optional(self):
        # The committed baseline may predate the backend mode; the
        # speedup is a property of the fresh run alone.
        fresh = _payload()
        fresh["backend"] = {"mean_seconds": 4.0, "speedup_vs_reference": 2.5}
        failures = bench_suite.compare_payloads(fresh, _payload())
        assert len(failures) == 1
        assert "fast backend speedup" in failures[0]
        assert "3.0x gate" in failures[0]
        fresh["backend"]["speedup_vs_reference"] = 4.8
        assert bench_suite.compare_payloads(fresh, _payload()) == []
        assert bench_suite.compare_payloads(_payload(), _payload()) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 1.0},
            {"schema": bench_suite.BENCH_SCHEMA + 1},
        ],
        ids=["scale", "schema"],
    )
    def test_parameter_mismatch_refuses_to_compare(self, kwargs):
        failures = bench_suite.compare_payloads(_payload(), _payload(**kwargs))
        assert len(failures) == 1
        assert "baseline mismatch" in failures[0]
        assert "regenerate the baseline" in failures[0]

    def test_command_mismatch_refuses_to_compare(self):
        baseline = _payload()
        baseline["command"] = "python -m repro all"
        failures = bench_suite.compare_payloads(_payload(), baseline)
        assert failures and "command" in failures[0]

    def test_mismatch_reported_before_timings(self):
        # A mismatched baseline must short-circuit: comparing timings
        # taken at different scales would be meaningless noise.
        fresh = _payload(headline=99.0)
        failures = bench_suite.compare_payloads(fresh, _payload(scale=1.0))
        assert len(failures) == 1
        assert "baseline mismatch" in failures[0]


def _scaling(cores=4, walls=None, speedups=None):
    walls = walls or {"1": 30.0, "2": 16.0, "4": 9.0}
    speedups = speedups or {
        jobs: round(walls["1"] / wall, 2) for jobs, wall in walls.items()
    }
    return {"cores": cores, "walls": walls, "speedups": speedups}


class TestScalingGate:
    def test_scaling_section_is_optional(self):
        # A baseline (or run) from before the mode existed still passes.
        assert bench_suite.compare_payloads(_payload(), _payload()) == []

    def test_multicore_speedup_above_gate_passes(self):
        fresh = _payload()
        fresh["scaling"] = _scaling(cores=4)
        assert bench_suite.compare_payloads(fresh, _payload()) == []

    def test_multicore_speedup_below_gate_fails(self):
        fresh = _payload()
        fresh["scaling"] = _scaling(
            cores=4, walls={"1": 30.0, "2": 25.0, "4": 24.0}
        )
        failures = bench_suite.compare_payloads(fresh, _payload())
        assert len(failures) == 1
        assert "--jobs 2 speedup" in failures[0]
        assert "1.5x gate" in failures[0]

    def test_single_core_is_gated_on_overhead_not_speedup(self):
        # 1.0x "speedup" on one core is the physical ceiling; it must
        # not fail the multi-core gate.
        fresh = _payload()
        fresh["scaling"] = _scaling(
            cores=1, walls={"1": 30.0, "2": 31.0, "4": 31.5}
        )
        assert bench_suite.compare_payloads(fresh, _payload()) == []

    def test_single_core_excess_overhead_fails(self):
        fresh = _payload()
        fresh["scaling"] = _scaling(
            cores=1, walls={"1": 30.0, "2": 40.0, "4": 41.0}
        )
        failures = bench_suite.compare_payloads(fresh, _payload())
        assert len(failures) == 1
        assert "single-core" in failures[0]
        assert "overhead gate" in failures[0]

    def test_single_core_overhead_gate_is_configurable(self):
        fresh = _payload()
        fresh["scaling"] = _scaling(
            cores=1, walls={"1": 30.0, "2": 33.0, "4": 33.5}
        )
        failures = bench_suite.compare_payloads(
            fresh, _payload(), scaling_overhead_gate=0.05
        )
        assert failures and "overhead gate" in failures[0]

    def test_multicore_gate_is_configurable(self):
        fresh = _payload()
        fresh["scaling"] = _scaling(cores=4)  # 1.88x at --jobs 2
        failures = bench_suite.compare_payloads(
            fresh, _payload(), scaling_gate=1.95
        )
        assert failures and "speedup" in failures[0]


class TestModeStats:
    def test_mean_and_stddev(self):
        stats = bench_suite._mode_stats([10.0, 11.0, 12.0])
        assert stats["mean_seconds"] == 11.0
        assert stats["stddev_seconds"] == pytest.approx(0.816, abs=1e-3)
        assert stats["samples"] == [10.0, 11.0, 12.0]

    def test_single_sample_has_zero_stddev(self):
        assert bench_suite._mode_stats([3.0])["stddev_seconds"] == 0.0


class TestEnv:
    def test_env_strips_trace_and_attribution(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", "/tmp/leak.jsonl")
        monkeypatch.setenv("REPRO_ATTRIBUTION", "1")
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        env = bench_suite._env(tmp_path, 0.5)
        assert "REPRO_TRACE" not in env
        assert "REPRO_ATTRIBUTION" not in env
        assert "REPRO_BACKEND" not in env
        assert env["REPRO_CACHE_DIR"] == str(tmp_path)

    def test_env_extras_reapply(self, tmp_path):
        env = bench_suite._env(tmp_path, 0.5, {"REPRO_ATTRIBUTION": "1"})
        assert env["REPRO_ATTRIBUTION"] == "1"
