"""REPRO_SCALE validation: loud on nonsense, silent on valid settings."""

import warnings

import pytest

from repro.core.experiment import SCALE_MAX, SCALE_MIN, scale_factor


class TestScaleFactor:
    def test_unset_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert scale_factor() == 1.0

    def test_valid_value_passes_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert scale_factor() == 2.5

    def test_garbage_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.warns(RuntimeWarning, match="not a number"):
            assert scale_factor() == 1.0

    def test_zero_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.warns(RuntimeWarning, match="must be positive"):
            assert scale_factor() == 1.0

    def test_negative_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-3")
        with pytest.warns(RuntimeWarning, match="must be positive"):
            assert scale_factor() == 1.0

    def test_huge_value_clamped_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1e9")
        with pytest.warns(RuntimeWarning, match="clamped"):
            assert scale_factor() == SCALE_MAX

    def test_tiny_value_clamped_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1e-9")
        with pytest.warns(RuntimeWarning, match="clamped"):
            assert scale_factor() == SCALE_MIN

    def test_range_endpoints_accepted(self, monkeypatch):
        for value in (SCALE_MIN, SCALE_MAX):
            monkeypatch.setenv("REPRO_SCALE", str(value))
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert scale_factor() == value
