"""Smoke/shape tests for the figure entry points and Figure 9 logic."""

import pytest

from repro.core import (
    ExperimentSettings,
    baseline_time_fo4,
    best_point,
    execution_time_curves,
    figure1,
    figure3,
    scaled_backside,
    table1,
    table2,
)
from repro.core.exec_time import ExecutionTimePoint
from repro.core.figures import figure4, figure6, figure7, figure8
from repro.analysis import monotone_non_increasing

FAST = ExperimentSettings(
    instructions=3_000, timing_warmup=800, functional_warmup=100_000
)


class TestStaticFigures:
    def test_figure1_shape(self):
        curves = figure1()
        assert set(curves) == {"single_ported", "eight_way_banked"}
        assert len(curves["single_ported"]) == 9

    def test_table1_contents(self):
        rows = table1()
        assert len(rows) == 9
        assert {row["group"] for row in rows} == {
            "SPECint95",
            "SPECfp95",
            "multiprogramming",
        }

    def test_table2_matches_specs(self):
        rows = table2(sample_instructions=20_000)
        by_name = {row["benchmark"]: row for row in rows}
        assert by_name["database"]["idle_pct"] == pytest.approx(64.6)
        assert by_name["gcc"]["load_pct"] == pytest.approx(28.1, abs=2.0)
        assert by_name["VCS"]["store_pct"] == pytest.approx(15.1, abs=2.0)

    def test_figure3_miss_curves(self):
        curves = figure3(
            sizes=(8 * 1024, 64 * 1024, 512 * 1024),
            instructions=60_000,
            warmup_instructions=60_000,
            benchmarks=("li", "database"),
        )
        for series in curves.values():
            values = [miss for _, miss in series]
            assert monotone_non_increasing(values, tolerance=0.002)
        assert curves["database"][0][1] > curves["li"][0][1]


class TestTimingFigures:
    def test_figure4_grid_complete(self):
        data = figure4(("li",), ports=(1, 2), hit_times=(1, 2), settings=FAST)
        assert set(data["li"]) == {(1, 1), (1, 2), (2, 1), (2, 2)}
        assert data["li"][(2, 1)] >= data["li"][(1, 1)] * 0.98

    def test_figure6_line_buffer_column(self):
        data = figure6(("li",), hit_times=(1,), settings=FAST)
        cells = data["li"]
        assert cells[("duplicate", True, 1)] >= cells[("duplicate", False, 1)] * 0.99

    def test_figure7_dram_grid(self):
        data = figure7(("li",), dram_hit_times=(6, 8), settings=FAST)
        assert data["li"][(6, True)] >= data["li"][(8, True)] * 0.98

    def test_figure8_series_and_average(self):
        data = figure8(
            ("li", "tomcatv"),
            sizes=(8 * 1024, 64 * 1024),
            hit_times=(1,),
            settings=FAST,
        )
        assert "average" in data
        series = data["average"][("duplicate", 1)]
        assert len(series) == 2
        li = data["li"][("duplicate", 1)]
        tom = data["tomcatv"][("duplicate", 1)]
        for (s, avg), (_, a), (_, b) in zip(series, li, tom):
            assert avg == pytest.approx((a + b) / 2)


class TestExecutionTime:
    def test_scaled_backside_reference_clock(self):
        backside = scaled_backside(25.0)
        assert backside.l2_hit_cycles == 10
        assert backside.memory_cycles == 60
        assert backside.chip_bus_bytes_per_cycle == pytest.approx(12.5)

    def test_scaled_backside_fast_clock(self):
        backside = scaled_backside(10.0)
        assert backside.l2_hit_cycles == 25
        assert backside.memory_cycles == 150
        assert backside.chip_bus_bytes_per_cycle == pytest.approx(5.0)

    def test_baseline_positive(self):
        assert baseline_time_fo4("li", FAST) > 0

    def test_curves_skip_unrealizable_points(self):
        points = execution_time_curves(
            "li", cycle_times=(10.0, 25.0), settings=FAST
        )
        # at 10 FO4 only depth 3 is realizable; at 25 FO4 all three are
        assert sum(1 for p in points if p.cycle_time_fo4 == 10.0) == 1
        assert sum(1 for p in points if p.cycle_time_fo4 == 25.0) == 3

    def test_normalization_is_relative_to_baseline(self):
        points = execution_time_curves("li", cycle_times=(10.0,), settings=FAST)
        baseline = baseline_time_fo4("li", FAST)
        for point in points:
            assert point.normalized_time == pytest.approx(
                point.execution_time_fo4 / baseline
            )

    def test_larger_cache_selected_at_slower_clock(self):
        points = execution_time_curves(
            "li", cycle_times=(15.0, 29.0), settings=FAST
        )
        depth1 = {p.cycle_time_fo4: p.cache_size for p in points if p.depth == 3}
        assert depth1[29.0] >= depth1[15.0]

    def test_best_point(self):
        points = [
            ExecutionTimePoint("li", 25.0, 1, 8192, 1.0, 100.0, 1.2),
            ExecutionTimePoint("li", 25.0, 2, 524288, 1.1, 90.0, 1.0),
        ]
        assert best_point(points).depth == 2
        with pytest.raises(ValueError):
            best_point([])
