"""Tests for cache-organization descriptors."""

import pytest

from repro.core import banked, dram_cache, duplicate, ideal_ports
from repro.memory import ConfigurationError, MemorySystem
from repro.timing import banked_access_fo4, single_ported_access_fo4

KB = 1024


class TestConstructors:
    def test_ideal_ports(self):
        org = ideal_ports(32 * KB, ports=3, hit_cycles=2)
        assert org.port_policy == "ideal" and org.ports == 3
        assert org.hit_cycles == 2

    def test_banked(self):
        org = banked(64 * KB, banks=16)
        assert org.port_policy == "banked" and org.banks == 16

    def test_duplicate(self):
        org = duplicate(32 * KB, line_buffer=True)
        assert org.port_policy == "duplicate" and org.line_buffer

    def test_dram(self):
        org = dram_cache(dram_hit_cycles=7)
        assert org.dram is not None
        assert org.dram.dram_hit_cycles == 7
        assert org.dram.dram_size == 4 * 1024 * KB


class TestLabels:
    def test_labels_follow_paper_notation(self):
        assert ideal_ports(32 * KB, ports=2, hit_cycles=2).label == "2~ 2-port 32K"
        assert banked(32 * KB).label == "1~ 8-way banked 32K"
        assert duplicate(512 * KB, hit_cycles=2).label == "2~ duplicate 512K"
        assert duplicate(32 * KB, line_buffer=True).label == "1~ duplicate 32K +LB"
        assert dram_cache(6).label == "6~ DRAM 4M"


class TestAccessTimes:
    def test_duplicate_uses_single_ported_curve(self):
        assert duplicate(64 * KB).access_time_fo4() == pytest.approx(
            single_ported_access_fo4(64 * KB)
        )

    def test_banked_uses_banked_curve(self):
        assert banked(4 * KB).access_time_fo4() == pytest.approx(
            banked_access_fo4(4 * KB)
        )

    def test_dram_uses_row_cache_size(self):
        assert dram_cache().access_time_fo4() == pytest.approx(
            single_ported_access_fo4(16 * KB)
        )


class TestMaterialization:
    def test_memory_config_round_trip(self):
        org = duplicate(64 * KB, hit_cycles=2, line_buffer=True)
        system = MemorySystem(org.memory_config())
        assert system.l1.size_bytes == 64 * KB
        assert system.config.l1_hit_cycles == 2
        assert system.line_buffer is not None

    def test_dram_memory_config(self):
        system = MemorySystem(dram_cache().memory_config())
        assert system.l1.line_bytes == 512
        assert system.l1.size_bytes == 16 * KB

    def test_invalid_policy_caught_at_materialization(self):
        from repro.core import CacheOrganization

        with pytest.raises(ConfigurationError):
            MemorySystem(CacheOrganization(port_policy="magic").memory_config())


class TestModifiers:
    def test_with_line_buffer(self):
        base = duplicate(32 * KB)
        assert base.with_line_buffer().line_buffer
        assert not base.line_buffer  # immutable

    def test_resized_and_pipelined(self):
        org = duplicate(32 * KB).resized(128 * KB).pipelined(3)
        assert org.size_bytes == 128 * KB and org.hit_cycles == 3

    def test_hashable_for_memoization(self):
        assert duplicate(32 * KB) == duplicate(32 * KB)
        assert hash(duplicate(32 * KB)) == hash(duplicate(32 * KB))
        assert duplicate(32 * KB) != banked(32 * KB)
