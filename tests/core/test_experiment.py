"""Tests for the experiment driver and its qualitative reproductions.

These run short simulations (a few thousand instructions) so the whole
file stays under a couple of minutes; the bench harness runs the full-
budget versions.
"""

import pytest

from repro.core import (
    ExperimentSettings,
    average_ipc,
    banked,
    dram_cache,
    duplicate,
    ideal_ports,
    run_experiment,
)
from repro.core.experiment import clear_cache, scale_factor

FAST = ExperimentSettings(
    instructions=4_000, timing_warmup=1_000, functional_warmup=120_000
)


class TestDriverMechanics:
    def test_returns_simulation_result(self):
        result = run_experiment(duplicate(), "gcc", FAST)
        assert result.instructions == FAST.instructions
        assert result.ipc > 0

    def test_memoization_returns_identical_object(self):
        a = run_experiment(duplicate(), "li", FAST)
        b = run_experiment(duplicate(), "li", FAST)
        assert a is b

    def test_clear_cache(self):
        a = run_experiment(duplicate(), "li", FAST)
        clear_cache()
        b = run_experiment(duplicate(), "li", FAST)
        assert a is not b
        assert a.ipc == b.ipc  # still deterministic

    def test_accepts_spec_objects(self):
        from repro.workloads import benchmark

        result = run_experiment(duplicate(), benchmark("li"), FAST)
        assert result.ipc > 0

    def test_average_ipc(self):
        value = average_ipc(duplicate(), ("li", "gcc"), FAST)
        a = run_experiment(duplicate(), "li", FAST).ipc
        b = run_experiment(duplicate(), "gcc", FAST).ipc
        assert value == pytest.approx((a + b) / 2)

    def test_average_needs_workloads(self):
        with pytest.raises(ValueError):
            average_ipc(duplicate(), ())

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        assert scale_factor() == 2.0
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.warns(RuntimeWarning, match="not a number"):
            assert scale_factor() == 1.0

    def test_scaled_settings(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        scaled = FAST.scaled()
        assert scaled.instructions == 2 * FAST.instructions


class TestPaperQualitative:
    """Short-run versions of the paper's headline orderings."""

    def test_second_port_helps(self):
        one = run_experiment(ideal_ports(ports=1), "gcc", FAST).ipc
        two = run_experiment(ideal_ports(ports=2), "gcc", FAST).ipc
        assert two > one * 1.03

    def test_diminishing_port_returns(self):
        two = run_experiment(ideal_ports(ports=2), "gcc", FAST).ipc
        four = run_experiment(ideal_ports(ports=4), "gcc", FAST).ipc
        one = run_experiment(ideal_ports(ports=1), "gcc", FAST).ipc
        assert (four - two) < (two - one)

    def test_pipelining_hurts_integer_more_than_fp(self):
        def loss(name):
            fast = run_experiment(ideal_ports(hit_cycles=1), name, FAST).ipc
            slow = run_experiment(ideal_ports(hit_cycles=3), name, FAST).ipc
            return 1 - slow / fast

        assert loss("gcc") > 2 * loss("tomcatv")

    def test_line_buffer_always_helps_duplicate(self):
        for hit in (1, 3):
            plain = run_experiment(duplicate(hit_cycles=hit), "gcc", FAST).ipc
            with_lb = run_experiment(
                duplicate(hit_cycles=hit, line_buffer=True), "gcc", FAST
            ).ipc
            assert with_lb >= plain * 0.995

    def test_line_buffer_helps_duplicate_more_than_banked(self):
        def gain(make):
            plain = run_experiment(make(line_buffer=False), "gcc", FAST).ipc
            lb = run_experiment(make(line_buffer=True), "gcc", FAST).ipc
            return lb / plain

        assert gain(lambda **kw: duplicate(**kw)) >= gain(
            lambda **kw: banked(**kw)
        ) - 0.005

    def test_line_buffer_hides_pipelining(self):
        """Section 4.2: the LB recovers part of the pipelining loss."""
        drop_plain = (
            run_experiment(duplicate(hit_cycles=1), "gcc", FAST).ipc
            - run_experiment(duplicate(hit_cycles=3), "gcc", FAST).ipc
        )
        drop_lb = (
            run_experiment(duplicate(hit_cycles=1, line_buffer=True), "gcc", FAST).ipc
            - run_experiment(duplicate(hit_cycles=3, line_buffer=True), "gcc", FAST).ipc
        )
        assert drop_lb < drop_plain

    def test_dram_hit_time_monotone(self):
        ipcs = [
            run_experiment(dram_cache(hit, line_buffer=True), "gcc", FAST).ipc
            for hit in (6, 8)
        ]
        assert ipcs[1] <= ipcs[0] * 1.01

    def test_bigger_cache_helps_database(self):
        small = run_experiment(duplicate(8 * 1024, line_buffer=True), "database", FAST)
        large = run_experiment(
            duplicate(512 * 1024, line_buffer=True), "database", FAST
        )
        assert large.ipc > small.ipc
        assert large.memory.l1_miss_rate < small.memory.l1_miss_rate
