"""Tests for the CLI and the text reporting layer."""

import pytest

from repro.cli import main
from repro.core import reporting
from repro.core.exec_time import ExecutionTimePoint


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = reporting.format_table(
            ["a", "long-header"], [["1", "2"], ["333", "4"]], "T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", " "}
        assert lines[1].index("long-header") == lines[3].index("2".ljust(1))

    def test_no_title(self):
        text = reporting.format_table(["x"], [["1"]])
        assert text.splitlines()[0].startswith("x")


class TestRenderers:
    def test_render_figure1(self):
        text = reporting.render_figure1(
            {"single_ported": [(4096, 23.3), (8192, 25.0)]}
        )
        assert "4K" in text and "25.0" in text

    def test_render_table2(self):
        rows = [
            {
                "benchmark": "gcc",
                "kernel_pct": 10.0,
                "user_pct": 90.0,
                "idle_pct": 0.0,
                "load_pct": 28.1,
                "store_pct": 12.2,
            }
        ]
        text = reporting.render_table2(rows)
        assert "28.1" in text and "gcc" in text

    def test_render_figure3(self):
        text = reporting.render_figure3({"li": [(4096, 0.0204)]})
        assert "2.04%" in text

    def test_render_ipc_grid(self):
        data = {"li": {(1, 1): 1.5, (1, 2): 1.4, (2, 1): 1.6, (2, 2): 1.5}}
        text = reporting.render_ipc_grid(data, "ports", "Grid")
        assert "1.600" in text and "ports" in text

    def test_render_figure6(self):
        cells = {
            (style, lb, hit): 1.0
            for style in ("banked", "duplicate")
            for lb in (False, True)
            for hit in (1, 2, 3)
        }
        text = reporting.render_figure6({"gcc": cells})
        assert "duplicate.LB" in text

    def test_render_figure7(self):
        cells = {(hit, lb): 1.2 for hit in (6, 7, 8) for lb in (True, False)}
        text = reporting.render_figure7({"gcc": cells})
        assert "no LB" in text and "6~ IPC" in text

    def test_render_figure9(self):
        points = [
            ExecutionTimePoint("gcc", 25.0, 2, 512 * 1024, 1.5, 100.0, 1.1)
        ]
        text = reporting.render_figure9({"gcc": points})
        assert "512K" in text and "1.100" in text

    def test_render_headlines(self):
        numbers = {
            "port_gain": {"1->2": 0.08},
            "pipeline_loss": {"gcc": {"2_cycles": 0.1, "3_cycles": 0.2}},
            "line_buffer_gain": {"duplicate": 0.03},
            "lb_pipeline_recovery": {"gcc": 0.5},
            "dram_loss_per_cycle": 0.007,
        }
        text = reporting.render_headlines(numbers)
        assert "+8.0%" in text and "50%" in text


class TestCli:
    def test_figure1_runs(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "single_ported" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_small_simulated_figure(self, capsys):
        code = main(
            [
                "figure4",
                "--benchmarks",
                "li",
                "--instructions",
                "1500",
                "--functional-warmup",
                "40000",
            ]
        )
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure42"])
        err = capsys.readouterr().err
        assert "unknown experiment 'figure42'" in err
        assert "figure1" in err and "headlines" in err  # lists valid names
        assert "Traceback" not in err

    def test_rejects_unknown_benchmark(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure4", "--benchmarks", "doom"])
        err = capsys.readouterr().err
        assert "unknown benchmark 'doom'" in err
        assert "gcc" in err and "tomcatv" in err  # lists valid names
        assert "Traceback" not in err

    def test_benchmark_names_are_case_insensitive(self, capsys):
        code = main(
            [
                "table2",
                "--benchmarks",
                "GCC",
            ]
        )
        assert code == 0
        assert "Table 2" in capsys.readouterr().out
