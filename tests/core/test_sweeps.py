"""Fast tests for the sweep/ablation helpers (small budgets)."""

import pytest

from repro.core import ExperimentSettings
from repro.core.sweeps import (
    associativity_sweep,
    bank_interleave_sweep,
    direct_mapped_equivalence,
    issue_width_sweep,
    line_buffer_size_sweep,
    mshr_sweep,
    prefetch_sweep,
    victim_vs_line_buffer,
    window_size_sweep,
    write_policy_sweep,
)

TINY = ExperimentSettings(
    instructions=2_500, timing_warmup=500, functional_warmup=80_000
)


class TestSweepShapes:
    def test_mshr_sweep_keys_and_positive(self):
        data = mshr_sweep("li", mshr_counts=(1, 4), settings=TINY)
        assert set(data) == {1, 4}
        assert all(v > 0 for v in data.values())
        assert data[4] >= data[1] * 0.98

    def test_line_buffer_size_hit_rate_monotone(self):
        data = line_buffer_size_sweep("li", entry_counts=(4, 32), settings=TINY)
        assert data[32][1] >= data[4][1] - 0.03

    def test_associativity_reduces_misses(self):
        data = associativity_sweep(
            "gcc", sizes=(8 * 1024,), ways=(1, 2), settings=TINY
        )
        assert data[(8 * 1024, 2)] <= data[(8 * 1024, 1)] * 1.1

    def test_direct_mapped_equivalence_keys(self):
        data = direct_mapped_equivalence("li", size=8 * 1024, settings=TINY)
        assert set(data) == {"direct_S", "twoway_S", "direct_2S"}
        # On a 2,500-instruction sample 2-way LRU can trail direct-mapped
        # by a hair; the equivalence claim only needs rough parity here.
        assert data["twoway_S"] <= data["direct_S"] * 1.25

    def test_bank_interleave_line_at_least_page(self):
        data = bank_interleave_sweep("tomcatv", settings=TINY)
        assert data["line"][0] >= data["page"][0] * 0.95

    def test_write_policy_variants(self):
        data = write_policy_sweep("li", settings=TINY)
        assert set(data) == {
            "write-back",
            "write-through",
            "write-through/no-allocate",
        }
        assert all(v > 0 for v in data.values())

    def test_victim_vs_line_buffer_variants(self):
        data = victim_vs_line_buffer("gcc", settings=TINY)
        assert set(data) == {"plain", "line-buffer", "victim-cache", "both"}
        assert data["line-buffer"] >= data["plain"] * 0.97

    def test_prefetch_sweep_structure(self):
        data = prefetch_sweep(workloads=("li",), settings=TINY)
        assert set(data["li"]) == {"off", "on"}

    def test_window_size_monotone_ish(self):
        data = window_size_sweep(
            "tomcatv", window_sizes=(16, 64), settings=TINY
        )
        assert data[64] >= data[16] * 0.98

    def test_issue_width_scales(self):
        data = issue_width_sweep("tomcatv", widths=(1, 4), settings=TINY)
        assert data[4] > data[1]

    def test_settings_threading(self):
        """Sweeps must respect the provided settings (measured length)."""
        from repro.core import duplicate, run_experiment

        result = run_experiment(duplicate(), "li", TINY)
        assert result.instructions == TINY.instructions


class TestLineSizeSweep:
    def test_structure_and_spatial_benefit(self):
        from repro.core.sweeps import line_size_sweep

        data = line_size_sweep("tomcatv", settings=TINY)
        assert set(data) == {16, 32, 64}
        # Streaming code: longer lines cut the miss rate.
        assert data[64][1] < data[16][1]


class TestFuRestrictionSweep:
    def test_restriction_never_helps(self):
        from repro.core.sweeps import fu_restriction_sweep

        data = fu_restriction_sweep(workloads=("li",), settings=TINY)
        cells = data["li"]
        assert cells["r10000_units"] <= cells["unrestricted"] * 1.02
