"""CLI integration: the run ledger verbs and JSON metric output."""

import json

import pytest

from repro.cli import main
from repro.core import experiment
from repro.core.experiment import ExperimentSettings
from repro.core.organizations import duplicate
from repro.cpu.result import SimulationResult
from repro.engine.key import ExperimentKey
from repro.engine.ledger import RunLedger, build_record
from repro.engine.store import ResultStore

FIGURE_ARGS = [
    "figure4",
    "--benchmarks",
    "gcc",
    "--instructions",
    "1200",
    "--timing-warmup",
    "200",
    "--functional-warmup",
    "5000",
]

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


@pytest.fixture(autouse=True)
def fresh_memo():
    experiment.clear_cache()
    yield
    experiment.clear_cache()


def _ledger() -> RunLedger:
    return ResultStore().ledger()


def _seed_run(cycles: int = 1000, workloads=("gcc", "tomcatv")) -> str:
    """Append one handcrafted record; returns its run id."""
    points = {
        ExperimentKey(
            duplicate(32 * 1024, line_buffer=True), workload, FAST
        ): SimulationResult(instructions=1500, cycles=cycles)
        for workload in workloads
    }
    outcomes = {key: "simulated" for key in points}
    return _ledger().append(
        build_record(points, outcomes, wall_seconds=2.0, jobs=1, store_schema=3)
    )


class TestRunsList:
    def test_empty_ledger(self, capsys):
        assert main(["runs"]) == 0
        assert "no runs recorded yet" in capsys.readouterr().out

    def test_table_lists_every_run(self, capsys):
        first = _seed_run()
        second = _seed_run()
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert first in out
        assert second in out
        assert "2 sim" in out

    def test_json_omits_per_point_rows(self, capsys):
        _seed_run()
        assert main(["runs", "list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert "points" not in payload[0]
        assert payload[0]["summary"]["points"] == 2


class TestRunsShow:
    def test_show_last_renders_header_and_points(self, capsys):
        run_id = _seed_run()
        assert main(["runs", "show", "last"]) == 0
        out = capsys.readouterr().out
        assert f"run:          {run_id}" in out
        assert "plan digest:" in out
        assert "mean IPC:     1.5000" in out
        assert "2 design point(s)" in out

    def test_show_defaults_to_last(self, capsys):
        run_id = _seed_run()
        assert main(["runs", "show"]) == 0
        assert run_id in capsys.readouterr().out

    def test_show_json_round_trips_the_record(self, capsys):
        run_id = _seed_run()
        assert main(["runs", "show", "last", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == run_id
        assert len(payload["points"]) == 2

    def test_unknown_ref_is_usage_error(self, capsys):
        _seed_run()
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "show", "r9999"])
        assert excinfo.value.code == 2
        assert "no run matches 'r9999'" in capsys.readouterr().err


class TestRunsCompare:
    def test_identical_runs_have_no_drift(self, capsys):
        _seed_run(cycles=1000)
        _seed_run(cycles=1000)
        assert main(["runs", "compare"]) == 0
        out = capsys.readouterr().out
        assert "no drift: 2 design point(s)" in out

    def test_single_run_has_nothing_to_compare(self, capsys):
        _seed_run()
        assert main(["runs", "compare"]) == 2
        assert "nothing to compare" in capsys.readouterr().err

    def test_empty_ledger_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "compare"])
        assert excinfo.value.code == 2

    def test_drift_is_reported_and_exits_3(self, capsys):
        first = _seed_run(cycles=1000)
        second = _seed_run(cycles=1001)
        assert main(["runs", "compare", first, second]) == 3
        captured = capsys.readouterr()
        assert "DRIFT" in captured.out
        assert "cycles 1000 -> 1001" in captured.out
        assert "drifting metric(s)" in captured.err

    def test_rel_tol_absorbs_small_drift(self, capsys):
        first = _seed_run(cycles=1000)
        second = _seed_run(cycles=1001)
        assert main(["runs", "compare", first, second, "--rel-tol", "0.01"]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_json_format_keeps_exit_codes(self, capsys):
        _seed_run(cycles=1000)
        _seed_run(cycles=1001)
        assert main(["runs", "compare", "1", "2", "--format", "json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert {d["metric"] for d in payload["drifts"]} == {"ipc", "cycles"}

    def test_three_refs_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "compare", "1", "2", "3"])
        assert excinfo.value.code == 2

    def test_compare_skips_runs_of_other_plans(self, capsys):
        anchor = _seed_run(workloads=("gcc",))
        _seed_run(workloads=("tomcatv",))  # a different plan in between
        _seed_run(workloads=("gcc",))
        assert main(["runs", "compare"]) == 0
        out = capsys.readouterr().out
        assert f"comparing {anchor} (older)" in out


class TestLedgerThroughFigures:
    def test_figure_run_appends_and_reruns_compare_clean(self, capsys):
        assert main(FIGURE_ARGS) == 0
        capsys.readouterr()
        assert _ledger().info()["runs"] == 1

        experiment.clear_cache()
        assert main(FIGURE_ARGS) == 0
        capsys.readouterr()
        assert _ledger().info()["runs"] == 2

        assert main(["runs", "compare"]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_no_cache_run_records_nothing(self, capsys):
        assert main(FIGURE_ARGS + ["--no-cache"]) == 0
        capsys.readouterr()
        assert _ledger().info()["runs"] == 0


class TestCacheInfoLedger:
    def test_info_reports_empty_ledger(self, capsys):
        assert main(["cache", "info"]) == 0
        assert "run ledger:      no runs recorded" in capsys.readouterr().out

    def test_info_reports_ledger_stats(self, capsys):
        run_id = _seed_run()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "run ledger:      1 run(s)" in out
        assert run_id in out

    def test_clear_preserves_run_history(self, capsys):
        assert main(FIGURE_ARGS) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        capsys.readouterr()
        assert _ledger().info()["runs"] == 1
        assert main(["runs", "list"]) == 0
        assert "r0001-" in capsys.readouterr().out


class TestFormatValidation:
    def test_unknown_runs_format(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "list", "--format", "BOGUS"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown runs format 'BOGUS'" in err
        assert "choose from: json, table" in err

    def test_format_rejected_on_figure_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure4", "--format", "json"])
        assert excinfo.value.code == 2
        assert "--format applies to" in capsys.readouterr().err

    def test_refs_rejected_on_figure_commands(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure4", "extra-ref"])
        assert excinfo.value.code == 2


class TestMetricsJson:
    def test_metrics_json_is_parseable(self, capsys):
        args = [
            "metrics",
            "--benchmarks",
            "gcc",
            "--instructions",
            "1200",
            "--timing-warmup",
            "200",
            "--functional-warmup",
            "5000",
        ]
        assert main(args + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "gcc"
        assert payload["summary"]["instructions"] >= 1200
        assert payload["metrics"]["cpu.instructions"] == (
            payload["summary"]["instructions"]
        )
