"""Unit tests for the commit-progress watchdog."""

import pytest

from repro.memory.mshr import MshrFile
from repro.robustness import CommitWatchdog, DeadlockError


class TestCommitWatchdog:
    def test_quiet_within_bound(self):
        dog = CommitWatchdog(stall_cycles=1000)
        dog.check(1000, [], MshrFile(4))  # exactly at the bound: fine

    def test_raises_past_bound(self):
        dog = CommitWatchdog(stall_cycles=1000)
        with pytest.raises(DeadlockError, match="deadlocked"):
            dog.check(1001, [], MshrFile(4))

    def test_progress_resets_the_clock(self):
        dog = CommitWatchdog(stall_cycles=1000)
        dog.progress(5000)
        dog.check(5900, [], MshrFile(4))
        with pytest.raises(DeadlockError):
            dog.check(6001, [], MshrFile(4))

    def test_error_includes_window_and_mshr_dumps(self):
        dog = CommitWatchdog(stall_cycles=10)
        mshrs = MshrFile(4)
        mshrs.complete(0x40, 999_999)
        with pytest.raises(DeadlockError) as info:
            dog.check(50, [], mshrs)
        error = info.value
        assert "stalled window" in error.state
        assert "MSHR file" in error.state
        assert "0x40" in error.state["MSHR file"]
        # __str__ renders the blocks for plain tracebacks/logs too.
        assert "stalled window" in str(error)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            CommitWatchdog(stall_cycles=0)
