"""Per-point wall-clock deadlines: arming, expiry, env configuration."""

import pytest

from repro.robustness.deadline import (
    DEFAULT_GRACE_SECONDS,
    POINT_GRACE_ENV,
    POINT_TIMEOUT_ENV,
    _TICK_MASK,
    Deadline,
    active_deadline,
    clear_deadline,
    configured_timeout,
    grace_seconds,
    point_deadline,
)
from repro.robustness.errors import DeadlineExceededError


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return self.now


@pytest.fixture(autouse=True)
def _no_leaked_deadline():
    clear_deadline()
    yield
    clear_deadline()


class TestDeadline:
    def test_positive_budget_required(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_check_quiet_before_expiry(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.now += 9.9
        deadline.check(cycle=5)  # no raise
        assert deadline.remaining() == pytest.approx(0.1)
        assert not deadline.expired()

    def test_check_raises_at_expiry(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.now += 10.0
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check(cycle=42)
        assert excinfo.value.seconds == 10.0
        assert "cycle 42" in str(excinfo.value)
        assert "timeout gap" in str(excinfo.value)

    def test_tick_reads_clock_once_per_mask_window(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        reads_after_arm = clock.reads
        for _ in range(_TICK_MASK):
            deadline.tick()
        assert clock.reads == reads_after_arm  # masked calls are free
        deadline.tick()  # the (mask+1)-th call pays the clock read
        assert clock.reads == reads_after_arm + 1

    def test_tick_raises_once_expired(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now += 2.0
        with pytest.raises(DeadlineExceededError):
            for _ in range(_TICK_MASK + 1):
                deadline.tick()


class TestConfiguration:
    def test_unset_means_unbounded(self, monkeypatch):
        monkeypatch.delenv(POINT_TIMEOUT_ENV, raising=False)
        assert configured_timeout() is None

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv(POINT_TIMEOUT_ENV, "12.5")
        assert configured_timeout() == 12.5

    @pytest.mark.parametrize("raw", ["0", "-3", "soon", ""])
    def test_bad_values_disable_not_fail(self, monkeypatch, raw):
        monkeypatch.setenv(POINT_TIMEOUT_ENV, raw)
        assert configured_timeout() is None

    def test_grace_default_and_override(self, monkeypatch):
        monkeypatch.delenv(POINT_GRACE_ENV, raising=False)
        assert grace_seconds() == DEFAULT_GRACE_SECONDS
        monkeypatch.setenv(POINT_GRACE_ENV, "1.5")
        assert grace_seconds() == 1.5
        monkeypatch.setenv(POINT_GRACE_ENV, "nope")
        assert grace_seconds() == DEFAULT_GRACE_SECONDS


class TestPointDeadlineScope:
    def test_nothing_installed_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv(POINT_TIMEOUT_ENV, raising=False)
        with point_deadline() as armed:
            assert armed is None
            assert active_deadline() is None

    def test_env_budget_arms_and_restores(self, monkeypatch):
        monkeypatch.setenv(POINT_TIMEOUT_ENV, "30")
        with point_deadline() as armed:
            assert armed is not None
            assert armed.seconds == 30.0
            assert active_deadline() is armed
        assert active_deadline() is None

    def test_explicit_budget_beats_env(self, monkeypatch):
        monkeypatch.setenv(POINT_TIMEOUT_ENV, "30")
        with point_deadline(5.0) as armed:
            assert armed.seconds == 5.0

    def test_nested_scopes_restore_outer(self):
        with point_deadline(10.0) as outer:
            with point_deadline(1.0) as inner:
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with point_deadline(10.0):
                raise RuntimeError("boom")
        assert active_deadline() is None


class TestCoreIntegration:
    def test_expired_deadline_ends_a_simulation(self):
        from repro.core.experiment import ExperimentSettings, _simulate
        from repro.core.organizations import duplicate
        from repro.workloads.catalog import benchmark

        settings = ExperimentSettings(
            instructions=100_000, timing_warmup=0, functional_warmup=0
        )
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.now += 1.0  # already expired when the hot loop first ticks
        from repro.robustness.deadline import install_deadline

        install_deadline(deadline)
        with pytest.raises(DeadlineExceededError):
            _simulate(duplicate(32 * 1024), benchmark("gcc"), settings)
