"""Unit tests for the incremental checks and the structural audit."""

import pytest

from repro.memory import MemoryConfig, MemorySystem
from repro.robustness import (
    GrantLedger,
    SimulationInvariantError,
    audit_memory,
)
from repro.robustness.invariants import _LEDGER_PRUNE_AT, check_causality


def make_system(**overrides) -> MemorySystem:
    return MemorySystem(MemoryConfig(**overrides))


class TestGrantLedger:
    def test_capacity_respected(self):
        ledger = GrantLedger(2, "test ports")
        ledger.record(10, 0)
        ledger.record(10, 0)  # second grant at capacity 2: fine

    def test_oversubscription_raises(self):
        ledger = GrantLedger(1, "test ports")
        ledger.record(10, 0)
        with pytest.raises(SimulationInvariantError) as info:
            ledger.record(10, 0)
        assert "test ports" in str(info.value)
        assert "grant ledger" in str(info.value)

    def test_keys_are_independent(self):
        ledger = GrantLedger(1, "banks")
        ledger.record(10, 0)
        ledger.record(10, 1)  # different bank, same cycle: fine
        ledger.record(11, 0)  # same bank, different cycle: fine

    def test_weight_counts_multiple_grants(self):
        ledger = GrantLedger(2, "ports")
        with pytest.raises(SimulationInvariantError):
            ledger.record(5, 0, weight=3)

    def test_pruning_bounds_memory(self):
        ledger = GrantLedger(1, "ports")
        for cycle in range(_LEDGER_PRUNE_AT + 10):
            ledger.record(cycle)
        assert len(ledger._counts) <= _LEDGER_PRUNE_AT

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            GrantLedger(0, "ports")


class TestCausality:
    def test_legitimate_window_passes(self):
        check_causality("bus", 10, 10, 12)
        check_causality("bus", 10, 15, 16)

    def test_start_before_request_raises(self):
        with pytest.raises(SimulationInvariantError, match="acausal"):
            check_causality("bus", 10, 9, 12)

    def test_zero_occupancy_raises(self):
        with pytest.raises(SimulationInvariantError, match="acausal"):
            check_causality("bus", 10, 10, 10)


class TestAuditMemory:
    def test_clean_system_passes(self):
        system = make_system(line_buffer=True, victim_entries=4)
        for i in range(200):
            system.load(i * 64, i)
        audit_memory(system, 10_000)

    def test_line_buffer_incoherence_caught(self):
        system = make_system(line_buffer=True)
        system.load(0, 0)
        # Sneak a line into the buffer that the L1 never held.
        system.line_buffer._cache.fill(0x9999)
        with pytest.raises(SimulationInvariantError) as info:
            audit_memory(system, 100)
        assert "missed invalidation" in str(info.value)
        assert "memory state" in str(info.value)

    def test_victim_exclusivity_caught(self):
        system = make_system(victim_entries=4)
        system.load(0, 0)
        line = system.line_of(0)
        system.victim_cache._cache.fill(line)  # also resident in L1
        with pytest.raises(SimulationInvariantError, match="exclusivity"):
            audit_memory(system, 100)

    def test_served_by_mismatch_caught(self):
        system = make_system()
        system.load(0, 0)
        system.stats.loads += 1  # an access nothing served
        with pytest.raises(SimulationInvariantError, match="served-by"):
            audit_memory(system, 100)

    def test_error_carries_state_dump(self):
        system = make_system()
        system.load(0, 0)
        system.stats.loads += 1
        with pytest.raises(SimulationInvariantError) as info:
            audit_memory(system, 100)
        assert info.value.state  # structured blocks, not just a message
        assert "MSHR file" in info.value.state
