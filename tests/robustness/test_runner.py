"""Per-design-point isolation: retries, gaps, and the failure summary."""

import math

import pytest

from repro.cli import main
from repro.core import experiment
from repro.core.experiment import ExperimentSettings, clear_cache, run_experiment
from repro.core.organizations import duplicate
from repro.robustness import (
    FailureLog,
    SimulationInvariantError,
    current_failure_log,
    resilient_sweeps,
)

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestContext:
    def test_inactive_by_default(self):
        assert current_failure_log() is None

    def test_active_inside_and_restored_after(self):
        with resilient_sweeps() as log:
            assert current_failure_log() is log
        assert current_failure_log() is None

    def test_nested_contexts_share_the_outermost_log(self):
        with resilient_sweeps() as outer:
            with resilient_sweeps() as inner:
                assert inner is outer

    def test_restored_even_on_error(self):
        with pytest.raises(RuntimeError):
            with resilient_sweeps():
                raise RuntimeError("boom")
        assert current_failure_log() is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            with resilient_sweeps(retries=-1):
                pass
        with pytest.raises(ValueError):
            with resilient_sweeps(budget_divisor=1):
                pass


class TestIsolation:
    def test_errors_propagate_without_context(self, monkeypatch):
        def boom(org, spec, settings):
            raise SimulationInvariantError("injected")

        monkeypatch.setattr(experiment, "_simulate", boom)
        with pytest.raises(SimulationInvariantError):
            run_experiment(duplicate(), "gcc", FAST)

    def test_persistent_failure_becomes_a_gap(self, monkeypatch):
        calls = []

        def boom(org, spec, settings):
            calls.append(settings.instructions)
            raise SimulationInvariantError("injected")

        monkeypatch.setattr(experiment, "_simulate", boom)
        with resilient_sweeps() as log:
            result = run_experiment(duplicate(), "gcc", FAST)
        assert result.failed
        assert math.isnan(result.ipc)
        assert len(calls) == 2  # full budget + one reduced retry
        assert calls[1] < calls[0]
        (record,) = log.records
        assert record.resolution == "gap"
        assert record.error_type == "SimulationInvariantError"
        assert record.workload == "gcc"

    def test_transient_failure_recovers_at_reduced_budget(self, monkeypatch):
        real = experiment._simulate
        state = {"failed": False}

        def flaky(org, spec, settings):
            if not state["failed"]:
                state["failed"] = True
                raise SimulationInvariantError("transient")
            return real(org, spec, settings)

        monkeypatch.setattr(experiment, "_simulate", flaky)
        with resilient_sweeps() as log:
            result = run_experiment(duplicate(), "gcc", FAST)
        assert not result.failed
        assert result.ipc > 0
        (record,) = log.records
        assert record.resolution == "recovered"
        assert record.attempts == 2

    def test_failures_are_never_cached(self, monkeypatch):
        def boom(org, spec, settings):
            raise SimulationInvariantError("injected")

        monkeypatch.setattr(experiment, "_simulate", boom)
        with resilient_sweeps():
            assert run_experiment(duplicate(), "gcc", FAST).failed
        monkeypatch.undo()
        result = run_experiment(duplicate(), "gcc", FAST)
        assert not result.failed

    def test_healthy_points_are_untouched(self):
        with resilient_sweeps() as log:
            result = run_experiment(duplicate(), "gcc", FAST)
        assert not result.failed
        assert log.records == []


class TestFailureSummary:
    def test_clean_log_renders_empty(self):
        assert FailureLog().summary() == ""

    def test_summary_lists_points_and_tail(self, monkeypatch):
        def boom(org, spec, settings):
            raise SimulationInvariantError("injected defect")

        monkeypatch.setattr(experiment, "_simulate", boom)
        with resilient_sweeps() as log:
            run_experiment(duplicate(), "gcc", FAST)
        text = log.summary()
        assert "Failure summary" in text
        assert "gcc" in text
        assert "injected defect" in text
        assert "NaN" in text


class TestCliResilience:
    def test_forced_failure_yields_summary_and_exit_3(self, monkeypatch, capsys):
        def boom(org, spec, settings):
            raise SimulationInvariantError("forced design-point failure")

        monkeypatch.setattr(experiment, "_simulate", boom)
        code = main(
            [
                "figure4",
                "--benchmarks",
                "gcc",
                "--instructions",
                "1500",
                "--functional-warmup",
                "20000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "Figure 4" in captured.out  # the sweep still completed
        assert "Failure summary" in captured.err
        assert "forced design-point failure" in captured.err

    def test_clean_run_exits_zero(self, capsys):
        code = main(
            [
                "figure4",
                "--benchmarks",
                "gcc",
                "--instructions",
                "1500",
                "--functional-warmup",
                "20000",
            ]
        )
        assert code == 0
        assert "Failure summary" not in capsys.readouterr().err
