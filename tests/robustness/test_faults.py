"""End-to-end fault injection: every fault class must be caught.

Each test corrupts one live component of a real simulation the way a
simulator bug would and asserts that the matching guard rail raises a
structured, state-dumping error instead of letting the run silently
hang or produce garbage numbers.
"""

import pytest

from repro.cpu import OutOfOrderCore, ProcessorConfig
from repro.memory import MemoryConfig, MemorySystem
from repro.robustness import (
    FAULT_CLASSES,
    DeadlockError,
    RobustnessError,
    SimulationInvariantError,
    inject_corrupt_lru,
    inject_dropped_bus_grant,
    inject_lost_port_release,
    inject_stuck_mshr,
)
from repro.workloads import WorkloadGenerator, benchmark

#: Short leash so deadlock tests finish in milliseconds.
GUARDED = ProcessorConfig(watchdog_stall_cycles=20_000, audit_interval_commits=256)


def run_guarded(memory: MemorySystem, instructions: int = 4_000) -> None:
    generator = WorkloadGenerator(benchmark("gcc"), seed=1)
    core = OutOfOrderCore(GUARDED, memory)
    core.run(generator.instructions(), instructions)


def make_system(**overrides) -> MemorySystem:
    return MemorySystem(MemoryConfig(**overrides))


class TestFaultCatalog:
    def test_catalog_covers_four_classes(self):
        assert len(FAULT_CLASSES) == 4
        assert len({f.name for f in FAULT_CLASSES}) == 4
        for fault in FAULT_CLASSES:
            assert fault.description
            assert fault.caught_by


class TestStuckMshr:
    def test_watchdog_catches_stuck_fill(self):
        system = make_system()
        inject_stuck_mshr(system)
        with pytest.raises(DeadlockError) as info:
            run_guarded(system)
        assert "no instruction committed" in str(info.value)
        assert "MSHR file" in info.value.state
        assert "stalled window" in info.value.state


class TestDroppedBusGrant:
    def test_causality_invariant_catches_teleporting_fill(self):
        system = make_system()
        inject_dropped_bus_grant(system)
        with pytest.raises(SimulationInvariantError, match="acausal"):
            run_guarded(system)


class TestLostPortRelease:
    def test_held_reservation_deadlocks_and_is_caught(self):
        system = make_system()
        inject_lost_port_release(system, mode="hold")
        with pytest.raises(DeadlockError):
            run_guarded(system)

    def test_forgotten_booking_trips_grant_ledger(self):
        system = make_system()
        inject_lost_port_release(system, mode="regrant")
        with pytest.raises(SimulationInvariantError, match="per-cycle capacity"):
            run_guarded(system)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            inject_lost_port_release(make_system(), mode="gremlins")


class TestCorruptLru:
    def test_duplicate_way_caught_by_audit(self):
        system = make_system()
        system.load(0, 0)  # populate one set
        inject_corrupt_lru(system)
        with pytest.raises(SimulationInvariantError, match="audit failed"):
            run_guarded(system)

    def test_phantom_dirty_caught_by_audit(self):
        system = make_system()
        system.load(0, 0)
        inject_corrupt_lru(system, phantom_dirty=True)
        with pytest.raises(SimulationInvariantError, match="audit failed"):
            run_guarded(system)

    def test_empty_cache_cannot_be_corrupted(self):
        with pytest.raises(RuntimeError, match="warm it first"):
            inject_corrupt_lru(make_system())


class TestErrorsAreStructured:
    def test_every_guard_rail_error_is_a_robustness_error(self):
        for exc in (DeadlockError, SimulationInvariantError):
            assert issubclass(exc, RobustnessError)

    def test_unfaulted_runs_are_unaffected(self):
        # The guard rails must be silent on a healthy simulation.
        run_guarded(make_system(line_buffer=True, victim_entries=4))
