"""Retry backoff: exponential, capped, deterministically jittered."""

from repro.robustness.runner import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_RETRY_BUDGET_SECONDS,
    FailureLog,
    FailureRecord,
    retry_backoff,
)


class TestRetryBackoff:
    def test_first_attempt_never_waits(self):
        assert retry_backoff(0) == 0.0
        assert retry_backoff(1) == 0.0

    def test_deterministic_for_same_seed_and_attempt(self):
        a = retry_backoff(3, seed="1~ duplicate 32K/gcc")
        b = retry_backoff(3, seed="1~ duplicate 32K/gcc")
        assert a == b

    def test_different_seeds_desynchronize(self):
        delays = {retry_backoff(2, seed=f"point-{i}") for i in range(8)}
        assert len(delays) > 1  # jitter spreads the herd

    def test_jitter_stays_inside_the_band(self):
        for attempt in (2, 3, 4):
            nominal = min(
                DEFAULT_BACKOFF_CAP,
                DEFAULT_BACKOFF_BASE * 2.0 ** (attempt - 2),
            )
            for seed in ("a", "b", "c"):
                delay = retry_backoff(attempt, seed=seed)
                assert 0.75 * nominal <= delay < 1.25 * nominal

    def test_exponential_growth_until_the_cap(self):
        base, cap = 1.0, 4.0
        # attempt 2 -> ~1, attempt 3 -> ~2, attempt 4 -> ~4, attempt 9 -> ~4
        assert retry_backoff(2, base=base, cap=cap, seed="s") < retry_backoff(
            3, base=base, cap=cap, seed="s"
        ) * 1.25 / 0.75
        capped = retry_backoff(9, base=base, cap=cap, seed="s")
        assert capped < 1.25 * cap


class TestFailureLogBackoff:
    def test_log_delegates_with_its_own_shape(self):
        log = FailureLog(backoff_base=0.2, backoff_cap=0.3)
        delay = log.backoff(4, seed="x")
        assert delay == retry_backoff(4, base=0.2, cap=0.3, seed="x")
        assert delay < 1.25 * 0.3

    def test_default_retry_budget(self):
        assert FailureLog().retry_budget_seconds == DEFAULT_RETRY_BUDGET_SECONDS

    def test_timeout_records_count_as_gaps(self):
        log = FailureLog()
        log.record(
            FailureRecord(
                label="p1",
                workload="gcc",
                error_type="DeadlineExceededError",
                message="overran",
                attempts=1,
                resolution="timeout",
            )
        )
        log.record(
            FailureRecord(
                label="p2",
                workload="gcc",
                error_type="SimulationInvariantError",
                message="boom",
                attempts=2,
                resolution="gap",
            )
        )
        assert len(log.gaps) == 2
        assert [r.label for r in log.timeouts] == ["p1"]
        summary = log.summary()
        assert "1 of them wall-clock timeouts" in summary
