"""Graceful shutdown: the controller, the flag, and SweepInterrupted."""

import io
import signal

import pytest

from repro.robustness.shutdown import (
    ShutdownController,
    SweepInterrupted,
    active_controller,
    shutdown_requested,
)


class TestSweepInterrupted:
    def test_carries_progress_counts(self):
        stop = SweepInterrupted(7, 3)
        assert stop.completed == 7
        assert stop.remaining == 3
        assert "7 design point(s) finished" in str(stop)
        assert "3 not started" in str(stop)
        assert stop.checkpoint_path is None


class TestController:
    def test_inactive_by_default(self):
        assert active_controller() is None
        assert not shutdown_requested()

    def test_context_installs_and_restores(self):
        with ShutdownController(signals=()) as controller:
            assert active_controller() is controller
            assert not shutdown_requested()
            controller.request()
            assert shutdown_requested()
        assert active_controller() is None
        assert not shutdown_requested()

    def test_first_signal_flips_flag_and_tells_operator(self):
        stream = io.StringIO()
        controller = ShutdownController(signals=(), stream=stream)
        with controller:
            controller._handle(signal.SIGINT, None)
            assert controller.requested()
        message = stream.getvalue()
        assert "SIGINT" in message
        assert "checkpoint" in message
        assert "signal again to abort hard" in message

    def test_second_signal_aborts_hard(self):
        stream = io.StringIO()
        controller = ShutdownController(signals=(), stream=stream)
        with controller:
            controller._handle(signal.SIGTERM, None)
            with pytest.raises(KeyboardInterrupt):
                controller._handle(signal.SIGTERM, None)

    def test_real_handlers_installed_on_main_thread(self):
        previous = signal.getsignal(signal.SIGTERM)
        with ShutdownController() as controller:
            assert signal.getsignal(signal.SIGTERM) == controller._handle
            assert signal.getsignal(signal.SIGINT) == controller._handle
        assert signal.getsignal(signal.SIGTERM) == previous


class TestEngineIntegration:
    def test_serial_batch_stops_between_points(self):
        from repro.core.experiment import ExperimentSettings
        from repro.engine.executor import ExecutionPlan, configure_engine

        fast = ExperimentSettings(
            instructions=1_500, timing_warmup=300, functional_warmup=20_000
        )
        from repro.core.organizations import duplicate

        previous = configure_engine(jobs=1, store=None)
        try:
            with ShutdownController(signals=()) as controller:
                controller.request()  # requested before the batch starts
                plan = ExecutionPlan()
                plan.add(duplicate(32 * 1024), "gcc", fast)
                plan.add(duplicate(32 * 1024), "li", fast)
                with pytest.raises(SweepInterrupted) as excinfo:
                    plan.execute()
                assert excinfo.value.completed == 0
                assert excinfo.value.remaining == 2
        finally:
            configure_engine(jobs=previous[0], store=previous[1])
