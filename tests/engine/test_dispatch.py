"""Cost model, chunk planning, dispatch profiling, and the persistent pool."""

import multiprocessing

import pytest

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import banked, duplicate, ideal_ports
from repro.engine.dispatch import (
    CHUNK_MAX_ENV,
    CHUNKS_PER_WORKER_ENV,
    CostModel,
    DispatchProfile,
    _budget_proxy,
    plan_chunks,
)
from repro.engine.executor import Engine, ExecutionPlan
from repro.engine.key import ExperimentKey
from repro.engine.store import ResultStore
from repro.workloads.catalog import benchmark

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched state reaches workers only under fork",
)


def _key(workload="gcc", organization=None, settings=FAST):
    return ExperimentKey(organization or duplicate(), workload, settings)


def _points(*names, organization=None, settings=FAST):
    return [
        (_key(name, organization, settings), benchmark(name)) for name in names
    ]


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_empty_model_falls_back_to_budget_proxy(self):
        key = _key()
        assert CostModel().estimate(key) == _budget_proxy(key)

    def test_budget_proxy_weights_timing_over_warmup(self):
        light = _key(settings=ExperimentSettings(
            instructions=100, timing_warmup=0, functional_warmup=10_000))
        heavy = _key(settings=ExperimentSettings(
            instructions=10_000, timing_warmup=0, functional_warmup=100))
        # Same total instruction count either way; the timing phase
        # simulates the pipeline and must dominate the estimate.
        assert _budget_proxy(heavy) > _budget_proxy(light)

    def test_exact_history_wins(self):
        key = _key()
        model = CostModel.from_records([
            {"points": [{
                "digest": key.digest[:12], "workload": key.workload,
                "cycles": 9_999, "instructions": 1_500,
            }]},
        ])
        assert model.estimate(key) == 9_999.0

    def test_newest_record_wins_per_digest(self):
        key = _key()
        row = {"digest": key.digest[:12], "workload": key.workload,
               "instructions": 1_500}
        model = CostModel.from_records([
            {"points": [dict(row, cycles=1_000)]},
            {"points": [dict(row, cycles=5_000)]},
        ])
        assert model.estimate(key) == 5_000.0

    def test_workload_history_scales_the_proxy(self):
        seen = _key()
        unseen = _key(settings=ExperimentSettings(
            instructions=3_000, timing_warmup=600, functional_warmup=40_000))
        model = CostModel.from_records([
            {"points": [{
                "digest": seen.digest[:12], "workload": "gcc",
                "cycles": 3_000, "instructions": 1_500,  # CPI = 2.0
            }]},
        ])
        assert model.estimate(unseen) == 2.0 * _budget_proxy(unseen)

    def test_malformed_rows_are_skipped(self):
        key = _key()
        model = CostModel.from_records([
            {"points": [
                {"digest": key.digest[:12], "cycles": 0},       # no cycles
                {"cycles": 1_000, "instructions": 100},         # no digest
                {"digest": "other", "cycles": None},            # null cycles
            ]},
            {},                                                 # no points
        ])
        assert model.estimate(key) == _budget_proxy(key)

    def test_for_engine_without_store_is_empty(self):
        key = _key()
        model = CostModel.for_engine(Engine())
        assert model.estimate(key) == _budget_proxy(key)

    def test_for_engine_reads_ledger_history(self, tmp_path):
        engine = Engine(store=ResultStore(tmp_path / "cache"))
        plan = ExecutionPlan(engine)
        key = plan.add(duplicate(), "gcc", FAST)
        plan.execute()
        model = CostModel.for_engine(engine)
        cycles = plan.resolve(key).cycles
        assert model.estimate(key) == float(cycles)

    def test_for_engine_survives_a_broken_ledger(self):
        class BrokenStore:
            def ledger(self):
                raise OSError("ledger unreadable")

        engine = Engine()
        engine.store = BrokenStore()
        key = _key()
        assert CostModel.for_engine(engine).estimate(key) == _budget_proxy(key)


# ---------------------------------------------------------------------------
# Chunk planning
# ---------------------------------------------------------------------------


class TestPlanChunks:
    def test_empty_batch_plans_nothing(self):
        assert plan_chunks([], lambda key: 1.0, workers=2) == []

    def test_every_point_lands_in_exactly_one_chunk(self):
        points = _points("gcc", "tomcatv", "li", "database", "compress")
        chunks = plan_chunks(points, lambda key: 1.0, workers=2)
        flat = [key.digest for chunk in chunks for key, _ in chunk]
        assert sorted(flat) == sorted(key.digest for key, _ in points)
        assert len(flat) == len(set(flat))

    def test_plan_is_deterministic(self):
        points = _points("gcc", "tomcatv", "li", "database")
        first = plan_chunks(points, _est_by_workload, workers=2)
        second = plan_chunks(list(reversed(points)), _est_by_workload, workers=2)
        digests = lambda chunks: [  # noqa: E731
            [key.digest for key, _ in chunk] for chunk in chunks
        ]
        assert digests(first) == digests(second)

    def test_most_expensive_point_leads_the_plan(self):
        points = _points("gcc", "tomcatv", "li")
        chunks = plan_chunks(points, _est_by_workload, workers=2)
        lead = chunks[0][0][0]
        assert lead.workload == "tomcatv"  # highest estimate below

    def test_expensive_head_is_isolated_from_the_cheap_tail(self):
        points = _points("gcc", "tomcatv", "li", "database", "compress")

        def estimate(key):
            return 1_000_000.0 if key.workload == "tomcatv" else 1.0

        chunks = plan_chunks(points, estimate, workers=2)
        assert [key.workload for key, _ in chunks[0]] == ["tomcatv"]

    def test_chunk_max_env_caps_chunk_size(self, monkeypatch):
        monkeypatch.setenv(CHUNK_MAX_ENV, "1")
        points = _points("gcc", "tomcatv", "li")
        chunks = plan_chunks(points, lambda key: 1.0, workers=1)
        assert all(len(chunk) == 1 for chunk in chunks)

    def test_chunks_per_worker_env_raises_chunk_count(self, monkeypatch):
        points = _points("gcc", "tomcatv", "li", "database", "compress")
        coarse = plan_chunks(points, lambda key: 1.0, workers=1)
        monkeypatch.setenv(CHUNKS_PER_WORKER_ENV, str(len(points)))
        fine = plan_chunks(points, lambda key: 1.0, workers=1)
        assert len(fine) >= len(coarse)
        assert all(len(chunk) == 1 for chunk in fine)

    def test_nonsense_env_values_fall_back_to_defaults(self, monkeypatch):
        points = _points("gcc", "tomcatv", "li")
        baseline = plan_chunks(points, lambda key: 1.0, workers=2)
        for value in ("0", "-3", "banana", ""):
            monkeypatch.setenv(CHUNK_MAX_ENV, value)
            monkeypatch.setenv(CHUNKS_PER_WORKER_ENV, value)
            assert plan_chunks(points, lambda key: 1.0, workers=2) == baseline


def _est_by_workload(key):
    return {"gcc": 50.0, "tomcatv": 400.0, "li": 10.0, "database": 50.0}.get(
        key.workload, 1.0
    )


# ---------------------------------------------------------------------------
# Dispatch profile
# ---------------------------------------------------------------------------


class TestDispatchProfile:
    def test_first_chunk_is_not_a_steal(self):
        profile = DispatchProfile(points=4, workers=2)
        profile.chunk_started("w1")
        assert profile.total_steals == 0
        profile.chunk_started("w1")
        profile.chunk_started("w1")
        profile.chunk_started("w2")
        assert profile.total_steals == 2
        assert profile.worker_stats("w1").chunks == 3
        assert profile.worker_stats("w2").steals == 0

    def test_utilization_is_busy_over_wall_times_workers(self):
        profile = DispatchProfile(points=2, workers=2)
        profile.point_done("w1", 1.0)
        profile.point_done("w2", 1.0)
        profile.wall_seconds = 2.0
        assert profile.utilization() == pytest.approx(0.5)

    def test_utilization_is_clamped_and_safe_on_zero_wall(self):
        profile = DispatchProfile(points=1, workers=1)
        assert profile.utilization() == 0.0
        profile.point_done("w1", 100.0)
        profile.wall_seconds = 1.0
        assert profile.utilization() == 1.0

    def test_as_dict_round_trips_worker_stats(self):
        profile = DispatchProfile(points=3, workers=2)
        profile.chunks = 2
        profile.chunk_started("w1")
        profile.point_done("w1", 0.25)
        payload = profile.as_dict()
        assert payload["points"] == 3
        assert payload["chunks"] == 2
        assert payload["worker_stats"]["w1"] == {
            "points": 1, "chunks": 1, "busy_seconds": 0.25, "steals": 0,
        }
        for field in ("pool_reused", "wall_seconds", "utilization",
                      "fallback_points", "timeout_points", "interrupted"):
            assert field in payload


# ---------------------------------------------------------------------------
# The persistent pool
# ---------------------------------------------------------------------------


@pytest.fixture
def engine():
    eng = Engine(jobs=2)
    yield eng
    eng.shutdown_pool()


def _run_batch(eng, names, settings=FAST):
    plan = ExecutionPlan(eng)
    keys = [plan.add(duplicate(), name, settings) for name in names]
    plan.execute()
    return keys, plan


class TestPersistentPool:
    def test_fingerprint_tracks_jobs_telemetry_and_env(self, monkeypatch):
        eng = Engine(jobs=2)
        base = eng._pool_fingerprint(False)
        assert eng._pool_fingerprint(True) != base
        eng.jobs = 4
        assert eng._pool_fingerprint(False) != base
        eng.jobs = 2
        assert eng._pool_fingerprint(False) == base
        monkeypatch.setenv("REPRO_CHUNK_MAX", "7")
        assert eng._pool_fingerprint(False) != base
        monkeypatch.delenv("REPRO_CHUNK_MAX")
        monkeypatch.setenv("UNRELATED_VAR", "7")
        assert eng._pool_fingerprint(False) == base

    def test_pool_survives_across_batches(self, engine):
        _run_batch(engine, ["gcc", "tomcatv"])
        assert engine.last_dispatch.pool_reused is False
        first_pool = engine._pool.pool
        settings = ExperimentSettings(
            instructions=2_000, timing_warmup=300, functional_warmup=20_000
        )
        _run_batch(engine, ["gcc", "tomcatv"], settings)
        assert engine.last_dispatch.pool_reused is True
        assert engine._pool.pool is first_pool

    def test_env_change_invalidates_the_pool(self, engine, monkeypatch):
        _run_batch(engine, ["gcc", "tomcatv"])
        monkeypatch.setenv("REPRO_CHUNKS_PER_WORKER", "2")
        settings = ExperimentSettings(
            instructions=2_000, timing_warmup=300, functional_warmup=20_000
        )
        _run_batch(engine, ["gcc", "tomcatv"], settings)
        assert engine.last_dispatch.pool_reused is False

    def test_broken_pool_is_replaced(self, engine):
        _run_batch(engine, ["gcc", "tomcatv"])
        engine._pool.broken = True
        stale = engine._pool.pool
        settings = ExperimentSettings(
            instructions=2_000, timing_warmup=300, functional_warmup=20_000
        )
        keys, plan = _run_batch(engine, ["gcc", "tomcatv"], settings)
        assert engine.last_dispatch.pool_reused is False
        assert engine._pool.pool is not stale
        assert all(not plan.resolve(key).failed for key in keys)

    def test_shutdown_pool_is_idempotent(self, engine):
        _run_batch(engine, ["gcc", "tomcatv"])
        assert engine._pool is not None
        engine.shutdown_pool()
        assert engine._pool is None
        engine.shutdown_pool()  # second call is a no-op

    def test_profile_accounts_for_every_point(self, engine):
        keys, _plan = _run_batch(engine, ["gcc", "tomcatv", "li"])
        profile = engine.last_dispatch
        assert profile.points == len(keys)
        stats = profile.as_dict()["worker_stats"]
        assert sum(s["points"] for s in stats.values()) == len(keys)
        assert sum(s["chunks"] for s in stats.values()) == profile.chunks
        assert profile.fallback_points == 0

    def test_parallel_run_never_creates_a_manager(self, engine, monkeypatch):
        """The no-telemetry path must not pay for a Manager process."""

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "multiprocessing.Manager() created on the no-telemetry path"
            )

        monkeypatch.setattr(multiprocessing, "Manager", forbidden)
        keys, plan = _run_batch(engine, ["gcc", "tomcatv"])
        assert all(not plan.resolve(key).failed for key in keys)


# ---------------------------------------------------------------------------
# Worker-state prewarm
# ---------------------------------------------------------------------------


class TestPrewarm:
    def test_reference_backend_skips_prewarm(self, monkeypatch):
        from repro import kernel
        from repro.kernel import tracecache

        def forbidden(*args, **kwargs):
            raise AssertionError("prewarm ran under the reference backend")

        monkeypatch.setattr(tracecache, "artifacts_for", forbidden)
        profile = DispatchProfile(points=2, workers=2)
        with kernel.use_backend("reference"):
            Engine(jobs=2)._prewarm_worker_state(
                _points("gcc", "tomcatv"), profile
            )
        assert profile.prewarm_seconds == 0.0

    @FORK_ONLY
    def test_fast_backend_prewarms_each_identity_once(self, monkeypatch):
        from repro import kernel
        from repro.kernel import tracecache

        warmed = []

        class _Artifacts:
            def __init__(self, identity):
                self._identity = identity

            def warm_references(self):
                warmed.append(self._identity)

        monkeypatch.setattr(
            tracecache,
            "artifacts_for",
            lambda spec, seed, warmup: _Artifacts((spec.name, seed, warmup)),
        )
        # Two workloads, one of them twice (same identity), one with
        # warm-up disabled (nothing to prewarm).
        cold = ExperimentSettings(
            instructions=500, timing_warmup=100, functional_warmup=0
        )
        points = (
            _points("gcc", "tomcatv")
            + _points("gcc", organization=banked(banks=4))
            + _points("li", settings=cold)
        )
        profile = DispatchProfile(points=len(points), workers=2)
        with kernel.use_backend("fast"):
            Engine(jobs=2)._prewarm_worker_state(points, profile)
        assert sorted(warmed) == [
            ("gcc", FAST.seed, FAST.functional_warmup),
            ("tomcatv", FAST.seed, FAST.functional_warmup),
        ]
        assert profile.prewarm_seconds >= 0.0

    def test_prewarm_failure_never_breaks_the_batch(self, monkeypatch):
        from repro import kernel
        from repro.kernel import tracecache

        def explode(*args, **kwargs):
            raise RuntimeError("artifact generation failed")

        monkeypatch.setattr(tracecache, "artifacts_for", explode)
        profile = DispatchProfile(points=1, workers=2)
        with kernel.use_backend("fast"):
            Engine(jobs=2)._prewarm_worker_state(_points("gcc"), profile)


# ---------------------------------------------------------------------------
# Parallel identity spot checks (the hypothesis suite goes deeper)
# ---------------------------------------------------------------------------


class TestParallelIdentity:
    def test_chunked_dispatch_matches_serial_results(self, tmp_path):
        organizations = [duplicate(), banked(banks=4), ideal_ports(ports=2)]
        names = ("gcc", "tomcatv", "li")
        serial = ExecutionPlan(Engine(jobs=1))
        serial_keys = [
            serial.add(org, name, FAST)
            for org in organizations for name in names
        ]
        serial.execute()

        eng = Engine(jobs=2, store=ResultStore(tmp_path / "cache"))
        try:
            parallel = ExecutionPlan(eng)
            parallel_keys = [
                parallel.add(org, name, FAST)
                for org in organizations for name in names
            ]
            parallel.execute()
            assert serial_keys == parallel_keys
            for key in serial_keys:
                assert parallel.resolve(key).ipc == serial.resolve(key).ipc
        finally:
            eng.shutdown_pool()
