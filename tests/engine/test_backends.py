"""Backend parity: the fast kernel must be bit-identical to reference.

Every figure grid plus the headline numbers are computed once per
backend (with the engine memo, the disk store, and the trace cache all
cleared in between -- a shared cache would make the comparison
vacuous) and compared for **exact** equality: same floats, same ints,
same structure.  This is the contract that lets backends share the
result cache and the golden snapshots.
"""

import dataclasses

import pytest

from repro import kernel
from repro.core import figures
from repro.core.experiment import ExperimentSettings, _simulate
from repro.core import organizations
from repro.engine.executor import get_engine
from repro.kernel import tracecache
from repro.workloads.catalog import benchmark

#: Tiny budget: parity must hold at every budget, so use one that keeps
#: the double simulation of six grids affordable.
SETTINGS = ExperimentSettings(
    instructions=1_000, timing_warmup=200, functional_warmup=10_000
)

BENCHMARKS = ("gcc", "database")

#: name -> zero-argument callable producing that figure's full result
#: structure at the test budget.  Grids are trimmed but keep every
#: organization style (ports, banks, line buffer, duplicate, DRAM).
GRIDS = {
    "figure4": lambda: figures.figure4(
        BENCHMARKS, ports=(1, 2, 4), hit_times=(1, 3), settings=SETTINGS
    ),
    "figure5": lambda: figures.figure5(
        BENCHMARKS, bank_counts=(1, 4, 128), hit_times=(1, 3), settings=SETTINGS
    ),
    "figure6": lambda: figures.figure6(
        BENCHMARKS, hit_times=(1, 2), settings=SETTINGS
    ),
    "figure7": lambda: figures.figure7(
        BENCHMARKS, dram_hit_times=(6, 8), settings=SETTINGS
    ),
    "figure8": lambda: figures.figure8(
        BENCHMARKS,
        sizes=(4096, 32768, 262144),
        hit_times=(1, 2),
        settings=SETTINGS,
    ),
    "figure9": lambda: figures.figure9(
        BENCHMARKS, cycle_times=(10.0, 30.0), settings=SETTINGS
    ),
    "headlines": lambda: figures.headline_numbers(BENCHMARKS, settings=SETTINGS),
}


def _fresh_run(backend: str, compute):
    """Run ``compute`` on ``backend`` with every cache layer cold."""
    get_engine().memo.clear()
    tracecache.clear()
    with kernel.use_backend(backend):
        return compute()


class TestFigureParity:
    @pytest.mark.parametrize("name", sorted(GRIDS))
    def test_grid_identical_across_backends(self, name):
        compute = GRIDS[name]
        reference = _fresh_run("reference", compute)
        fast = _fresh_run("fast", compute)
        assert reference == fast


class TestPointParity:
    @pytest.mark.parametrize(
        "org",
        [
            organizations.ideal_ports(ports=2),
            organizations.banked(banks=8),
            organizations.duplicate(16384, 1, True),
            organizations.dram_cache(line_buffer=True),
        ],
        ids=("ports", "banked", "duplicate+lb", "dram+lb"),
    )
    def test_full_result_identical(self, org):
        spec = benchmark("su2cor")
        results = {}
        for name in kernel.BACKEND_NAMES:
            tracecache.clear()
            with kernel.use_backend(name):
                result = _simulate(org, spec, SETTINGS)
            assert result.backend == name
            payload = dataclasses.asdict(result)
            payload.pop("backend")  # provenance, deliberately differs
            results[name] = payload
        assert results["reference"] == results["fast"]

    @pytest.mark.parametrize(
        "org",
        [
            organizations.ideal_ports(ports=2),
            organizations.banked(banks=2),
            organizations.duplicate(16384, 1, True),
            organizations.dram_cache(line_buffer=True),
        ],
        ids=("ports", "banked", "duplicate+lb", "dram+lb"),
    )
    @pytest.mark.parametrize("every", (128, 1_000, 5_000))
    def test_counter_series_identical(self, org, every):
        """Interval counter series are bit-identical across backends.

        Intervals chosen to exercise a non-multiple tail (128), the
        exact-window case (1_000), and one longer than the whole
        measured region (5_000, a single partial row).
        """
        from repro.observability import counters

        spec = benchmark("su2cor")
        series = {}
        for name in kernel.BACKEND_NAMES:
            tracecache.clear()
            with counters.sampling(every), kernel.use_backend(name):
                result = _simulate(org, spec, SETTINGS)
            assert result.counters is not None
            assert result.counters["interval"] == every
            series[name] = result.counters
        assert series["reference"] == series["fast"]
        # The sampled intervals must also tile the measured window
        # exactly: deltas sum back to the whole-run aggregates.
        cols = counters.columns_of(series["reference"])
        assert sum(cols["instructions"]) == SETTINGS.instructions
        assert sum(cols["partial"]) == (
            1 if SETTINGS.instructions % every else 0
        )

    def test_counter_series_identical_through_asdict(self):
        """The counters field rides full-result parity like any other."""
        from repro.observability import counters

        spec = benchmark("gcc")
        org = organizations.banked(banks=4)
        results = {}
        for name in kernel.BACKEND_NAMES:
            tracecache.clear()
            with counters.sampling(300), kernel.use_backend(name):
                result = _simulate(org, spec, SETTINGS)
            payload = dataclasses.asdict(result)
            payload.pop("backend")
            results[name] = payload
        assert results["reference"] == results["fast"]
        assert results["reference"]["counters"] is not None

    def test_core_run_backend_argument(self):
        spec = benchmark("gcc")
        from repro.cpu.config import ProcessorConfig
        from repro.cpu.core import OutOfOrderCore
        from repro.memory.hierarchy import MemorySystem

        payloads = {}
        for name in kernel.BACKEND_NAMES:
            tracecache.clear()
            backend = kernel.get_backend(name)
            org = organizations.ideal_ports()
            memory = MemorySystem(org.memory_config(SETTINGS.backside))
            trace = backend.prepare(spec, memory, SETTINGS)
            core = OutOfOrderCore(ProcessorConfig(), memory)
            result = core.run(
                trace,
                SETTINGS.instructions,
                warmup_instructions=SETTINGS.timing_warmup,
                backend=name,
            )
            assert result.backend == name
            payload = dataclasses.asdict(result)
            payload.pop("backend")
            payloads[name] = payload
        assert payloads["reference"] == payloads["fast"]
