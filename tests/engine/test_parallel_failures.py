"""Failure paths of the chunked parallel executor.

Every scenario here must land exactly where a serial run would: a
crashed worker degrades its chunk to in-parent execution, a wedged
point becomes the same timeout gap the serial deadline produces, a
shutdown request leaves the same checkpoint a serial interrupt leaves,
and out-of-order completion marks resume just as cleanly as ordered
ones.
"""

import math
import multiprocessing
import os
import random
import threading
import time

import pytest

from repro.core import experiment
from repro.core.experiment import ExperimentSettings
from repro.core.organizations import duplicate
from repro.engine.checkpoint import SweepCheckpoint, list_checkpoints
from repro.engine.executor import Engine, ExecutionPlan
from repro.engine.key import ExperimentKey
from repro.engine.store import ResultStore
from repro.robustness.chaos import CHAOS_ENV
from repro.robustness.deadline import POINT_GRACE_ENV, POINT_TIMEOUT_ENV
from repro.robustness.runner import resilient_sweeps
from repro.robustness.shutdown import ShutdownController, SweepInterrupted

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched failures reach workers only under fork",
)

NAMES = ("gcc", "tomcatv", "li", "compress")


@pytest.fixture(autouse=True)
def fresh_memo():
    experiment.clear_cache()
    yield
    experiment.clear_cache()


@pytest.fixture
def engine():
    eng = Engine(jobs=2)
    yield eng
    eng.shutdown_pool()


class TestWorkerCrashMidChunk:
    @FORK_ONLY
    def test_dead_worker_degrades_to_in_parent_execution(
        self, engine, monkeypatch
    ):
        """``os._exit`` mid-chunk (a segfault stand-in): the surviving
        points resolve in-parent and match a serial run exactly."""
        serial = ExecutionPlan(Engine(jobs=1))
        serial_keys = [serial.add(duplicate(), n, FAST) for n in NAMES]
        serial.execute()
        expected = [serial.resolve(key).ipc for key in serial_keys]

        parent = os.getpid()
        real = experiment._simulate

        def dying(org, spec, settings):
            if spec.name == "tomcatv" and os.getpid() != parent:
                os._exit(9)  # hard death: no exception, no cleanup
            return real(org, spec, settings)

        monkeypatch.setattr(experiment, "_simulate", dying)
        experiment.clear_cache()
        plan = ExecutionPlan(engine)
        keys = [plan.add(duplicate(), n, FAST) for n in NAMES]
        plan.execute()

        assert keys == serial_keys
        assert [plan.resolve(key).ipc for key in keys] == expected
        profile = engine.last_dispatch
        assert profile.fallback_points > 0
        assert engine._pool is None or engine._pool.broken

    @FORK_ONLY
    def test_crash_with_failure_log_matches_serial_record_order(
        self, engine, monkeypatch
    ):
        """When the in-parent fallback also fails, failure-log records
        appear in plan order -- exactly as a serial sweep logs them."""
        from repro.robustness import SimulationInvariantError

        parent = os.getpid()

        def hostile(org, spec, settings):
            if os.getpid() != parent:
                os._exit(9)
            raise SimulationInvariantError(f"injected for {spec.name}")

        monkeypatch.setattr(experiment, "_simulate", hostile)
        plan = ExecutionPlan(engine)
        keys = [plan.add(duplicate(), n, FAST) for n in NAMES]
        with resilient_sweeps() as log:
            plan.execute()
        assert all(plan.resolve(key).failed for key in keys)
        # One gap record per point, ordered like the serial loop.
        logged = [record.workload for record in log.records]
        assert logged == list(NAMES)
        assert all(r.resolution == "gap" for r in log.records)


class TestTimeoutInsideStolenChunk:
    def test_wedged_point_in_a_multi_point_chunk_gaps_alone(
        self, engine, monkeypatch
    ):
        """The chunk protocol must not widen the blast radius: one
        sleeping point inside a stolen multi-point chunk times out, its
        chunk-mates still resolve."""
        # Generous budget: healthy points must never trip the deadline
        # themselves, even on a loaded CI box -- this test is about the
        # wedge backstop, not cooperative timeouts.
        monkeypatch.setenv(CHAOS_ENV, "sleep=30:gcc")
        monkeypatch.setenv(POINT_TIMEOUT_ENV, "1.5")
        monkeypatch.setenv(POINT_GRACE_ENV, "0.5")
        # Two workers x one chunk each: every chunk holds two points, so
        # the sleeper is guaranteed to share a chunk.
        monkeypatch.setenv("REPRO_CHUNKS_PER_WORKER", "1")
        started = time.monotonic()
        with resilient_sweeps() as log:
            plan = ExecutionPlan(engine)
            keys = {n: plan.add(duplicate(), n, FAST) for n in NAMES}
            results = plan.execute()
        elapsed = time.monotonic() - started
        assert results[keys["gcc"]].failed
        assert math.isnan(results[keys["gcc"]].ipc)
        for name in ("tomcatv", "li", "compress"):
            assert not results[keys[name]].failed
        assert [r.resolution for r in log.records] == ["timeout"]
        assert "killed by the parent" in log.records[0].message
        assert engine.last_dispatch.timeout_points == 1
        assert elapsed < 30.0  # nobody waited out the sleep

    def test_multi_point_chunks_were_actually_planned(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNKS_PER_WORKER", "1")
        plan = ExecutionPlan(engine)
        for name in NAMES:
            plan.add(duplicate(), name, FAST)
        plan.execute()
        profile = engine.last_dispatch
        assert profile.chunks < profile.points  # at least one multi-point chunk


class TestShutdownMidBatch:
    def test_sigint_during_out_of_order_completion_keeps_a_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A shutdown request mid-drain raises ``SweepInterrupted``, and
        the checkpoint only marks points whose results were absorbed --
        the same contract the serial loop keeps."""
        monkeypatch.setenv(CHAOS_ENV, "sleep=1.0")
        store = ResultStore(tmp_path / "cache")
        engine = Engine(jobs=2, store=store)
        try:
            with ShutdownController() as controller:
                timer = threading.Timer(0.4, controller.request)
                timer.daemon = True
                timer.start()
                plan = ExecutionPlan(engine)
                for name in NAMES:
                    plan.add(duplicate(), name, FAST)
                try:
                    with pytest.raises(SweepInterrupted) as stop:
                        plan.execute()
                finally:
                    timer.cancel()
        finally:
            engine.shutdown_pool()
        assert stop.value.completed + stop.value.remaining == len(NAMES)
        assert stop.value.checkpoint_path is not None
        checkpoints = list_checkpoints(store.root)
        assert len(checkpoints) == 1
        status = checkpoints[0].status()
        assert status["planned"] == len(NAMES)
        assert 0 < status["completed"] < len(NAMES)
        # Checkpoint marks must never outrun the store: every completed
        # mark is backed by a loadable result.
        assert status["completed"] <= store.info()["entries"]
        assert engine.last_dispatch.interrupted is True

    def test_interrupted_sweep_resumes_to_the_serial_answer(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "sleep=1.0")
        store = ResultStore(tmp_path / "cache")
        engine = Engine(jobs=2, store=store)
        try:
            with ShutdownController() as controller:
                timer = threading.Timer(0.4, controller.request)
                timer.daemon = True
                timer.start()
                plan = ExecutionPlan(engine)
                for name in NAMES:
                    plan.add(duplicate(), name, FAST)
                try:
                    with pytest.raises(SweepInterrupted):
                        plan.execute()
                finally:
                    timer.cancel()
        finally:
            engine.shutdown_pool()

        monkeypatch.delenv(CHAOS_ENV)
        experiment.clear_cache()
        serial = ExecutionPlan(Engine(jobs=1))
        serial_keys = [serial.add(duplicate(), n, FAST) for n in NAMES]
        serial.execute()

        experiment.clear_cache()
        resumed_engine = Engine(jobs=2, store=ResultStore(tmp_path / "cache"))
        try:
            resumed = ExecutionPlan(resumed_engine)
            resumed_keys = [resumed.add(duplicate(), n, FAST) for n in NAMES]
            resumed.execute()
            assert resumed_keys == serial_keys
            for key in serial_keys:
                assert resumed.resolve(key).ipc == serial.resolve(key).ipc
        finally:
            resumed_engine.shutdown_pool()
        # The completed sweep cleaned its checkpoint up.
        assert list_checkpoints(tmp_path / "cache") == []


class TestOutOfOrderCheckpointMarks:
    def test_marks_in_any_order_resume_identically(self, tmp_path):
        """Parallel absorption appends marks in completion order, not
        plan order; ``begin`` must count them all the same."""
        keys = [
            ExperimentKey(duplicate(), name, FAST) for name in NAMES
        ]
        ordered = SweepCheckpoint.for_plan(tmp_path / "a", keys)
        assert ordered.begin(keys) == 0
        for key in keys:
            ordered.mark(key, "simulated")

        shuffled = SweepCheckpoint.for_plan(tmp_path / "b", keys)
        assert shuffled.begin(keys) == 0
        scrambled = list(keys)
        random.Random(42).shuffle(scrambled)
        for key in scrambled:
            shuffled.mark(key, "simulated")

        assert ordered.completed() == shuffled.completed()
        assert ordered.begin(keys) == len(keys)
        assert shuffled.begin(keys) == len(keys)
        assert ordered.status()["remaining"] == 0
        assert shuffled.status()["remaining"] == 0

    def test_partial_out_of_order_marks_report_the_right_remainder(
        self, tmp_path
    ):
        keys = [ExperimentKey(duplicate(), name, FAST) for name in NAMES]
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        # The last-planned point completes first, the first never does.
        checkpoint.mark(keys[-1], "simulated")
        checkpoint.mark(keys[2], "recovered")
        checkpoint.mark(keys[1], "gap")  # gaps re-execute on resume
        status = checkpoint.status()
        assert status["completed"] == 2
        assert status["remaining"] == 2
        assert checkpoint.begin(keys) == 2
