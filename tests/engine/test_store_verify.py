"""Store/ledger self-healing: `repro cache verify` and torn appends."""

import json
from pathlib import Path

import pytest

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import duplicate
from repro.cpu.result import SimulationResult
from repro.engine.key import ExperimentKey
from repro.engine.ledger import RunLedger, build_record
from repro.engine.store import SCHEMA_VERSION, ResultStore
from repro.robustness.chaos import CORRUPTION_MODES, corrupt_entry, tear_trailing_line

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


def _key(workload: str = "gcc") -> ExperimentKey:
    return ExperimentKey(duplicate(32 * 1024, line_buffer=True), workload, FAST)


def _result() -> SimulationResult:
    return SimulationResult(instructions=1_000, cycles=800)


def _store_with_entries(tmp_path, workloads=("gcc", "li")) -> ResultStore:
    store = ResultStore(tmp_path / "cache")
    for name in workloads:
        assert store.save(_key(name), _result())
    return store


class TestVerifyHealthy:
    def test_clean_store_reports_no_damage(self, tmp_path):
        store = _store_with_entries(tmp_path)
        report = store.verify()
        assert report["scanned"] == 2
        assert report["ok"] == 2
        assert report["quarantined"] == []
        assert report["ledger"] == {
            "torn": False,
            "healed": False,
            "fragment_path": None,
        }

    def test_empty_store_verifies(self, tmp_path):
        report = ResultStore(tmp_path / "nothing").verify()
        assert report["scanned"] == 0
        assert report["quarantined"] == []


class TestVerifyDamage:
    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_each_corruption_mode_is_quarantined(self, tmp_path, mode):
        store = _store_with_entries(tmp_path, workloads=("gcc",))
        entry = store._entry_paths()[0]
        corrupt_entry(entry, mode)
        report = store.verify()
        assert report["ok"] == 0
        assert len(report["quarantined"]) == 1
        item = report["quarantined"][0]
        assert item["path"] == str(entry)
        assert item["moved_to"].startswith(str(store.quarantine_dir))
        # The damaged file left the load path entirely.
        assert not entry.exists()
        assert store._entry_paths() == []
        assert store.load(_key("gcc")) is None  # a miss, not an error

    def test_digest_filename_mismatch_detected(self, tmp_path):
        store = _store_with_entries(tmp_path, workloads=("gcc",))
        entry = store._entry_paths()[0]
        renamed = entry.with_name("0" * 64 + ".json")
        entry.rename(renamed)
        report = store.verify()
        assert len(report["quarantined"]) == 1
        assert "digest" in report["quarantined"][0]["problem"]

    def test_quarantine_preserves_evidence_and_avoids_collisions(self, tmp_path):
        store = _store_with_entries(tmp_path, workloads=("gcc",))
        entry = store._entry_paths()[0]
        payload = entry.read_bytes()
        corrupt_entry(entry, "garbage")
        damaged = entry.read_bytes()
        store.verify()
        moved = store.quarantine_dir / entry.name
        assert moved.read_bytes() == damaged
        # A second file with the same name quarantines under a suffix.
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(payload)
        corrupt_entry(entry, "garbage")
        report = store.verify()
        assert report["quarantined"][0]["moved_to"].endswith(".1")

    def test_verify_without_heal_only_reports(self, tmp_path):
        store = _store_with_entries(tmp_path, workloads=("gcc",))
        entry = store._entry_paths()[0]
        corrupt_entry(entry, "truncate")
        report = store.verify(heal=False)
        assert len(report["quarantined"]) == 1
        assert report["quarantined"][0]["moved_to"] is None
        assert entry.exists()

    def test_healthy_entries_survive_a_neighbors_quarantine(self, tmp_path):
        store = _store_with_entries(tmp_path, workloads=("gcc", "li"))
        corrupt_entry(store.path_for(_key("gcc")), "garbage")
        store.verify()
        assert store.load(_key("li")) is not None


class TestLedgerTornTail:
    def _ledger_with_runs(self, tmp_path, runs: int = 2) -> RunLedger:
        ledger = RunLedger(tmp_path / "runs.jsonl")
        key = _key()
        for _ in range(runs):
            record = build_record(
                {key: _result()},
                {key: "simulated"},
                wall_seconds=1.0,
                jobs=1,
                store_schema=SCHEMA_VERSION,
            )
            assert ledger.append(record) is not None
        return ledger

    def test_torn_final_line_warns_and_is_ignored(self, tmp_path):
        ledger = self._ledger_with_runs(tmp_path)
        tear_trailing_line(ledger.path)
        with pytest.warns(RuntimeWarning, match="torn, partially written"):
            records = ledger.records()
        assert len(records) == 1  # the intact first record survives

    def test_mid_file_corruption_stays_silent(self, tmp_path, recwarn):
        ledger = self._ledger_with_runs(tmp_path)
        lines = ledger.path.read_text(encoding="utf-8").splitlines(True)
        lines.insert(1, "garbage line\n")
        ledger.path.write_text("".join(lines), encoding="utf-8")
        records = ledger.records()
        assert len(records) == 2
        assert not any(
            issubclass(w.category, RuntimeWarning) for w in recwarn.list
        )

    def test_heal_excises_torn_tail_into_quarantine(self, tmp_path):
        ledger = self._ledger_with_runs(tmp_path)
        torn = tear_trailing_line(ledger.path)
        assert torn  # something really was cut off
        quarantine = tmp_path / "quarantine"
        report = ledger.heal(quarantine)
        assert report["torn"] and report["healed"]
        fragment = report["fragment_path"]
        assert fragment is not None
        assert quarantine in Path(fragment).parents
        # The file is whole again: appends and reads work, no warning.
        assert len(ledger.records()) == 1
        assert ledger.path.read_bytes().endswith(b"\n")

    def test_heal_completes_a_record_missing_only_its_newline(self, tmp_path):
        ledger = self._ledger_with_runs(tmp_path)
        data = ledger.path.read_bytes()
        ledger.path.write_bytes(data.rstrip(b"\n"))
        report = ledger.heal(tmp_path / "quarantine")
        assert report == {
            "torn": False,
            "healed": True,
            "fragment_path": None,
        }
        assert len(ledger.records()) == 2

    def test_heal_on_intact_ledger_is_a_no_op(self, tmp_path):
        ledger = self._ledger_with_runs(tmp_path)
        before = ledger.path.read_bytes()
        report = ledger.heal(tmp_path / "quarantine")
        assert report["torn"] is False and report["healed"] is False
        assert ledger.path.read_bytes() == before


class TestRecordShape:
    def test_timeouts_counted_inside_gaps(self):
        keys = [_key("gcc"), _key("li"), _key("tomcatv")]
        points = {k: _result() for k in keys}
        points[keys[1]] = SimulationResult(instructions=0, cycles=0, failed=True)
        points[keys[2]] = SimulationResult(instructions=0, cycles=0, failed=True)
        outcomes = {keys[0]: "simulated", keys[1]: "gap", keys[2]: "timeout"}
        record = build_record(
            points,
            outcomes,
            wall_seconds=1.0,
            jobs=1,
            store_schema=SCHEMA_VERSION,
        )
        assert record["summary"]["gaps"] == 2
        assert record["summary"]["timeouts"] == 1
        assert "interrupted" not in record

    def test_interrupted_flag_rides_the_record(self):
        key = _key()
        record = build_record(
            {key: _result()},
            {key: "simulated"},
            wall_seconds=1.0,
            jobs=1,
            store_schema=SCHEMA_VERSION,
            interrupted=True,
        )
        assert record["interrupted"] is True
        # ... and survives a JSON roundtrip the way the ledger stores it.
        assert json.loads(json.dumps(record))["interrupted"] is True
