"""Run ledger: record building, append/resolve, cross-run drift."""

import json

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import duplicate
from repro.cpu.result import SimulationResult
from repro.engine.key import ExperimentKey
from repro.engine.ledger import (
    LEDGER_SCHEMA,
    Drift,
    RunLedger,
    build_record,
    compare_runs,
    plan_digest,
)

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


def _key(workload: str = "gcc") -> ExperimentKey:
    return ExperimentKey(duplicate(32 * 1024, line_buffer=True), workload, FAST)


def _result(instructions: int = 1500, cycles: int = 1000) -> SimulationResult:
    return SimulationResult(instructions=instructions, cycles=cycles)


def _record(
    workloads=("gcc", "tomcatv"), cycles: int = 1000, **overrides
) -> dict:
    points = {_key(w): _result(cycles=cycles) for w in workloads}
    outcomes = {key: "simulated" for key in points}
    record = build_record(
        points, outcomes, wall_seconds=1.0, jobs=1, store_schema=3
    )
    record.update(overrides)
    return record


class TestPlanDigest:
    def test_order_independent(self):
        keys = [_key("gcc"), _key("tomcatv")]
        assert plan_digest(keys) == plan_digest(reversed(keys))

    def test_different_plans_differ(self):
        assert plan_digest([_key("gcc")]) != plan_digest([_key("tomcatv")])


class TestBuildRecord:
    def test_shape_and_summary(self):
        record = _record()
        assert record["schema"] == LEDGER_SCHEMA
        assert record["jobs"] == 1
        assert record["wall_seconds"] == 1.0
        assert record["summary"]["points"] == 2
        assert record["summary"]["simulated"] == 2
        assert record["summary"]["mean_ipc"] == 1.5
        digests = [row["digest"] for row in record["points"]]
        assert sorted(digests) == digests  # sorted by digest, stable order

    def test_failed_result_serializes_as_gap(self):
        key = _key()
        failed = SimulationResult(instructions=0, cycles=0, failed=True)
        record = build_record(
            {key: failed}, {key: "gap"}, wall_seconds=0.1, jobs=1, store_schema=3
        )
        assert record["points"][0]["ipc"] is None
        assert record["summary"]["gaps"] == 1
        assert record["summary"]["mean_ipc"] is None
        # NaN must never reach the JSON line.
        json.dumps(record, allow_nan=False)

    def test_outcome_tally_covers_cache_layers(self):
        points = {_key("gcc"): _result(), _key("tomcatv"): _result()}
        outcomes = {_key("gcc"): "memo", _key("tomcatv"): "store"}
        record = build_record(
            points, outcomes, wall_seconds=0.5, jobs=2, store_schema=3
        )
        assert record["summary"]["memo"] == 1
        assert record["summary"]["store"] == 1
        assert record["summary"]["simulated"] == 0


class TestRunLedger:
    def test_append_assigns_sequential_run_ids(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.append(_record())
        second = ledger.append(_record())
        assert first.startswith("r0001-")
        assert second.startswith("r0002-")
        assert [r["run_id"] for r in ledger.records()] == [first, second]

    def test_append_is_single_line_json(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record())
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["schema"] == LEDGER_SCHEMA

    def test_corrupt_lines_are_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record())
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write("{torn wri\n")
            handle.write("[1, 2, 3]\n")
            handle.write('{"no_plan": true}\n')
        ledger.append(_record())
        records = ledger.records()
        assert len(records) == 2
        assert all("plan_digest" in r for r in records)

    def test_nan_record_is_rejected_not_written(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        bad = _record()
        bad["summary"]["mean_ipc"] = float("nan")
        assert ledger.append(bad) is None
        assert ledger.records() == []

    def test_resolve_by_index_id_prefix_and_last(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.append(_record(workloads=("gcc",)))
        second = ledger.append(_record(workloads=("tomcatv",)))
        assert ledger.resolve("last")["run_id"] == second
        assert ledger.resolve("1")["run_id"] == first
        assert ledger.resolve("2")["run_id"] == second
        assert ledger.resolve("-1")["run_id"] == second
        assert ledger.resolve("-2")["run_id"] == first
        assert ledger.resolve(first)["run_id"] == first
        assert ledger.resolve("r0001")["run_id"] == first

    def test_resolve_misses(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        assert ledger.resolve("last") is None  # empty ledger
        ledger.append(_record(workloads=("gcc",)))
        ledger.append(_record(workloads=("gcc",)))
        assert ledger.resolve("0") is None
        assert ledger.resolve("99") is None
        assert ledger.resolve("nope") is None
        assert ledger.resolve("r000") is None  # ambiguous prefix

    def test_previous_of_same_plan_skips_other_plans(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.append(_record(workloads=("gcc",)))
        ledger.append(_record(workloads=("tomcatv",)))
        last = ledger.append(_record(workloads=("gcc",)))
        record = ledger.resolve(last)
        previous = ledger.previous_of_same_plan(record)
        assert previous["run_id"] == first

    def test_previous_of_same_plan_none_for_first_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        run_id = ledger.append(_record())
        assert ledger.previous_of_same_plan(ledger.resolve(run_id)) is None

    def test_info_and_clear(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        assert ledger.info()["runs"] == 0
        assert ledger.info()["bytes"] == 0
        run_id = ledger.append(_record())
        info = ledger.info()
        assert info["runs"] == 1
        assert info["last_run_id"] == run_id
        assert info["bytes"] > 0
        assert ledger.clear() == 1
        assert ledger.info()["runs"] == 0

    def test_unwritable_path_returns_none(self, tmp_path):
        blocker = tmp_path / "flat"
        blocker.write_text("not a directory", encoding="utf-8")
        ledger = RunLedger(blocker / "runs.jsonl")
        assert ledger.append(_record()) is None
        assert ledger.records() == []


class TestCompareRuns:
    def test_identical_runs_are_clean(self):
        a, b = _record(), _record()
        comparison = compare_runs(a, b)
        assert comparison.clean
        assert comparison.same_plan
        assert comparison.matched_points == 2
        assert comparison.drifts == []

    def test_cycle_drift_is_flagged_per_metric(self):
        a = _record(cycles=1000)
        b = _record(cycles=1001)
        comparison = compare_runs(a, b)
        assert not comparison.clean
        metrics = {d.metric for d in comparison.drifts}
        assert metrics == {"ipc", "cycles"}  # instructions agree

    def test_rel_tol_absorbs_small_drift(self):
        a = _record(cycles=1000)
        b = _record(cycles=1001)
        assert compare_runs(a, b, rel_tol=0.01).clean
        assert not compare_runs(a, b, rel_tol=1e-6).clean

    def test_gap_appearing_is_drift_even_with_tolerance(self):
        a = _record(workloads=("gcc",))
        b = _record(workloads=("gcc",))
        b["points"][0]["ipc"] = None
        comparison = compare_runs(a, b, rel_tol=0.5)
        assert [d.metric for d in comparison.drifts] == ["ipc"]

    def test_disjoint_points_reported_not_compared(self):
        a = _record(workloads=("gcc",))
        b = _record(workloads=("tomcatv",))
        comparison = compare_runs(a, b)
        assert not comparison.same_plan
        assert not comparison.clean
        assert comparison.matched_points == 0
        assert len(comparison.only_in_a) == 1
        assert len(comparison.only_in_b) == 1

    def test_drift_render_formats(self):
        drift = Drift("org / gcc", "ipc", 1.5, None)
        assert drift.render() == "org / gcc: ipc 1.500000 -> gap"
        drift = Drift("org / gcc", "cycles", 1000, 1001)
        assert drift.render() == "org / gcc: cycles 1000 -> 1001"
