"""Property suite: parallel execution is bit-identical to serial.

Hypothesis generates randomized plans -- mixed workloads and
organizations, duplicated points, scaled settings variants -- and each
one is executed twice, serially and through the chunked parallel
dispatcher.  *Everything observable* must match exactly:

* the resolved results (full ``result_to_dict`` forms, not just IPC);
* the persistent store contents (what a later run would be served);
* the run-ledger record (plan digest, per-point rows, outcome tally),
  modulo the fields that honestly differ (wall clock, jobs, time).

Both kernel backends are covered at ``--jobs 2`` and ``--jobs 4``.
Budgets are kept tiny so the whole suite stays in test-suite territory;
the scheduling machinery being exercised (cost model, chunk packing,
out-of-order absorption, pool reuse) is budget-independent.
"""

import multiprocessing
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings as hsettings
from hypothesis import strategies as st

from repro import kernel
from repro.core.experiment import ExperimentSettings
from repro.core.organizations import banked, duplicate, ideal_ports
from repro.engine.executor import Engine, ExecutionPlan
from repro.engine.serialize import result_to_dict
from repro.engine.store import ResultStore

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the parallel identity suite assumes cheap fork workers",
)

#: Ledger fields that legitimately differ between a serial and a
#: parallel run of the same plan.
_NONDETERMINISTIC = ("time_utc", "wall_seconds", "jobs")

ORGANIZATIONS = (
    duplicate(),
    duplicate(line_buffer=True),
    banked(banks=4),
    ideal_ports(ports=2),
)
WORKLOADS = ("gcc", "tomcatv", "li", "compress")
SETTINGS = (
    ExperimentSettings(
        instructions=400, timing_warmup=100, functional_warmup=5_000
    ),
    ExperimentSettings(
        instructions=700, timing_warmup=150, functional_warmup=5_000
    ),
)

#: One design point: (organization index, workload, settings index).
#: Duplicates are allowed on purpose -- ``ExecutionPlan.add`` must
#: deduplicate them identically in both execution strategies.
point_strategy = st.tuples(
    st.integers(0, len(ORGANIZATIONS) - 1),
    st.sampled_from(WORKLOADS),
    st.integers(0, len(SETTINGS) - 1),
)
plan_strategy = st.lists(point_strategy, min_size=1, max_size=6)


def _execute(jobs: int, root: Path, plan_points, backend: str):
    """Run one plan; returns (keys, result dicts, ledger record, store)."""
    store = ResultStore(root)
    engine = Engine(jobs=jobs, store=store)
    try:
        with kernel.use_backend(backend):
            plan = ExecutionPlan(engine)
            keys = [
                plan.add(ORGANIZATIONS[org], name, SETTINGS[cfg])
                for org, name, cfg in plan_points
            ]
            plan.execute()
            results = [result_to_dict(plan.resolve(key)) for key in keys]
    finally:
        engine.shutdown_pool()
    records = store.ledger().records()
    assert len(records) == 1
    record = {
        field: value
        for field, value in records[0].items()
        if field not in _NONDETERMINISTIC
    }
    # Per-point wall clock is timing, not output: serial rows are
    # parent-measured, parallel rows worker-reported.
    record["points"] = [
        {field: value for field, value in row.items() if field != "seconds"}
        for row in record["points"]
    ]
    return keys, results, record, store


@FORK_ONLY
@pytest.mark.parametrize("backend", ["reference", "fast"])
@pytest.mark.parametrize("jobs", [2, 4])
@hsettings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(plan_points=plan_strategy)
def test_parallel_execution_is_bit_identical_to_serial(
    backend, jobs, plan_points
):
    with tempfile.TemporaryDirectory(prefix="identity-") as tmp:
        tmp_path = Path(tmp)
        serial_keys, serial_results, serial_record, serial_store = _execute(
            1, tmp_path / "serial", plan_points, backend
        )
        par_keys, par_results, par_record, par_store = _execute(
            jobs, tmp_path / "parallel", plan_points, backend
        )

        assert par_keys == serial_keys
        assert par_results == serial_results
        assert par_record == serial_record

        # The stores must be interchangeable: every key loads back the
        # same payload from either side, and neither holds extras.
        assert par_store.info()["entries"] == serial_store.info()["entries"]
        for key in serial_keys:
            serial_stored = serial_store.load(key)
            par_stored = par_store.load(key)
            assert serial_stored is not None and par_stored is not None
            assert result_to_dict(par_stored) == result_to_dict(serial_stored)
