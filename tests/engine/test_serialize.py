"""Exact to/from-dict round trips for configurations and results."""

import json

import pytest

from repro.core.experiment import ExperimentSettings, _simulate
from repro.core.organizations import duplicate
from repro.cpu.config import R10000_FU_LIMITS, ProcessorConfig
from repro.engine.serialize import (
    SerializationError,
    memory_stats_from_dict,
    memory_stats_to_dict,
    organization_from_dict,
    organization_to_dict,
    result_from_dict,
    result_to_dict,
    settings_from_dict,
    settings_to_dict,
)
from repro.workloads.catalog import benchmark

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


@pytest.fixture(scope="module")
def real_result():
    return _simulate(duplicate(32 * 1024, line_buffer=True), benchmark("gcc"), FAST)


class TestResultRoundTrip:
    def test_bit_identical_through_json(self, real_result):
        wire = json.loads(json.dumps(result_to_dict(real_result)))
        rebuilt = result_from_dict(wire)
        assert rebuilt == real_result
        assert result_to_dict(rebuilt) == result_to_dict(real_result)
        assert json.dumps(result_to_dict(rebuilt), sort_keys=True) == json.dumps(
            result_to_dict(real_result), sort_keys=True
        )

    def test_served_by_preserves_enum_order(self, real_result):
        rebuilt = result_from_dict(result_to_dict(real_result))
        assert list(rebuilt.memory.served_by) == list(real_result.memory.served_by)

    def test_ipc_identical(self, real_result):
        rebuilt = result_from_dict(result_to_dict(real_result))
        assert rebuilt.ipc == real_result.ipc

    def test_failed_flag_survives(self):
        from repro.cpu.result import SimulationResult

        sentinel = SimulationResult(instructions=0, cycles=0, failed=True)
        assert result_from_dict(result_to_dict(sentinel)).failed


class TestConfigRoundTrip:
    def test_organization_with_dram(self):
        from repro.core.organizations import dram_cache

        org = dram_cache()
        assert organization_from_dict(organization_to_dict(org)) == org

    def test_organization_plain(self):
        org = duplicate(16 * 1024, hit_cycles=2, line_buffer=True)
        assert organization_from_dict(organization_to_dict(org)) == org

    def test_settings_with_fu_limits_tuple(self):
        settings = ExperimentSettings(
            cpu=ProcessorConfig(fu_limits=R10000_FU_LIMITS)
        )
        rebuilt = settings_from_dict(json.loads(json.dumps(settings_to_dict(settings))))
        assert rebuilt == settings
        assert isinstance(rebuilt.cpu.fu_limits, tuple)
        assert isinstance(rebuilt.cpu.fu_limits[0], tuple)


class TestSchemaGuards:
    def test_unknown_served_by_level_rejected(self, real_result):
        data = memory_stats_to_dict(real_result.memory)
        data["served_by"]["WARP_DRIVE"] = 1
        with pytest.raises(SerializationError):
            memory_stats_from_dict(data)

    def test_missing_fields_rejected(self):
        with pytest.raises(SerializationError):
            result_from_dict({"instructions": 1})
        with pytest.raises(SerializationError):
            settings_from_dict({"instructions": 1})
