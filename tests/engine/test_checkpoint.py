"""Sweep checkpoints: durable progress marks that survive any crash."""

import json

import pytest

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import duplicate
from repro.engine.checkpoint import (
    COMPLETED_OUTCOMES,
    SweepCheckpoint,
    list_checkpoints,
    resolve_checkpoint,
)
from repro.engine.key import ExperimentKey
from repro.engine.ledger import plan_digest
from repro.robustness.chaos import tear_trailing_line

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


def _keys(*workloads: str) -> list[ExperimentKey]:
    org = duplicate(32 * 1024, line_buffer=True)
    return [ExperimentKey(org, name, FAST) for name in workloads]


class TestLifecycle:
    def test_begin_writes_header_with_every_planned_key(self, tmp_path):
        keys = _keys("gcc", "li")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        assert checkpoint.begin(keys) == 0
        header, marks = checkpoint.read()
        assert header["plan_digest"] == plan_digest(keys)
        assert marks == {}
        stored = {row["digest"] for row in header["points"]}
        assert stored == {key.digest for key in keys}
        for row in header["points"]:
            assert "label" in row and "workload" in row and "key" in row

    def test_marks_accumulate_and_classify(self, tmp_path):
        keys = _keys("gcc", "li", "tomcatv")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        checkpoint.mark(keys[0], "simulated")
        checkpoint.mark(keys[1], "timeout")
        assert checkpoint.completed() == {keys[0].digest}
        status = checkpoint.status()
        assert status["planned"] == 3
        assert status["completed"] == 1
        assert status["remaining"] == 2

    def test_begin_on_existing_file_returns_resume_count(self, tmp_path):
        keys = _keys("gcc", "li")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        checkpoint.mark(keys[0], "store")
        again = SweepCheckpoint.for_plan(tmp_path, keys)
        assert again.begin(keys) == 1  # one point already done
        # ... and the old marks were preserved, not rewritten.
        assert again.completed() == {keys[0].digest}

    def test_keys_roundtrip_through_the_header(self, tmp_path):
        keys = _keys("gcc", "li")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        rebuilt = checkpoint.keys()
        assert sorted(k.digest for k in rebuilt) == sorted(
            k.digest for k in keys
        )

    def test_remove_is_idempotent(self, tmp_path):
        keys = _keys("gcc")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        checkpoint.remove()
        assert not checkpoint.path.exists()
        checkpoint.remove()  # no error on the second call

    def test_completed_outcomes_cover_every_cache_layer(self):
        assert COMPLETED_OUTCOMES == {"memo", "store", "simulated", "recovered"}


class TestDamageTolerance:
    def test_torn_trailing_mark_loses_only_that_point(self, tmp_path):
        keys = _keys("gcc", "li")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        checkpoint.mark(keys[0], "simulated")
        checkpoint.mark(keys[1], "simulated")
        tear_trailing_line(checkpoint.path)
        assert checkpoint.completed() == {keys[0].digest}

    def test_garbage_lines_are_skipped(self, tmp_path):
        keys = _keys("gcc")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        with checkpoint.path.open("a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"type": "point"}) + "\n")  # no digest
        checkpoint.mark(keys[0], "simulated")
        assert checkpoint.completed() == {keys[0].digest}

    def test_missing_file_reads_as_empty(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "none.jsonl", "abc")
        header, marks = checkpoint.read()
        assert header is None
        assert marks == {}
        assert checkpoint.keys() == []


class TestDiscovery:
    def test_list_orders_most_recent_first(self, tmp_path):
        import os

        first = SweepCheckpoint.for_plan(tmp_path, _keys("gcc"))
        first.begin(_keys("gcc"))
        second = SweepCheckpoint.for_plan(tmp_path, _keys("li"))
        second.begin(_keys("li"))
        os.utime(first.path, (1, 1))  # make "first" decisively older
        found = list_checkpoints(tmp_path)
        assert [cp.digest for cp in found] == [second.digest, first.digest]

    def test_resolve_last_and_prefix(self, tmp_path):
        keys = _keys("gcc")
        checkpoint = SweepCheckpoint.for_plan(tmp_path, keys)
        checkpoint.begin(keys)
        assert resolve_checkpoint(tmp_path, "last").digest == checkpoint.digest
        prefix = checkpoint.digest[:10]
        assert resolve_checkpoint(tmp_path, prefix).digest == checkpoint.digest
        assert resolve_checkpoint(tmp_path, "zzz") is None

    def test_resolve_empty_directory(self, tmp_path):
        assert resolve_checkpoint(tmp_path, "last") is None


class TestEngineIntegration:
    def test_clean_sweep_leaves_no_checkpoint(self, tmp_path):
        from repro.engine.executor import ExecutionPlan, configure_engine
        from repro.engine.store import ResultStore

        store = ResultStore(tmp_path / "cache")
        previous = configure_engine(jobs=1, store=store)
        try:
            plan = ExecutionPlan()
            plan.add(duplicate(32 * 1024), "gcc", FAST)
            plan.execute()
        finally:
            configure_engine(jobs=previous[0], store=previous[1])
        assert list_checkpoints(store.root) == []

    def test_add_key_does_not_rescale_settings(self, monkeypatch):
        from repro.engine.executor import ExecutionPlan

        keys = _keys("gcc")
        monkeypatch.setenv("REPRO_SCALE", "4")
        plan = ExecutionPlan()
        replanned = plan.add_key(keys[0])
        # The checkpointed key already carries scaled budgets; add_key
        # must not multiply them again.
        assert replanned.settings.instructions == FAST.instructions
        assert replanned.digest == keys[0].digest
