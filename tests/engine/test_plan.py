"""Plan -> execute -> resolve, cache layering, and parallel execution."""

import math
import multiprocessing
from dataclasses import replace

import pytest

from repro.core import experiment
from repro.core.experiment import ExperimentSettings, average_ipc
from repro.core.organizations import duplicate
from repro.engine.executor import Engine, ExecutionPlan, WorkerFailureError
from repro.engine.serialize import result_to_dict
from repro.engine.store import ResultStore
from repro.robustness import SimulationInvariantError, resilient_sweeps
from repro.workloads.catalog import benchmark

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched failures reach workers only under fork",
)


def _boom(org, spec, settings):
    raise SimulationInvariantError("injected")


class TestPlanning:
    def test_add_deduplicates_identical_points(self):
        plan = ExecutionPlan(Engine())
        first = plan.add(duplicate(), "gcc", FAST)
        second = plan.add(duplicate(), "gcc", FAST)
        assert first == second
        assert len(plan) == 1

    def test_resolve_requires_planning(self):
        plan = ExecutionPlan(Engine())
        other = ExecutionPlan(Engine())
        key = other.add(duplicate(), "gcc", FAST)
        with pytest.raises(KeyError, match="never planned"):
            plan.resolve(key)

    def test_execute_resolves_every_point(self):
        plan = ExecutionPlan(Engine())
        keys = [plan.add(duplicate(), name, FAST) for name in ("gcc", "tomcatv")]
        results = plan.execute()
        assert set(results) == set(keys)
        for key in keys:
            assert plan.resolve(key) is results[key]

    def test_shared_points_simulate_once(self, monkeypatch):
        calls = []
        real = experiment._simulate

        def counting(org, spec, settings):
            calls.append(spec.name)
            return real(org, spec, settings)

        monkeypatch.setattr(experiment, "_simulate", counting)
        engine = Engine()
        plan = ExecutionPlan(engine)
        plan.add(duplicate(), "gcc", FAST)
        plan.add(duplicate(), "gcc", FAST)
        plan.execute()
        again = ExecutionPlan(engine)
        key = again.add(duplicate(), "gcc", FAST)
        again.execute()
        assert calls == ["gcc"]
        assert again.resolve(key) is plan.resolve(key)


class TestStoreLayering:
    def test_results_persist_and_reload_without_resimulating(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "cache")
        warm = Engine(store=store)
        plan = ExecutionPlan(warm)
        key = plan.add(duplicate(), "gcc", FAST)
        plan.execute()
        expected = plan.resolve(key)
        assert store.info()["entries"] == 1

        # A fresh engine (new process, conceptually) must be served from
        # disk: simulating again would blow up.
        monkeypatch.setattr(experiment, "_simulate", _boom)
        cold = Engine(store=ResultStore(tmp_path / "cache"))
        replay = ExecutionPlan(cold)
        replay_key = replay.add(duplicate(), "gcc", FAST)
        replay.execute()
        assert replay_key == key
        assert replay.resolve(replay_key) == expected

    def test_custom_workloads_never_touch_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        engine = Engine(jobs=2, store=store)
        custom = replace(benchmark("gcc"), name="custom-variant")
        plan = ExecutionPlan(engine)
        key = plan.add(duplicate(), custom, FAST)
        plan.execute()
        assert not math.isnan(plan.ipc(key))
        assert store.info()["entries"] == 0


class TestParallel:
    def test_parallel_results_identical_to_serial(self, tmp_path):
        points = [("gcc", duplicate()), ("tomcatv", duplicate()),
                  ("database", duplicate(line_buffer=True))]

        serial = ExecutionPlan(Engine(jobs=1))
        serial_keys = [serial.add(org, name, FAST) for name, org in points]
        serial.execute()

        store = ResultStore(tmp_path / "cache")
        parallel = ExecutionPlan(Engine(jobs=2, store=store))
        parallel_keys = [parallel.add(org, name, FAST) for name, org in points]
        parallel.execute()

        assert serial_keys == parallel_keys
        for key in serial_keys:
            assert result_to_dict(parallel.resolve(key)) == result_to_dict(
                serial.resolve(key)
            )

        # What the parallel run persisted must satisfy a serial reader.
        reader = ExecutionPlan(Engine(jobs=1, store=ResultStore(tmp_path / "cache")))
        reader_keys = [reader.add(org, name, FAST) for name, org in points]
        reader.execute()
        for key in reader_keys:
            assert result_to_dict(reader.resolve(key)) == result_to_dict(
                serial.resolve(key)
            )

    @FORK_ONLY
    def test_worker_failure_becomes_logged_gap(self, monkeypatch):
        monkeypatch.setattr(experiment, "_simulate", _boom)
        plan = ExecutionPlan(Engine(jobs=2))
        keys = [plan.add(duplicate(), name, FAST) for name in ("gcc", "tomcatv")]
        with resilient_sweeps() as log:
            plan.execute()
        for key in keys:
            assert plan.resolve(key).failed
            assert math.isnan(plan.ipc(key))
        assert len(log.records) == 2
        assert all(r.resolution == "gap" for r in log.records)
        assert all(r.error_type == "SimulationInvariantError" for r in log.records)

    @FORK_ONLY
    def test_worker_failure_raises_outside_resilient_context(self, monkeypatch):
        monkeypatch.setattr(experiment, "_simulate", _boom)
        plan = ExecutionPlan(Engine(jobs=2))
        plan.add(duplicate(), "gcc", FAST)
        plan.add(duplicate(), "tomcatv", FAST)
        with pytest.raises(WorkerFailureError):
            plan.execute()

    @FORK_ONLY
    def test_worker_failure_can_recover_at_reduced_budget(self, monkeypatch):
        """First (full-budget) attempt fails in the worker; the parent's
        reduced-budget retry succeeds and is recorded as recovered."""
        real = experiment._simulate

        def flaky(org, spec, settings):
            if settings.instructions >= FAST.instructions:
                raise SimulationInvariantError("injected at full budget")
            return real(org, spec, settings)

        monkeypatch.setattr(experiment, "_simulate", flaky)
        plan = ExecutionPlan(Engine(jobs=2))
        keys = [plan.add(duplicate(), name, FAST) for name in ("gcc", "tomcatv")]
        with resilient_sweeps() as log:
            plan.execute()
        for key in keys:
            assert not plan.resolve(key).failed
        assert all(r.resolution == "recovered" for r in log.records)


class TestAverageIpc:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        experiment.clear_cache()
        yield
        experiment.clear_cache()

    def test_excludes_gaps_and_warns(self, monkeypatch):
        real = experiment._simulate

        def fails_for_tomcatv(org, spec, settings):
            if spec.name == "tomcatv":
                raise SimulationInvariantError("injected")
            return real(org, spec, settings)

        monkeypatch.setattr(experiment, "_simulate", fails_for_tomcatv)
        with resilient_sweeps():
            with pytest.warns(RuntimeWarning, match="1 of 2 design points"):
                mean = average_ipc(duplicate(), ("gcc", "tomcatv"), FAST)
        assert not math.isnan(mean)
        assert mean > 0

    def test_all_gaps_is_nan(self, monkeypatch):
        monkeypatch.setattr(experiment, "_simulate", _boom)
        with resilient_sweeps():
            with pytest.warns(RuntimeWarning, match="2 of 2"):
                mean = average_ipc(duplicate(), ("gcc", "tomcatv"), FAST)
        assert math.isnan(mean)
