"""CLI integration: --jobs, the result store, and `repro cache`."""

import pytest

from repro.cli import main
from repro.core import experiment
from repro.engine.store import ResultStore
from repro.robustness import SimulationInvariantError

FIGURE_ARGS = [
    "figure4",
    "--benchmarks",
    "gcc",
    "--instructions",
    "1200",
    "--timing-warmup",
    "200",
    "--functional-warmup",
    "5000",
]


def _boom(org, spec, settings):
    raise SimulationInvariantError("injected")


def _figure_lines(captured: str) -> list[str]:
    """Report lines, minus the wall-time footer that varies per run."""
    return [
        line for line in captured.splitlines() if "regenerated in" not in line
    ]


@pytest.fixture(autouse=True)
def fresh_memo():
    experiment.clear_cache()
    yield
    experiment.clear_cache()


class TestStoreIntegration:
    def test_run_persists_then_replays_from_disk(self, monkeypatch, capsys):
        assert main(FIGURE_ARGS) == 0
        cold = _figure_lines(capsys.readouterr().out)
        assert ResultStore().info()["entries"] > 0

        # Second run: new memo, simulator booby-trapped -- every point
        # must come from the store, and the report must be identical.
        experiment.clear_cache()
        monkeypatch.setattr(experiment, "_simulate", _boom)
        assert main(FIGURE_ARGS) == 0
        warm = _figure_lines(capsys.readouterr().out)
        assert warm == cold

    def test_no_cache_leaves_disk_untouched(self, capsys):
        assert main(FIGURE_ARGS + ["--no-cache"]) == 0
        capsys.readouterr()
        assert ResultStore().info()["entries"] == 0

    def test_parallel_output_identical_to_serial(self, capsys):
        assert main(FIGURE_ARGS + ["--no-cache"]) == 0
        serial = _figure_lines(capsys.readouterr().out)
        experiment.clear_cache()
        assert main(FIGURE_ARGS + ["--no-cache", "--jobs", "2"]) == 0
        parallel = _figure_lines(capsys.readouterr().out)
        assert parallel == serial


class TestCacheCommand:
    def test_info_on_empty_store(self, capsys):
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries:         0" in out

    def test_clear_removes_what_a_run_wrote(self, capsys):
        assert main(FIGURE_ARGS) == 0
        capsys.readouterr()
        entries = ResultStore().info()["entries"]
        assert entries > 0
        assert main(["cache", "clear"]) == 0
        assert f"removed {entries} cached result(s)" in capsys.readouterr().out
        assert ResultStore().info()["entries"] == 0

    def test_bad_invocations_exit_with_usage_error(self):
        for argv in (
            ["cache"],
            ["cache", "purge"],
            ["figure1", "extra"],
            ["headlines", "--jobs", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
