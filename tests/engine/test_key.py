"""ExperimentKey: canonical identity, round trips, stable digests."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import duplicate, ideal_ports
from repro.engine.key import ExperimentKey

SRC = Path(__file__).resolve().parents[2] / "src"


def _key() -> ExperimentKey:
    return ExperimentKey(
        duplicate(32 * 1024, line_buffer=True), "gcc", ExperimentSettings()
    )


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        key = _key()
        rebuilt = ExperimentKey.from_dict(key.to_dict())
        assert rebuilt == key
        assert rebuilt.to_dict() == key.to_dict()
        assert rebuilt.digest == key.digest

    def test_json_round_trip_is_exact(self):
        key = _key()
        rebuilt = ExperimentKey.from_dict(json.loads(json.dumps(key.to_dict())))
        assert rebuilt == key
        assert rebuilt.canonical_json() == key.canonical_json()

    def test_keys_are_hashable_and_deduplicate(self):
        assert len({_key(), _key()}) == 1


class TestDigest:
    def test_sensitive_to_every_component(self):
        base = _key()
        variants = [
            ExperimentKey(
                ideal_ports(32 * 1024), base.workload, base.settings
            ),
            ExperimentKey(base.organization, "tomcatv", base.settings),
            ExperimentKey(
                base.organization,
                base.workload,
                ExperimentSettings(instructions=99_999),
            ),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == 4

    def test_canonical_json_is_deterministic_ascii(self):
        key = _key()
        assert key.canonical_json() == key.canonical_json()
        key.canonical_json().encode("ascii")  # must not raise

    def test_stable_across_processes_and_hash_seeds(self):
        """The content address must not depend on PYTHONHASHSEED."""
        snippet = (
            "from repro.core.experiment import ExperimentSettings\n"
            "from repro.core.organizations import duplicate\n"
            "from repro.engine.key import ExperimentKey\n"
            "key = ExperimentKey(duplicate(32 * 1024, line_buffer=True),"
            " 'gcc', ExperimentSettings())\n"
            "print(key.digest)\n"
        )
        digests = set()
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONPATH=str(SRC), PYTHONHASHSEED=seed)
            env.pop("REPRO_SCALE", None)
            output = subprocess.run(
                [sys.executable, "-c", snippet],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            digests.add(output)
        digests.add(_key().digest)
        assert len(digests) == 1
