"""Persistent result store: round trips, robustness, maintenance."""

import json

import pytest

from repro.core.experiment import ExperimentSettings, _simulate
from repro.core.organizations import duplicate
from repro.cpu.result import SimulationResult
from repro.engine.key import ExperimentKey
from repro.engine.store import SCHEMA_VERSION, ResultStore, default_cache_root
from repro.workloads.catalog import benchmark

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)


@pytest.fixture(scope="module")
def real_result():
    return _simulate(duplicate(32 * 1024, line_buffer=True), benchmark("gcc"), FAST)


def _key(workload: str = "gcc") -> ExperimentKey:
    return ExperimentKey(duplicate(32 * 1024, line_buffer=True), workload, FAST)


class TestRoundTrip:
    def test_save_then_load_is_exact(self, tmp_path, real_result):
        store = ResultStore(tmp_path / "cache")
        assert store.save(_key(), real_result)
        assert store.load(_key()) == real_result

    def test_missing_entry_is_none(self, tmp_path):
        assert ResultStore(tmp_path / "cache").load(_key()) is None

    def test_failed_results_never_persist(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        sentinel = SimulationResult(instructions=0, cycles=0, failed=True)
        assert not store.save(_key(), sentinel)
        assert store.load(_key()) is None
        assert not store.path_for(_key()).exists()

    def test_default_root_comes_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"
        assert ResultStore().root == tmp_path / "elsewhere"


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path, real_result):
        store = ResultStore(tmp_path / "cache")
        store.save(_key(), real_result)
        store.path_for(_key()).write_text("{not json", encoding="utf-8")
        assert store.load(_key()) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, real_result):
        store = ResultStore(tmp_path / "cache")
        store.save(_key(), real_result)
        path = store.path_for(_key())
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.load(_key()) is None

    def test_key_mismatch_is_a_miss(self, tmp_path, real_result):
        """Digest collisions / hand-edited files must not leak results."""
        store = ResultStore(tmp_path / "cache")
        store.save(_key(), real_result)
        path = store.path_for(_key())
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["key"]["workload"] = "tomcatv"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.load(_key()) is None


class TestMaintenance:
    def test_info_and_clear(self, tmp_path, real_result):
        store = ResultStore(tmp_path / "cache")
        store.save(_key("gcc"), real_result)
        store.save(_key("tomcatv"), real_result)
        info = store.info()
        assert info["entries"] == 2
        assert info["current_schema_entries"] == 2
        assert info["bytes"] > 0
        assert info["schema"] == SCHEMA_VERSION
        assert store.clear() == 2
        assert store.info()["entries"] == 0
        assert store.load(_key("gcc")) is None

    def test_info_on_empty_store(self, tmp_path):
        info = ResultStore(tmp_path / "nowhere").info()
        assert info["entries"] == 0
        assert info["bytes"] == 0
