"""Tests for the analysis helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    amdahl_speedup,
    arithmetic_mean,
    best_size,
    crossover,
    geometric_mean,
    implied_memory_fraction,
    monotone_non_increasing,
    normalize,
    relative_change,
)


class TestCurves:
    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_crossover_found(self):
        x = crossover([0, 1, 2], [0.0, 1.0, 2.0], [2.0, 1.0, 0.0])
        assert x == pytest.approx(1.0)

    def test_crossover_none(self):
        assert crossover([0, 1], [0.0, 1.0], [2.0, 3.0]) is None

    def test_crossover_at_start(self):
        assert crossover([5, 6], [1.0, 2.0], [1.0, 0.0]) == 5

    def test_crossover_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover([0], [1.0, 2.0], [1.0])

    def test_relative_change(self):
        assert relative_change(2.0, 3.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            relative_change(0.0, 1.0)

    def test_best_size(self):
        assert best_size([(4096, 1.0), (8192, 2.0), (16384, 1.5)]) == 8192
        with pytest.raises(ValueError):
            best_size([])

    def test_monotone(self):
        assert monotone_non_increasing([3.0, 2.0, 2.0, 1.0])
        assert not monotone_non_increasing([1.0, 2.0])
        assert monotone_non_increasing([1.0, 1.05], tolerance=0.1)

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1))
    def test_geometric_leq_arithmetic(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-9


class TestAmdahl:
    def test_paper_tomcatv_example(self):
        """Section 4.4: 3x clock with half the time in memory -> 1.5x."""
        assert amdahl_speedup(0.5, 3.0) == pytest.approx(1.5)

    def test_inverse_recovers_fraction(self):
        assert implied_memory_fraction(3.0, 1.5) == pytest.approx(0.5)

    def test_no_enhancement_no_speedup(self):
        assert amdahl_speedup(0.0, 10.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2.0)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0.0)
        with pytest.raises(ValueError):
            implied_memory_fraction(1.0, 1.0)
        with pytest.raises(ValueError):
            implied_memory_fraction(3.0, 5.0)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1.1, max_value=10.0),
    )
    def test_speedup_bounded_by_enhancement(self, fraction, enhancement):
        speedup = amdahl_speedup(fraction, enhancement)
        assert 1.0 <= speedup <= enhancement + 1e-9
