"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis import render_chart, render_miss_rate_chart


class TestRenderChart:
    def test_contains_title_labels_and_legend(self):
        chart = render_chart(
            {"a": [1.0, 2.0], "b": [2.0, 1.0]}, ["x0", "x1"], title="T"
        )
        assert chart.startswith("T\n")
        assert "x0" in chart and "x1" in chart
        assert "o=a" in chart and "*=b" in chart

    def test_extremes_on_top_and_bottom_rows(self):
        chart = render_chart({"a": [0.0, 10.0]}, ["lo", "hi"], height=5)
        lines = chart.splitlines()
        assert lines[0].strip().startswith("10.00")
        assert "0.00" in lines[4]

    def test_flat_series_does_not_crash(self):
        chart = render_chart({"a": [3.0, 3.0, 3.0]}, ["1", "2", "3"])
        assert "o" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_chart({"a": [1.0]}, ["x", "y"])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart({}, [])

    def test_tiny_height_rejected(self):
        with pytest.raises(ValueError):
            render_chart({"a": [1.0]}, ["x"], height=2)

    def test_marks_positioned_by_value(self):
        """The larger value must appear on an earlier (higher) line."""
        chart = render_chart({"a": [10.0, 0.0]}, ["L", "R"], height=6)
        rows = [
            i
            for i, line in enumerate(chart.splitlines())
            if "o" in line and "|" in line
        ]
        assert rows[0] < rows[-1]


class TestMissRateChart:
    def curves(self):
        return {
            "gcc": [(4096, 0.038), (32768, 0.014)],
            "tomcatv": [(4096, 0.057), (32768, 0.047)],
        }

    def test_renders_selected_benchmarks(self):
        chart = render_miss_rate_chart(self.curves(), ["gcc", "tomcatv"])
        assert "o=gcc" in chart and "4K" in chart and "32K" in chart

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            render_miss_rate_chart(self.curves(), ["doom"])
