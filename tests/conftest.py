"""Shared test fixtures: keep the suite hermetic.

Every test gets a throwaway result-store location so no test can read
stale results from (or leak results into) a developer's real
``.repro-cache/`` -- cross-run persistence is exactly what the store is
for, and exactly what hermetic tests must not see.  Likewise every test
starts with tracing disabled: a test that activates a tracer and fails
before restoring it must not leak event capture into its neighbors.
"""

import pytest

from repro.engine.executor import get_engine
from repro.engine.store import CACHE_DIR_ENV
from repro.observability import trace


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json snapshots from current behavior",
    )


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "repro-cache"))
    engine = get_engine()
    previous = (engine.jobs, engine.store)
    yield
    engine.jobs, engine.store = previous


@pytest.fixture(autouse=True)
def _tracing_disabled():
    trace.deactivate()
    yield
    trace.deactivate()
