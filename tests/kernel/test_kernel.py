"""The backend seam itself: selection, trace cache, packed streams."""

import os
import warnings

import pytest

from repro import kernel
from repro.core.experiment import (
    MIN_INSTRUCTIONS,
    ExperimentSettings,
    instructions_override,
)
from repro.kernel import tracecache
from repro.workloads.catalog import benchmark
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Each test starts with no override and no REPRO_BACKEND."""
    monkeypatch.delenv(kernel.BACKEND_ENV, raising=False)
    previous = kernel.select_backend(None)
    yield
    kernel.select_backend(previous)


class TestSelection:
    def test_default_is_reference(self):
        assert kernel.selected_name() == "reference"
        assert kernel.active_backend().name == "reference"

    def test_environment_selects(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV, "fast")
        assert kernel.selected_name() == "fast"
        assert kernel.active_backend().name == "fast"

    def test_blank_environment_means_default(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV, "   ")
        assert kernel.selected_name() == "reference"

    def test_explicit_selection_beats_environment(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV, "fast")
        kernel.select_backend("reference")
        assert kernel.selected_name() == "reference"

    def test_use_backend_scopes_and_exports_env(self):
        with kernel.use_backend("fast") as backend:
            assert backend.name == "fast"
            assert kernel.selected_name() == "fast"
            # Pool workers inherit the choice through the environment.
            assert os.environ[kernel.BACKEND_ENV] == "fast"
        assert kernel.selected_name() == "reference"
        assert kernel.BACKEND_ENV not in os.environ

    def test_use_backend_restores_previous_env(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV, "reference")
        with kernel.use_backend("fast"):
            assert os.environ[kernel.BACKEND_ENV] == "fast"
        assert os.environ[kernel.BACKEND_ENV] == "reference"

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            kernel.get_backend("turbo")
        with pytest.raises(ValueError, match="unknown simulation backend"):
            kernel.select_backend("turbo")

    def test_backends_are_singletons(self):
        for name in kernel.BACKEND_NAMES:
            assert kernel.get_backend(name) is kernel.get_backend(name)

    def test_names_normalized(self):
        assert kernel.get_backend(" Fast ") is kernel.get_backend("fast")


class TestTraceCache:
    def setup_method(self):
        tracecache.clear()

    def teardown_method(self):
        tracecache.clear()

    def test_same_identity_shares_artifacts(self):
        spec = benchmark("gcc")
        first = tracecache.artifacts_for(spec, 1, 500)
        assert tracecache.artifacts_for(spec, 1, 500) is first

    def test_distinct_identities_do_not_share(self):
        spec = benchmark("gcc")
        base = tracecache.artifacts_for(spec, 1, 500)
        assert tracecache.artifacts_for(spec, 2, 500) is not base
        assert tracecache.artifacts_for(spec, 1, 600) is not base
        assert tracecache.artifacts_for(benchmark("li"), 1, 500) is not base

    def test_lru_evicts_oldest(self):
        spec = benchmark("gcc")
        first = tracecache.artifacts_for(spec, 0, 100)
        for seed in range(1, tracecache.CACHE_ENTRIES + 1):
            tracecache.artifacts_for(spec, seed, 100)
        assert tracecache.artifacts_for(spec, 0, 100) is not first

    def test_recent_use_survives_eviction(self):
        spec = benchmark("gcc")
        first = tracecache.artifacts_for(spec, 0, 100)
        for seed in range(1, tracecache.CACHE_ENTRIES):
            tracecache.artifacts_for(spec, seed, 100)
        tracecache.artifacts_for(spec, 0, 100)  # refresh
        tracecache.artifacts_for(spec, tracecache.CACHE_ENTRIES, 100)
        assert tracecache.artifacts_for(spec, 0, 100) is first

    def test_timing_stream_replays_identical_tape(self):
        artifacts = tracecache.artifacts_for(benchmark("gcc"), 1, 200)
        first = [next(artifacts.timing_stream()) for _ in range(1)]
        a = artifacts.timing_stream()
        b = artifacts.timing_stream()
        taken_a = [next(a) for _ in range(50)]
        taken_b = [next(b) for _ in range(50)]
        # Replays hand out the very same MicroOp objects, in order.
        assert all(x is y for x, y in zip(taken_a, taken_b))
        assert taken_a[0] is first[0]

    def test_warm_references_must_precede_timing(self):
        # With a positive warm-up budget the tape generates the warm
        # prefix itself; with none, a late warm request would replay the
        # generator out of RNG order -- the guard refuses.
        artifacts = tracecache.artifacts_for(benchmark("gcc"), 1, 0)
        next(artifacts.timing_stream())  # starts the timing generator
        with pytest.raises(RuntimeError, match="warm-up stream"):
            artifacts.warm_references()

    def test_timing_tape_generates_warm_prefix_first(self):
        artifacts = tracecache.artifacts_for(benchmark("gcc"), 1, 200)
        next(artifacts.timing_stream())
        # The warm stream was materialized as a side effect, so the
        # timing tape started from the post-warm-up RNG state.
        assert artifacts.warm_references() is not None

    def test_warm_references_cached_before_timing(self):
        artifacts = tracecache.artifacts_for(benchmark("gcc"), 1, 200)
        warm = artifacts.warm_references()
        next(artifacts.timing_stream())
        assert artifacts.warm_references() is warm


class TestPackedReferences:
    def test_packed_matches_memory_references(self):
        spec = benchmark("gcc")
        packed = WorkloadGenerator(spec, seed=3).packed_references(400)
        refs = WorkloadGenerator(spec, seed=3).memory_references(400)
        unpacked = [(bool(word & 1), word >> 1) for word in packed]
        assert unpacked == refs

    def test_footprint_lines_cached_and_exact(self):
        spec = benchmark("tomcatv")
        artifacts = tracecache.artifacts_for(spec, 1, 100)
        lines = artifacts.footprint_lines(32)
        assert lines == WorkloadGenerator(spec, 1).footprint_lines(32)
        assert artifacts.footprint_lines(32) is lines


class TestInstructionsOverride:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
        assert instructions_override() is None

    def test_override_pins_measured_window(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "5000")
        settings = ExperimentSettings(instructions=12_000).scaled()
        assert settings.instructions == 5000

    def test_override_leaves_warmups_alone(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "5000")
        base = ExperimentSettings(instructions=12_000)
        settings = base.scaled()
        assert settings.timing_warmup == base.timing_warmup
        assert settings.functional_warmup == base.functional_warmup

    def test_small_value_clamps_to_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "10")
        with pytest.warns(RuntimeWarning, match="floor"):
            assert instructions_override() == MIN_INSTRUCTIONS

    def test_garbage_ignored_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "lots")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert instructions_override() is None

    def test_nonpositive_ignored_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "-4")
        with pytest.warns(RuntimeWarning, match="positive"):
            assert instructions_override() is None

    def test_matching_override_is_noop(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "12000")
        base = ExperimentSettings(instructions=12_000)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert base.scaled().instructions == 12_000
