"""Tests for the branch predictors."""

import pytest

from repro.cpu import (
    GsharePredictor,
    PerfectPredictor,
    TwoBitPredictor,
    make_predictor,
)


class TestTwoBitPredictor:
    def test_learns_always_taken(self):
        predictor = TwoBitPredictor(64)
        for _ in range(10):
            predictor.observe(0x40, True)
        assert predictor.predict(0x40)
        assert predictor.stats.misprediction_rate < 0.2

    def test_learns_always_not_taken(self):
        predictor = TwoBitPredictor(64)
        for _ in range(10):
            predictor.observe(0x40, False)
        assert not predictor.predict(0x40)

    def test_hysteresis_survives_single_flip(self):
        """A loop-exit branch should not destroy a strongly-taken entry."""
        predictor = TwoBitPredictor(64)
        for _ in range(10):
            predictor.observe(0x40, True)
        predictor.observe(0x40, False)  # single not-taken
        assert predictor.predict(0x40)  # still predicts taken

    def test_alternating_pattern_is_hard(self):
        predictor = TwoBitPredictor(64)
        for i in range(100):
            predictor.observe(0x40, i % 2 == 0)
        assert predictor.stats.misprediction_rate > 0.3

    def test_distinct_pcs_use_distinct_entries(self):
        predictor = TwoBitPredictor(64)
        for _ in range(10):
            predictor.observe(0x40, True)
            predictor.observe(0x44, False)
        assert predictor.predict(0x40)
        assert not predictor.predict(0x44)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(100)


class TestGsharePredictor:
    def test_learns_history_correlated_pattern(self):
        """Gshare can learn a strict alternation via history bits."""
        predictor = GsharePredictor(256, history_bits=4)
        for i in range(400):
            predictor.observe(0x40, i % 2 == 0)
        # after training, the last 100 observations should be mostly right
        recent = GsharePredictor(256, history_bits=4)
        for i in range(300):
            recent.observe(0x40, i % 2 == 0)
        before = recent.stats.mispredictions
        for i in range(300, 400):
            recent.observe(0x40, i % 2 == 0)
        assert recent.stats.mispredictions - before < 10

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            GsharePredictor(100)


class TestPerfectPredictor:
    def test_never_mispredicts(self):
        predictor = PerfectPredictor()
        for i in range(50):
            assert predictor.observe(i * 4, i % 3 == 0)
        assert predictor.stats.mispredictions == 0
        assert predictor.stats.branches == 50
        assert predictor.stats.accuracy == 1.0


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_predictor("twobit"), TwoBitPredictor)
        assert isinstance(make_predictor("gshare"), GsharePredictor)
        assert isinstance(make_predictor("perfect"), PerfectPredictor)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_predictor("psychic")

    def test_empty_stats(self):
        predictor = make_predictor("twobit")
        assert predictor.stats.misprediction_rate == 0.0
        assert predictor.stats.accuracy == 1.0
