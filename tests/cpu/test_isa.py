"""Tests for the micro-op model and R10000 latencies."""

import pytest

from repro.cpu import (
    ADDRESS_CALC_CYCLES,
    MAX_DEP_DISTANCE,
    R10000_LATENCY,
    MicroOp,
    Op,
    alu,
    branch,
    load,
    store,
)


class TestLatencies:
    def test_single_cycle_integer_alu(self):
        assert R10000_LATENCY[Op.IALU] == 1

    def test_fp_pipeline_latencies(self):
        """R10000: 2-cycle FP add/multiply, long divide."""
        assert R10000_LATENCY[Op.FADD] == 2
        assert R10000_LATENCY[Op.FMUL] == 2
        assert R10000_LATENCY[Op.FDIV] > R10000_LATENCY[Op.FMUL]

    def test_every_non_memory_op_has_a_latency(self):
        for op in Op:
            if op not in (Op.LOAD, Op.STORE):
                assert R10000_LATENCY[op] >= 1

    def test_memory_ops_use_address_calc(self):
        """Load latency is one cycle greater than the cache access time."""
        assert load(0x100).latency == ADDRESS_CALC_CYCLES
        assert store(0x100).latency == ADDRESS_CALC_CYCLES

    def test_alu_latency_property(self):
        assert alu().latency == 1
        assert MicroOp(Op.IDIV).latency == 35


class TestMicroOp:
    def test_memory_classification(self):
        assert load(0).is_memory
        assert store(0).is_memory
        assert not alu().is_memory
        assert not branch(0, True).is_memory

    def test_srcs_validation(self):
        with pytest.raises(ValueError):
            MicroOp(Op.IALU, srcs=(0,))
        with pytest.raises(ValueError):
            MicroOp(Op.IALU, srcs=(MAX_DEP_DISTANCE + 1,))
        MicroOp(Op.IALU, srcs=(1, MAX_DEP_DISTANCE))  # boundary is fine

    def test_helpers_carry_fields(self):
        mop = load(0xABC, srcs=(2,))
        assert mop.address == 0xABC and mop.srcs == (2,)
        b = branch(0x40, taken=True, srcs=(1,))
        assert b.pc == 0x40 and b.taken

    def test_slots_prevent_arbitrary_attributes(self):
        with pytest.raises(AttributeError):
            alu().bogus = 1
