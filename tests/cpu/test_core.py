"""Tests for the out-of-order core against hand-built traces."""

import itertools

import pytest

from repro.cpu import (
    MicroOp,
    Op,
    ProcessorConfig,
    alu,
    branch,
    load,
    simulate,
    store,
)
from repro.memory import MemoryConfig, MemorySystem


def run(trace, n, *, mem_overrides=None, cpu_overrides=None, warmup=0):
    memory = MemorySystem(MemoryConfig(**(mem_overrides or {})))
    config = ProcessorConfig(**(cpu_overrides or {}))
    return simulate(
        iter(trace),
        memory,
        config=config,
        max_instructions=n,
        warmup_instructions=warmup,
    )


def alu_stream():
    while True:
        yield alu()


def dependent_chain():
    while True:
        yield alu(srcs=(1,))


class TestIdealIpc:
    def test_independent_alus_reach_issue_width(self):
        result = run(alu_stream(), 4000)
        assert result.ipc == pytest.approx(4.0, rel=0.02)

    def test_serial_chain_is_ipc_one(self):
        result = run(dependent_chain(), 2000)
        assert result.ipc == pytest.approx(1.0, rel=0.02)

    def test_two_independent_chains_reach_ipc_two(self):
        def two_chains():
            while True:
                yield alu(srcs=(2,))

        result = run(two_chains(), 2000)
        assert result.ipc == pytest.approx(2.0, rel=0.02)

    def test_narrow_issue_width_caps_ipc(self):
        result = run(alu_stream(), 2000, cpu_overrides={"issue_width": 2})
        assert result.ipc == pytest.approx(2.0, rel=0.02)

    def test_long_latency_chain(self):
        """A dependent chain of FP divides commits one per 12 cycles."""

        def divs():
            while True:
                yield MicroOp(Op.FDIV, srcs=(1,))

        result = run(divs(), 500)
        assert result.ipc == pytest.approx(1 / 12, rel=0.05)


class TestMemoryInteraction:
    def test_cached_loads_are_fast(self):
        def hot_loads():
            while True:
                yield load(0)
                yield load(8)

        result = run(hot_loads(), 2000, warmup=100)
        assert result.memory.l1_miss_rate < 0.01
        assert result.ipc > 1.5

    def test_streaming_misses_are_slow(self):
        lines = itertools.count(0, 4096)

        def cold_loads():
            for addr in lines:
                yield load(addr, srcs=(1,))

        result = run(cold_loads(), 300)
        assert result.ipc < 0.1
        assert result.memory.l1_load_misses >= 299

    def test_dependent_load_adds_cache_latency(self):
        """load -> use chain: ~3 cycles per pair with a 1-cycle cache."""

        def load_use():
            while True:
                yield load(0, srcs=())
                yield alu(srcs=(1,))

        result = run(load_use(), 2000, warmup=50)
        # each pair costs ~3 cycles when fully serialized but pairs overlap
        assert 0.5 < result.ipc <= 4.0

    def test_store_drain_reaches_cache(self):
        def stores():
            while True:
                yield store(0)
                yield alu()

        result = run(stores(), 1000)
        assert result.memory.stores > 400

    def test_lsq_full_stalls_counted(self):
        def only_loads():
            for addr in itertools.count(0, 4096):
                yield load(addr)

        result = run(only_loads(), 200, cpu_overrides={"lsq_size": 2})
        assert result.pipeline.lsq_full_stalls > 0

    def test_window_full_stalls_counted(self):
        def slow_chain():
            while True:
                yield MicroOp(Op.IDIV, srcs=(1,))
                for _ in range(10):
                    yield alu()

        result = run(slow_chain(), 500)
        assert result.pipeline.window_full_stalls > 0


class TestBranches:
    def test_predictable_branches_cheap(self):
        def loop_branches():
            while True:
                for _ in range(7):
                    yield alu()
                yield branch(0x100, taken=True)

        result = run(loop_branches(), 4000)
        assert result.branches.misprediction_rate < 0.05
        assert result.ipc > 3.0

    def test_random_branches_hurt(self):
        import random

        rng = random.Random(7)

        def noisy_branches():
            while True:
                for _ in range(4):
                    yield alu()
                yield branch(0x100, taken=rng.random() < 0.5)

        predictable = run(
            (alu() for _ in itertools.count()), 3000
        )
        noisy = run(noisy_branches(), 3000)
        assert noisy.ipc < predictable.ipc
        assert noisy.pipeline.mispredict_stall_cycles > 0

    def test_perfect_predictor_removes_stalls(self):
        import random

        rng = random.Random(7)

        def noisy_branches():
            while True:
                yield alu()
                yield branch(0x100, taken=rng.random() < 0.5)

        result = run(
            noisy_branches(), 2000, cpu_overrides={"branch_predictor": "perfect"}
        )
        assert result.pipeline.mispredict_stall_cycles == 0
        assert result.branches.mispredictions == 0


class TestPortSensitivity:
    """The core must transmit port bandwidth differences (paper section 4)."""

    def trace(self):
        addr = itertools.cycle(range(0, 8 * 1024, 32))

        def gen():
            for a in addr:
                yield load(a)
                yield alu()

        return gen()

    def ipc_with_ports(self, ports):
        return run(
            self.trace(),
            4000,
            warmup=1000,
            mem_overrides={"port_policy": "ideal", "ports": ports},
        ).ipc

    def test_second_port_helps(self):
        one = self.ipc_with_ports(1)
        two = self.ipc_with_ports(2)
        assert two > one * 1.1

    def test_diminishing_returns(self):
        two = self.ipc_with_ports(2)
        four = self.ipc_with_ports(4)
        gain_2_to_4 = four / two - 1
        one = self.ipc_with_ports(1)
        gain_1_to_2 = two / one - 1
        assert gain_2_to_4 < gain_1_to_2


class TestWarmupAndDeterminism:
    def test_warmup_resets_statistics(self):
        def loads():
            while True:
                yield load(0)

        result = run(loads(), 1000, warmup=500)
        assert result.instructions == 1000
        # The single line was warmed: no cold miss in the measured region.
        assert result.memory.l1_load_misses == 0

    def test_deterministic(self):
        def mixed():
            for i in itertools.count():
                yield load((i * 64) % 4096)
                yield alu(srcs=(1,))
                if i % 5 == 0:
                    yield branch(0x40 + i % 3 * 4, taken=i % 2 == 0)

        a = run(mixed(), 3000)
        b = run(mixed(), 3000)
        assert a.ipc == b.ipc and a.cycles == b.cycles

    def test_finite_trace_drains(self):
        result = run([alu() for _ in range(100)], 5000)
        assert result.instructions == 100

    def test_rejects_bad_instruction_count(self):
        with pytest.raises(ValueError):
            run(alu_stream(), 0)

    def test_op_counts_sum_to_instructions(self):
        def mixed():
            while True:
                yield load(0)
                yield alu()
                yield store(64)

        result = run(mixed(), 3000)
        assert sum(result.op_counts.values()) == result.instructions


class TestStoreForwarding:
    def test_forwarding_counted_when_enabled(self):
        def store_load():
            while True:
                yield store(0)
                yield load(0)

        result = run(
            store_load(), 1000, cpu_overrides={"store_forwarding": True}
        )
        assert result.pipeline.store_forwards > 0

    def test_disabled_by_default(self):
        def store_load():
            while True:
                yield store(0)
                yield load(0)

        result = run(store_load(), 1000)
        assert result.pipeline.store_forwards == 0


class TestConfigValidation:
    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ProcessorConfig(issue_width=0).validated()

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            ProcessorConfig(window_size=2, fetch_width=4).validated()

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError):
            ProcessorConfig(mispredict_redirect_penalty=-1).validated()
