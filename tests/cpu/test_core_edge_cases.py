"""Edge-case and scheduling-detail tests for the out-of-order core."""

import itertools

import pytest

from repro.cpu import (
    MicroOp,
    Op,
    ProcessorConfig,
    alu,
    branch,
    load,
    simulate,
    store,
)
from repro.memory import MemoryConfig, MemorySystem


def run(trace, n, *, mem=None, cpu=None, warmup=0):
    memory = MemorySystem(MemoryConfig(**(mem or {})))
    return simulate(
        iter(trace),
        memory,
        config=ProcessorConfig(**(cpu or {})),
        max_instructions=n,
        warmup_instructions=warmup,
    )


class TestIdleCycleSkipping:
    """The fast-forward path must not change results, only save time."""

    def test_long_memory_gap_cycles_consistent(self):
        """A single dependent chain of cold loads: cycles must equal the
        sum of miss latencies within rounding, whether or not the core
        fast-forwards."""

        def cold_chain():
            for i in itertools.count():
                yield load(i * 4096, srcs=(1,))

        result = run(cold_chain(), 50)
        # Every load misses to memory (~80+ cycles); the run must cost
        # at least 50 x 60 cycles -- proving time advanced through gaps.
        assert result.cycles > 50 * 60

    def test_skip_does_not_starve_commit(self):
        def slow_then_fast():
            yield MicroOp(Op.IDIV, srcs=())
            for _ in range(20):
                yield alu(srcs=(1,))

        result = run(slow_then_fast(), 21)
        assert result.instructions == 21


class TestWindowOrdering:
    def test_oldest_first_issue_priority(self):
        """With issue width 1, program order wins among ready ops."""

        def two_ready():
            yield alu()
            yield alu()
            while True:
                yield alu(srcs=(2,))

        result = run(two_ready(), 500, cpu={"issue_width": 1})
        assert result.ipc == pytest.approx(1.0, rel=0.05)

    def test_commit_strictly_in_order(self):
        """A long-latency head blocks commit of younger ops: the
        window fills and IPC collapses to the divide latency."""

        def div_headed():
            while True:
                yield MicroOp(Op.IDIV, srcs=(1,))
                for _ in range(63):
                    yield alu()

        result = run(div_headed(), 640, cpu={"window_size": 64})
        # one 35-cycle divide gates each 64-instruction block
        assert result.ipc < 64 / 35 * 1.2


class TestLsqBoundaries:
    def test_lsq_exactly_full_then_drains(self):
        def burst():
            for i in range(40):
                yield load(i * 64)
            while True:
                yield alu()

        result = run(burst(), 300, cpu={"lsq_size": 4})
        assert result.instructions == 300

    def test_held_memory_op_not_lost(self):
        """The op held back by a full LSQ must still commit eventually."""

        def loads_only():
            for i in itertools.count():
                yield load((i % 64) * 32)

        result = run(loads_only(), 200, cpu={"lsq_size": 1}, warmup=0)
        assert result.op_counts.get("LOAD", 0) == 200


class TestBranchEdges:
    def test_back_to_back_mispredicts(self):
        import random

        rng = random.Random(3)

        def all_branches():
            while True:
                yield branch(0x40, taken=rng.random() < 0.5)

        result = run(all_branches(), 400)
        assert result.instructions == 400
        assert result.branches.branches >= 400

    def test_branch_at_fetch_group_boundary(self):
        def pattern():
            while True:
                for _ in range(3):
                    yield alu()
                yield branch(0x80, taken=True)

        result = run(pattern(), 400)
        assert result.instructions == 400

    def test_redirect_penalty_configurable(self):
        import random

        def noisy(seed):
            rng = random.Random(seed)
            while True:
                yield alu()
                yield branch(0x40, taken=rng.random() < 0.5)

        fast = run(noisy(5), 2000, cpu={"mispredict_redirect_penalty": 0})
        slow = run(noisy(5), 2000, cpu={"mispredict_redirect_penalty": 8})
        assert slow.cycles > fast.cycles


class TestStoreBufferDrain:
    def test_stores_write_cache_after_commit(self):
        def one_store():
            yield store(0x100)
            while True:
                yield alu()

        memory = MemorySystem(MemoryConfig())
        simulate(one_store(), memory, max_instructions=50)
        assert memory.l1.probe(memory.line_of(0x100))

    def test_store_dirty_bit_set(self):
        def stores():
            for i in range(8):
                yield store(i * 64)
            while True:
                yield alu()

        memory = MemorySystem(MemoryConfig())
        simulate(stores(), memory, max_instructions=100)
        assert memory.l1.is_dirty(0)


class TestInstructionAccounting:
    def test_exact_instruction_count_all_widths(self):
        for width in (1, 2, 4, 8):
            result = run(
                (alu() for _ in itertools.count()),
                333,
                cpu={
                    "fetch_width": width,
                    "issue_width": width,
                    "commit_width": width,
                    "window_size": max(8, width),
                },
            )
            assert result.instructions == 333

    def test_warmup_excluded_from_op_counts(self):
        result = run((alu() for _ in itertools.count()), 100, warmup=400)
        assert sum(result.op_counts.values()) == 100


class TestFunctionalUnitLimits:
    def test_single_memory_unit_halves_load_throughput(self):
        def loads():
            for i in itertools.count():
                yield load((i % 256) * 32)

        free = run(loads(), 2000, warmup=500)
        limited = run(
            loads(),
            2000,
            warmup=500,
            cpu={"fu_limits": (("memory", 1), ("integer", 4), ("branch", 4))},
        )
        assert limited.ipc <= min(free.ipc, 1.05)

    def test_r10000_limits_bound_integer_ipc(self):
        from repro.cpu import R10000_FU_LIMITS

        result = run(
            (alu() for _ in itertools.count()),
            2000,
            cpu={"fu_limits": R10000_FU_LIMITS},
        )
        # two integer ALUs cap an all-ALU stream at IPC 2
        assert result.ipc == pytest.approx(2.0, rel=0.05)

    def test_unrestricted_default_matches_paper(self):
        result = run((alu() for _ in itertools.count()), 2000)
        assert result.ipc == pytest.approx(4.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(fu_limits=(("psychic", 1),)).validated()
        with pytest.raises(ValueError):
            ProcessorConfig(fu_limits=(("integer", 0),)).validated()
