"""Tests for the extension features: victim cache, write policies,
bank-interleaving options."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    BankedPorts,
    ConfigurationError,
    DramCacheConfig,
    MemoryConfig,
    MemorySystem,
    ServedBy,
    VictimCache,
)


def make_system(**overrides) -> MemorySystem:
    return MemorySystem(MemoryConfig(**overrides))


class TestVictimCacheUnit:
    def test_swap_hit_removes_line(self):
        victim = VictimCache(4)
        victim.insert(7, dirty=False)
        hit, dirty = victim.probe_and_take(7)
        assert hit and not dirty
        hit, _ = victim.probe_and_take(7)
        assert not hit

    def test_dirty_travels_with_line(self):
        victim = VictimCache(4)
        victim.insert(7, dirty=True)
        hit, dirty = victim.probe_and_take(7)
        assert hit and dirty

    def test_displacement_reports_dirty(self):
        victim = VictimCache(1)
        victim.insert(1, dirty=True)
        displaced = victim.insert(2, dirty=False)
        assert displaced == (1, True)

    def test_hit_rate_stat(self):
        victim = VictimCache(2)
        victim.insert(1, dirty=False)
        victim.probe_and_take(1)
        victim.probe_and_take(9)
        assert victim.stats.hit_rate == pytest.approx(0.5)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            VictimCache(0)


class TestVictimCacheInHierarchy:
    def conflict_addresses(self, system, n=3):
        """n addresses that collide in one L1 set."""
        sets = system.l1.num_sets
        return [i * sets * 32 for i in range(n)]

    def test_conflict_miss_becomes_swap(self):
        system = make_system(l1_size=4096, victim_entries=4)
        a, b, c = self.conflict_addresses(system)
        system.load(a, 0)
        system.load(b, 100)
        system.load(c, 200)  # evicts a into the victim cache
        result = system.load(a, 1000)
        assert result.served_by is ServedBy.VICTIM_CACHE
        # hit time + 1 swap cycle, far cheaper than an L2 trip
        assert result.completion_cycle == 1000 + 1 + 1

    def test_victim_swap_preserves_dirty_data(self):
        system = make_system(l1_size=4096, victim_entries=4)
        a, b, c = self.conflict_addresses(system)
        system.store(a, 0)  # dirty line
        system.load(b, 100)
        system.load(c, 200)  # dirty 'a' parked in the victim cache
        system.load(a, 1000)  # swapped back
        assert system.l1.is_dirty(system.line_of(a))

    def test_displaced_dirty_victim_written_back(self):
        system = make_system(l1_size=4096, victim_entries=1)
        sets = system.l1.num_sets
        addrs = [i * sets * 32 for i in range(5)]
        system.store(addrs[0], 0)
        for i, addr in enumerate(addrs[1:], 1):
            system.load(addr, i * 100)
        from repro.memory import BacksideMemory

        assert isinstance(system.backside, BacksideMemory)
        assert system.backside.stats.writebacks >= 1

    def test_no_victim_cache_by_default(self):
        assert make_system().victim_cache is None

    def test_rejects_negative_entries(self):
        with pytest.raises(ConfigurationError):
            make_system(victim_entries=-1)


class TestWriteThrough:
    def test_store_hit_stays_clean(self):
        system = make_system(write_policy="write-through")
        system.load(0, 0)
        system.store(0, 500)
        assert not system.l1.is_dirty(0)

    def test_store_reaches_l2(self):
        system = make_system(write_policy="write-through")
        system.load(0, 0)
        from repro.memory import BacksideMemory

        assert isinstance(system.backside, BacksideMemory)
        before = system.backside.chip_bus.stats.transfers
        system.store(0, 500)
        assert system.backside.chip_bus.stats.transfers == before + 1

    def test_no_allocate_store_miss_skips_l1(self):
        system = make_system(write_policy="write-through", write_allocate=False)
        system.store(0, 0)
        assert not system.l1.probe(0)
        assert system.stats.l1_store_misses == 1

    def test_allocate_store_miss_fills_l1(self):
        system = make_system(write_policy="write-through", write_allocate=True)
        system.store(0, 0)
        assert system.l1.probe(0)
        assert not system.l1.is_dirty(0)  # data also went through

    def test_eviction_never_needs_writeback(self):
        """Write-through caches hold no dirty data."""
        system = make_system(l1_size=4096, write_policy="write-through")
        sets = system.l1.num_sets
        for i in range(4):
            system.store(i * sets * 32, i * 100)
            system.load(i * sets * 32, i * 100 + 50)
        from repro.memory import BacksideMemory

        assert isinstance(system.backside, BacksideMemory)
        assert system.backside.stats.writebacks == 0

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            make_system(write_policy="write-sideways")

    def test_dram_mode_requires_write_back(self):
        with pytest.raises(ConfigurationError):
            make_system(write_policy="write-through", dram=DramCacheConfig())


class TestBankInterleaving:
    def test_line_interleave_spreads_stream(self):
        banks = BankedPorts(8, "line")
        assert {banks.bank_of(i) for i in range(8)} == set(range(8))

    def test_page_interleave_keeps_pages_together(self):
        banks = BankedPorts(8, "page")
        assert len({banks.bank_of(i) for i in range(32)}) == 1
        assert banks.bank_of(0) != banks.bank_of(32)

    def test_page_interleave_serializes_streams(self):
        """Sequential lines conflict under page interleaving."""
        line_banks = BankedPorts(8, "line")
        page_banks = BankedPorts(8, "page")
        for line in range(16):
            line_banks.reserve(line, 0)
            page_banks.reserve(line, 0)
        assert page_banks.stats.bank_conflicts > line_banks.stats.bank_conflicts

    def test_rejects_unknown_interleave(self):
        with pytest.raises(ValueError):
            BankedPorts(8, "diagonal")

    def test_config_plumbs_interleave(self):
        system = make_system(port_policy="banked", bank_interleave="page")
        assert isinstance(system.arbiter, BankedPorts)
        assert system.arbiter.interleave == "page"


class TestExtensionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=1 << 15)),
            min_size=1,
            max_size=100,
        ),
        st.sampled_from(["write-back", "write-through"]),
        st.sampled_from([0, 4]),
    )
    def test_all_variants_accounting_holds(self, accesses, policy, victims):
        system = make_system(
            l1_size=4096, write_policy=policy, victim_entries=victims
        )
        for i, (is_store, addr) in enumerate(accesses):
            result = (
                system.store(addr, i * 2) if is_store else system.load(addr, i * 2)
            )
            assert result.completion_cycle > i * 2
        stats = system.stats
        assert stats.l1_hits + stats.l1_misses == stats.accesses
        assert sum(stats.served_by.values()) == stats.accesses
