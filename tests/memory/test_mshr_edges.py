"""MSHR merge and overflow edge cases (lockup-free corner behavior)."""

import pytest

from repro.memory import MemoryConfig, MemorySystem
from repro.memory.mshr import MshrFile


def make_system(**overrides) -> MemorySystem:
    return MemorySystem(MemoryConfig(**overrides))


class TestMergeSemantics:
    def test_second_miss_to_pending_line_merges(self):
        mshrs = MshrFile(4)
        first = mshrs.request(0x10, 100)
        assert not first.merged
        mshrs.complete(0x10, 250)
        second = mshrs.request(0x10, 120)
        assert second.merged
        assert second.pending_ready == 250
        assert mshrs.stats.primary_misses == 1
        assert mshrs.stats.merged_misses == 1

    def test_merge_window_closes_when_fill_lands(self):
        mshrs = MshrFile(4)
        mshrs.request(0x10, 100)
        mshrs.complete(0x10, 250)
        late = mshrs.request(0x10, 250)  # request at the fill cycle
        assert not late.merged  # the register already retired

    def test_pending_ready_boundary(self):
        mshrs = MshrFile(4)
        mshrs.complete(0x10, 200)
        assert mshrs.pending_ready(0x10, 199) == 200
        assert mshrs.pending_ready(0x10, 200) is None  # data has arrived

    def test_repeated_merges_share_one_register(self):
        mshrs = MshrFile(4)
        mshrs.request(0x10, 100)
        mshrs.complete(0x10, 400)
        for cycle in (110, 120, 130):
            grant = mshrs.request(0x10, cycle)
            assert grant.merged
        assert mshrs.outstanding(150) == 1
        assert mshrs.stats.merged_misses == 3


class TestOverflow:
    def test_fifth_distinct_miss_waits_for_earliest_register(self):
        mshrs = MshrFile(4)
        for i, ready in enumerate((300, 500, 400, 600)):
            mshrs.request(0x100 + i, 100)
            mshrs.complete(0x100 + i, ready)
        grant = mshrs.request(0x999, 150)
        assert not grant.merged
        assert grant.start_cycle == 300  # earliest fill frees its register
        assert mshrs.stats.full_stall_cycles == 150
        # The evicted register's line no longer merges.
        assert not mshrs.request(0x100, 160).merged

    def test_overflow_after_earliest_retired_is_free(self):
        mshrs = MshrFile(4)
        for i in range(4):
            mshrs.request(0x100 + i, 100)
            mshrs.complete(0x100 + i, 300 + i)
        grant = mshrs.request(0x999, 350)  # line 0x100 retired at 300
        assert grant.start_cycle == 350
        assert mshrs.stats.full_stall_cycles == 0

    def test_outstanding_never_exceeds_entries(self):
        mshrs = MshrFile(2)
        for i in range(10):
            grant = mshrs.request(0x200 + i, i * 5)
            mshrs.complete(0x200 + i, i * 5 + 100)
            assert mshrs.outstanding(grant.start_cycle) <= mshrs.entries


class TestDelayedHitsThroughTheHierarchy:
    def test_load_behind_inflight_fill_waits_for_it(self):
        system = make_system()
        miss = system.load(0, 0)
        chaser = system.load(8, 2)  # same line, fill still in flight
        assert chaser.completion_cycle == miss.completion_cycle
        assert system.stats.delayed_hits == 1

    def test_single_mshr_serializes_distinct_misses(self):
        wide = make_system(mshrs=4)
        narrow = make_system(mshrs=1)
        lines = [i * 0x1000 for i in range(4)]
        wide_done = max(wide.load(a, 0).completion_cycle for a in lines)
        narrow_done = max(narrow.load(a, 0).completion_cycle for a in lines)
        assert narrow_done > wide_done
        assert narrow.mshrs.stats.full_stall_cycles > 0

    def test_mshr_file_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MshrFile(0)
