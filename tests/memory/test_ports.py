"""Tests for the port arbitration models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import BankedPorts, DuplicatePorts, IdealPorts, make_arbiter


class TestIdealPorts:
    def test_two_ports_serve_two_per_cycle(self):
        ports = IdealPorts(2)
        assert ports.reserve(0, 10) == 10
        assert ports.reserve(1, 10) == 10

    def test_third_access_waits(self):
        ports = IdealPorts(2)
        ports.reserve(0, 10)
        ports.reserve(1, 10)
        assert ports.reserve(2, 10) == 11
        assert ports.stats.delayed == 1
        assert ports.stats.wait_cycles == 1

    def test_fully_pipelined(self):
        """Each port accepts a new access every cycle regardless of misses."""
        ports = IdealPorts(1)
        for cycle in range(5):
            assert ports.reserve(0, cycle) == cycle

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            IdealPorts(0)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60),
    )
    def test_never_overbooks_a_cycle(self, nports, cycles):
        """No more than n accesses may start in any single cycle."""
        ports = IdealPorts(nports)
        starts = [ports.reserve(i, c) for i, c in enumerate(sorted(cycles))]
        for cycle in set(starts):
            assert starts.count(cycle) <= nports

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40))
    def test_grant_never_before_request(self, cycles):
        ports = IdealPorts(2)
        for i, c in enumerate(sorted(cycles)):
            assert ports.reserve(i, c) >= c


class TestBankedPorts:
    def test_different_banks_no_conflict(self):
        banks = BankedPorts(8)
        assert banks.reserve(0, 5) == 5
        assert banks.reserve(1, 5) == 5
        assert banks.stats.bank_conflicts == 0

    def test_same_bank_conflicts(self):
        banks = BankedPorts(8)
        assert banks.reserve(0, 5) == 5
        assert banks.reserve(8, 5) == 6  # line 8 maps to bank 0
        assert banks.stats.bank_conflicts == 1

    def test_bank_mapping_interleaved(self):
        banks = BankedPorts(4)
        assert banks.bank_of(0) == 0
        assert banks.bank_of(5) == 1
        assert banks.bank_of(7) == 3

    def test_single_bank_serializes(self):
        banks = BankedPorts(1)
        assert banks.reserve(0, 0) == 0
        assert banks.reserve(1, 0) == 1
        assert banks.reserve(2, 0) == 2

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            BankedPorts(0)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=16),
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=60),
    )
    def test_per_bank_exclusivity(self, nbanks, lines):
        """A bank never starts two accesses in the same cycle."""
        banks = BankedPorts(nbanks)
        schedule: dict[tuple[int, int], int] = {}
        for line in lines:
            start = banks.reserve(line, 0)
            key = (line % nbanks, start)
            schedule[key] = schedule.get(key, 0) + 1
        assert all(count == 1 for count in schedule.values())


class TestDuplicatePorts:
    def test_loads_use_either_copy(self):
        dup = DuplicatePorts()
        assert dup.reserve(0, 3) == 3
        assert dup.reserve(99, 3) == 3
        assert dup.reserve(5, 3) == 4

    def test_store_occupies_both_copies(self):
        dup = DuplicatePorts()
        assert dup.reserve_store(0, 3) == 3
        # both copies now busy at cycle 3
        assert dup.reserve(1, 3) == 4
        assert dup.reserve(2, 3) == 4

    def test_store_waits_for_both_free(self):
        dup = DuplicatePorts()
        dup.reserve(0, 3)  # copy 0 busy at 3
        assert dup.reserve_store(1, 3) == 4

    def test_has_two_ports(self):
        assert DuplicatePorts().ports == 2


class TestFactory:
    def test_makes_all_policies(self):
        assert isinstance(make_arbiter("ideal", ports=3), IdealPorts)
        assert isinstance(make_arbiter("banked", banks=8), BankedPorts)
        assert isinstance(make_arbiter("duplicate"), DuplicatePorts)

    def test_configures_counts(self):
        assert make_arbiter("ideal", ports=3).ports == 3
        assert make_arbiter("banked", banks=16).banks == 16

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_arbiter("magic")
