"""Tests for the full MemorySystem facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    ConfigurationError,
    DramCacheConfig,
    MemoryConfig,
    MemorySystem,
    ServedBy,
)


def make_system(**overrides) -> MemorySystem:
    return MemorySystem(MemoryConfig(**overrides))


class TestBasicLoadPath:
    def test_hit_latency_is_hit_cycles(self):
        system = make_system(l1_hit_cycles=1)
        system.load(0, 0)  # cold miss warms the line
        result = system.load(0, 500)
        assert result.served_by is ServedBy.L1
        assert result.completion_cycle == 501

    def test_pipelined_cache_hit_latency(self):
        for hit in (1, 2, 3):
            system = make_system(l1_hit_cycles=hit)
            system.load(0, 0)
            result = system.load(0, 500)
            assert result.completion_cycle == 500 + hit

    def test_cold_miss_served_by_memory(self):
        system = make_system()
        result = system.load(0, 0)
        assert result.served_by is ServedBy.MEMORY
        assert result.completion_cycle > 70

    def test_spatial_hit_within_line(self):
        system = make_system()
        system.load(0, 0)
        result = system.load(24, 500)  # same 32 B line
        assert result.served_by is ServedBy.L1

    def test_l2_serves_l1_victims(self):
        system = make_system(l1_size=4096)
        system.load(0, 0)
        # Evict line 0 from the 2-way set by loading two conflicting lines.
        sets = 4096 // (2 * 32)
        system.load(sets * 32 * 1, 200)
        system.load(sets * 32 * 2, 400)
        result = system.load(0, 1000)
        assert result.served_by is ServedBy.L2

    def test_stats_accounting(self):
        system = make_system()
        system.load(0, 0)
        system.load(0, 500)
        system.store(64, 600)
        stats = system.stats
        assert stats.loads == 2 and stats.stores == 1
        assert stats.l1_load_hits == 1 and stats.l1_load_misses == 1
        assert stats.l1_hits + stats.l1_misses == stats.accesses


class TestPortContention:
    def test_single_port_serializes_loads(self):
        system = make_system(port_policy="ideal", ports=1)
        system.load(0, 0)
        system.load(64, 0)
        for addr in (0, 64):
            system.load(addr, 500)
        a = system.load(0, 1000)
        b = system.load(64, 1000)
        assert a.port_start_cycle == 1000
        assert b.port_start_cycle == 1001

    def test_two_ports_parallel_loads(self):
        system = make_system(port_policy="ideal", ports=2)
        for addr in (0, 64):
            system.load(addr, 0)
        a = system.load(0, 1000)
        b = system.load(64, 1000)
        assert a.port_start_cycle == b.port_start_cycle == 1000

    def test_banked_conflict(self):
        system = make_system(port_policy="banked", banks=8)
        line = system.line_bytes
        for addr in (0, 8 * line):
            system.load(addr, 0)
        a = system.load(0, 1000)
        b = system.load(8 * line, 1000)  # same bank
        assert b.port_start_cycle == a.port_start_cycle + 1

    def test_duplicate_store_blocks_both_ports(self):
        system = make_system(port_policy="duplicate")
        system.load(0, 0)
        system.load(64, 0)
        system.store(0, 1000)
        a = system.load(64, 1000)
        assert a.port_start_cycle == 1001


class TestLineBufferBehavior:
    def test_lb_hit_is_one_cycle_no_port(self):
        system = make_system(line_buffer=True, port_policy="ideal", ports=1)
        system.load(0, 0)
        result = system.load(8, 500)  # same line: LB hit
        assert result.served_by is ServedBy.LINE_BUFFER
        assert result.completion_cycle == 501
        # The port was not consumed: another load starts immediately.
        other = system.load(64, 500)
        assert other.port_start_cycle == 500

    def test_lb_filled_on_load_completion(self):
        system = make_system(line_buffer=True)
        system.load(0, 0)
        assert system.line_buffer is not None
        assert len(system.line_buffer) == 1

    def test_lb_invalidated_on_l1_eviction(self):
        system = make_system(line_buffer=True, l1_size=4096)
        system.load(0, 0)
        sets = 4096 // (2 * 32)
        system.load(sets * 32, 200)
        system.load(2 * sets * 32, 400)  # evicts line 0 from L1
        result = system.load(0, 1000)
        assert result.served_by is not ServedBy.LINE_BUFFER

    def test_no_lb_by_default(self):
        assert make_system().line_buffer is None


class TestMshrBehavior:
    def test_merged_miss_uses_pending_fill(self):
        system = make_system(port_policy="ideal", ports=2)
        first = system.load(0, 0)
        merged = system.load(8, 0)  # same line, still in flight
        assert merged.completion_cycle <= first.completion_cycle + 1
        assert system.mshrs.stats.merged_misses == 1

    def test_mshr_exhaustion_delays_fifth_miss(self):
        system = make_system(port_policy="ideal", ports=4, mshrs=4)
        results = [system.load(i * 4096, 0) for i in range(5)]
        assert results[4].completion_cycle > max(
            r.completion_cycle for r in results[:4]
        )
        assert system.mshrs.stats.full_stall_cycles > 0


class TestStores:
    def test_store_hit_marks_dirty(self):
        system = make_system()
        system.load(0, 0)
        system.store(0, 500)
        assert system.l1.is_dirty(0)

    def test_store_miss_allocates(self):
        system = make_system()
        result = system.store(0, 0)
        assert result.served_by is ServedBy.MEMORY
        assert system.l1.probe(0)
        assert system.l1.is_dirty(0)

    def test_dirty_eviction_writes_back(self):
        system = make_system(l1_size=4096)
        system.store(0, 0)
        sets = 4096 // (2 * 32)
        system.load(sets * 32, 200)
        system.load(2 * sets * 32, 400)  # evicts dirty line 0
        from repro.memory import BacksideMemory

        assert isinstance(system.backside, BacksideMemory)
        assert system.backside.stats.writebacks == 1


class TestDramMode:
    def make_dram(self, **dram_overrides):
        return make_system(dram=DramCacheConfig(**dram_overrides))

    def test_row_buffer_cache_geometry(self):
        system = self.make_dram()
        assert system.l1.size_bytes == 16 * 1024
        assert system.l1.line_bytes == 512
        assert system.config.l1_hit_cycles == 1

    def test_row_buffer_hit_one_cycle(self):
        system = self.make_dram()
        system.load(0, 0)
        result = system.load(100, 500)  # same 512 B row
        assert result.served_by is ServedBy.ROW_BUFFER
        assert result.completion_cycle == 501

    def test_row_miss_pays_dram_hit(self):
        system = self.make_dram(dram_hit_cycles=6)
        system.load(0, 0)  # warm DRAM
        # Evict row 0 from the 16 KB row cache (16 sets, 2 ways of 512 B).
        sets = 16 * 1024 // (2 * 512)
        system.load(sets * 512, 200)
        system.load(2 * sets * 512, 400)
        result = system.load(0, 1000)
        assert result.served_by is ServedBy.DRAM_CACHE
        assert result.completion_cycle == 1000 + 1 + 6

    def test_longer_dram_hit_time_slower(self):
        completions = []
        for hit in (6, 8):
            system = self.make_dram(dram_hit_cycles=hit)
            system.load(0, 0)
            sets = 16 * 1024 // (2 * 512)
            system.load(sets * 512, 200)
            system.load(2 * sets * 512, 400)
            completions.append(system.load(0, 1000).completion_cycle)
        assert completions[1] > completions[0]


class TestValidation:
    def test_rejects_unknown_port_policy(self):
        with pytest.raises(ConfigurationError):
            make_system(port_policy="psychic")

    def test_rejects_bad_line_size(self):
        with pytest.raises(ConfigurationError):
            make_system(l1_line=24)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=1 << 16)),
            min_size=1,
            max_size=120,
        )
    )
    def test_completion_never_precedes_issue(self, accesses):
        system = make_system(line_buffer=True)
        cycle = 0
        for is_store, addr in accesses:
            result = (
                system.store(addr, cycle) if is_store else system.load(addr, cycle)
            )
            assert result.completion_cycle > cycle
            assert result.port_start_cycle >= cycle
            cycle += 1

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=100)
    )
    def test_served_by_totals_match_accesses(self, addrs):
        system = make_system()
        for i, addr in enumerate(addrs):
            system.load(addr, i * 2)
        assert sum(system.stats.served_by.values()) == system.stats.accesses
