"""Tests for the MSHR file and the bandwidth-limited buses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Bus, MshrFile, bytes_per_cycle


class TestMshrFile:
    def test_primary_miss_starts_immediately(self):
        mshrs = MshrFile(4)
        grant = mshrs.request(1, 10)
        assert grant.start_cycle == 10 and not grant.merged

    def test_secondary_miss_merges(self):
        mshrs = MshrFile(4)
        mshrs.request(1, 10)
        mshrs.complete(1, 60)
        grant = mshrs.request(1, 15)
        assert grant.merged and grant.pending_ready == 60
        assert mshrs.stats.merged_misses == 1

    def test_full_file_stalls_new_primary_miss(self):
        mshrs = MshrFile(2)
        for line, ready in ((1, 100), (2, 120)):
            mshrs.request(line, 10)
            mshrs.complete(line, ready)
        grant = mshrs.request(3, 11)
        assert grant.start_cycle == 100  # waits for earliest retire
        assert mshrs.stats.full_stall_cycles == 89

    def test_retired_entries_free_registers(self):
        mshrs = MshrFile(1)
        mshrs.request(1, 0)
        mshrs.complete(1, 50)
        grant = mshrs.request(2, 60)  # after line 1 retired
        assert grant.start_cycle == 60 and not grant.merged

    def test_merge_after_retire_is_new_miss(self):
        mshrs = MshrFile(4)
        mshrs.request(1, 0)
        mshrs.complete(1, 50)
        grant = mshrs.request(1, 55)
        assert not grant.merged

    def test_outstanding_count(self):
        mshrs = MshrFile(4)
        mshrs.request(1, 0)
        mshrs.complete(1, 50)
        mshrs.request(2, 0)
        mshrs.complete(2, 70)
        assert mshrs.outstanding(10) == 2
        assert mshrs.outstanding(60) == 1

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40),
    )
    def test_outstanding_never_exceeds_capacity(self, entries, lines):
        mshrs = MshrFile(entries)
        cycle = 0
        for line in lines:
            grant = mshrs.request(line, cycle)
            if not grant.merged:
                mshrs.complete(line, grant.start_cycle + 40)
            assert mshrs.outstanding(cycle) <= entries
            cycle += 1


class TestBus:
    def test_occupancy_rounds_up(self):
        bus = Bus(12.5)
        assert bus.occupancy(32) == 3
        assert bus.occupancy(64) == 6
        assert bus.occupancy(1) == 1

    def test_transfers_serialize(self):
        bus = Bus(8.0)
        first = bus.transfer(0, 64)  # 8 cycles
        assert (first.start_cycle, first.done_cycle) == (0, 8)
        second = bus.transfer(2, 64)
        assert second.start_cycle == 8
        assert bus.stats.queue_cycles == 6

    def test_idle_bus_starts_immediately(self):
        bus = Bus(8.0)
        bus.transfer(0, 8)
        transfer = bus.transfer(100, 8)
        assert transfer.start_cycle == 100

    def test_utilization(self):
        bus = Bus(8.0)
        bus.transfer(0, 32)  # 4 cycles busy
        assert bus.utilization(8) == pytest.approx(0.5)
        assert bus.utilization(0) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            Bus(0)
        with pytest.raises(ValueError):
            Bus(8.0).transfer(0, 0)

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=1, max_value=128), min_size=1, max_size=30))
    def test_bandwidth_never_exceeded(self, sizes):
        """Total busy time >= total bytes / peak bandwidth."""
        bus = Bus(12.5)
        end = 0
        for nbytes in sizes:
            end = bus.transfer(0, nbytes).done_cycle
        assert end >= sum(sizes) / 12.5


class TestBandwidthConversion:
    def test_paper_reference_values(self):
        """2.5 GB/s and 1.6 GB/s are 12.5 and 8 bytes/cycle at 200 MHz."""
        assert bytes_per_cycle(2.5e9, 25.0) == pytest.approx(12.5)
        assert bytes_per_cycle(1.6e9, 25.0) == pytest.approx(8.0)

    def test_faster_clock_fewer_bytes_per_cycle(self):
        assert bytes_per_cycle(2.5e9, 10.0) == pytest.approx(5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bytes_per_cycle(0, 25.0)
