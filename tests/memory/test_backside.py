"""Tests for the L2 + main-memory backside and the DRAM-cache backside."""

import pytest

from repro.memory import (
    BacksideConfig,
    BacksideMemory,
    DramCacheBackside,
    DramCacheConfig,
    ServedBy,
)


def make_backside(**overrides):
    config = BacksideConfig(**overrides)
    return BacksideMemory(config, l1_line_bytes=32)


class TestBacksideMemory:
    def test_cold_miss_goes_to_memory(self):
        backside = make_backside()
        response = backside.fetch_line(0, cycle=0)
        assert response.served_by is ServedBy.MEMORY
        # >= L2 lookup (10) + memory (60) + 64B over 8 B/cy (8) + 32B over 12.5 (3)
        assert response.ready_cycle >= 81

    def test_second_access_hits_l2(self):
        backside = make_backside()
        backside.fetch_line(0, cycle=0)
        response = backside.fetch_line(0, cycle=200)
        assert response.served_by is ServedBy.L2
        # 10-cycle L2 + 3-cycle 32 B transfer on an idle bus
        assert response.ready_cycle == 213

    def test_adjacent_l1_lines_share_l2_line(self):
        """64 B L2 lines cover two 32 B L1 lines."""
        backside = make_backside()
        backside.fetch_line(0, cycle=0)
        response = backside.fetch_line(1, cycle=200)
        assert response.served_by is ServedBy.L2

    def test_l2_hit_latency_is_configured(self):
        backside = make_backside(l2_hit_cycles=20)
        backside.fetch_line(0, cycle=0)
        response = backside.fetch_line(0, cycle=500)
        assert response.ready_cycle == 500 + 20 + 3

    def test_bus_contention_delays_back_to_back_misses(self):
        backside = make_backside()
        first = backside.fetch_line(0, cycle=0)
        second = backside.fetch_line(1000, cycle=0)
        assert second.ready_cycle > first.ready_cycle

    def test_writeback_counts(self):
        backside = make_backside()
        backside.writeback_line(5, cycle=0)
        assert backside.stats.writebacks == 1

    def test_l2_miss_rate_stat(self):
        backside = make_backside()
        backside.fetch_line(0, 0)
        backside.fetch_line(0, 200)
        assert backside.stats.l2_miss_rate == pytest.approx(0.5)

    def test_rejects_l1_line_larger_than_l2_line(self):
        with pytest.raises(ValueError):
            BacksideMemory(BacksideConfig(l2_line=16), l1_line_bytes=32)


class TestDramCacheBackside:
    def test_dram_hit_timing(self):
        dram = DramCacheBackside(DramCacheConfig(dram_hit_cycles=6))
        dram.fetch_line(0, cycle=0)  # cold: goes to memory and fills
        response = dram.fetch_line(0, cycle=500)
        assert response.served_by is ServedBy.DRAM_CACHE
        assert response.ready_cycle == 506

    def test_dram_miss_goes_to_memory(self):
        dram = DramCacheBackside(DramCacheConfig())
        response = dram.fetch_line(0, cycle=0)
        assert response.served_by is ServedBy.MEMORY
        # 6 (DRAM) + 60 (memory) + 512B/8 = 64 cycles transfer
        assert response.ready_cycle >= 130

    def test_bank_busy_for_full_access(self):
        """DRAM banks are not pipelined: same-bank accesses serialize."""
        config = DramCacheConfig(dram_hit_cycles=6, dram_banks=8)
        dram = DramCacheBackside(config)
        dram.fetch_line(0, cycle=0)
        dram.fetch_line(8, cycle=500)  # warm both lines (same bank 0)
        first = dram.fetch_line(0, cycle=1000)
        second = dram.fetch_line(8, cycle=1000)
        assert first.ready_cycle == 1006
        assert second.ready_cycle == 1012
        assert dram.stats.bank_wait_cycles >= 6

    def test_different_banks_overlap(self):
        dram = DramCacheBackside(DramCacheConfig())
        dram.fetch_line(0, cycle=0)
        dram.fetch_line(1, cycle=500)
        a = dram.fetch_line(0, cycle=1000)
        b = dram.fetch_line(1, cycle=1000)
        assert a.ready_cycle == b.ready_cycle == 1006

    def test_hit_time_sweep_changes_latency(self):
        """Figure 7 varies the DRAM hit time from six to eight cycles."""
        latencies = []
        for hit in (6, 7, 8):
            dram = DramCacheBackside(DramCacheConfig(dram_hit_cycles=hit))
            dram.fetch_line(0, cycle=0)
            latencies.append(dram.fetch_line(0, cycle=500).ready_cycle - 500)
        assert latencies == [6, 7, 8]

    def test_writeback_row(self):
        dram = DramCacheBackside(DramCacheConfig())
        dram.writeback_line(3, cycle=0)
        assert dram.dram.is_dirty(3)
