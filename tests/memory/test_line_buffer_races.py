"""Line-buffer coherence races: eviction and hits while fills are pending."""

import random

from repro.memory import MemoryConfig, MemorySystem
from repro.robustness import audit_memory


def make_system(**overrides) -> MemorySystem:
    defaults = dict(line_buffer=True)
    defaults.update(overrides)
    return MemorySystem(MemoryConfig(**defaults))


class TestHitWhilePending:
    def test_buffer_hit_on_inflight_line_waits_for_the_fill(self):
        system = make_system()
        miss = system.load(0, 0)
        # The line is now in the buffer, but its data is still in flight:
        # a buffer hit must forward at fill time, not pretend one cycle.
        hit = system.load(8, 1)
        assert hit.completion_cycle == miss.completion_cycle
        assert hit.completion_cycle > 2

    def test_buffer_hit_after_fill_is_one_cycle(self):
        system = make_system()
        miss = system.load(0, 0)
        later = miss.completion_cycle + 10
        hit = system.load(8, later)
        assert hit.completion_cycle == later + 1


class TestEvictionWhilePending:
    def test_l1_eviction_invalidates_buffered_copy(self):
        # Tiny direct-mapped L1: two lines one set apart conflict.
        system = make_system(l1_size=1024, l1_assoc=1)
        sets = 1024 // 32
        system.load(0, 0)
        assert system.line_of(0) in system.line_buffer.resident_lines()
        system.load(sets * 32, 100)  # evicts line 0 from the L1
        assert system.line_of(0) not in system.line_buffer.resident_lines()
        audit_memory(system, 1000)

    def test_eviction_of_still_pending_line_stays_coherent(self):
        system = make_system(l1_size=1024, l1_assoc=1, mshrs=4)
        sets = 1024 // 32
        # Both misses land in the same set back to back: the second fill
        # evicts the first line while the first fill is still in flight.
        system.load(0, 0)
        system.load(sets * 32, 1)
        assert system.line_of(0) not in system.line_buffer.resident_lines()
        audit_memory(system, 10_000)

    def test_random_hammer_keeps_buffer_coherent(self):
        system = make_system(l1_size=2048, l1_assoc=1, victim_entries=4)
        rng = random.Random(7)
        cycle = 0
        for _ in range(3_000):
            address = rng.randrange(64) * 32 + rng.randrange(32)
            cycle += rng.randrange(3)
            if rng.random() < 0.3:
                system.store(address, cycle)
            else:
                system.load(address, cycle)
        audit_memory(system, cycle + 10_000)
        for line in system.line_buffer.resident_lines():
            assert system.l1.probe(line)
