"""Regression: trimming merged-miss bookkeeping must not lose live fills.

``MemorySystem._pending_served`` remembers which level is filling each
outstanding miss so that *delayed hits* (a later reference to a line
whose fill is still in flight) report the right ``served_by``.  The map
is bounded by ``_trim_pending``; the old implementation kept only the
most recent entries by insertion order, so a long-latency fill could be
evicted while still in flight and a delayed hit on it would fall back
to the ``ServedBy.L2`` default, misattributing the traffic.

The DRAM-cache organization (section 2.4) exposes this: its banks are
independent, so one row's main-memory fill stays in flight for
thousands of cycles while other banks complete fast DRAM hits -- each a
primary miss that grows the bookkeeping map past its trim threshold.
"""

from repro.memory.common import ServedBy
from repro.memory.dram_cache import DramCacheConfig
from repro.memory.hierarchy import MemoryConfig, MemorySystem


def _dram_system(memory_cycles: int = 10_000) -> MemorySystem:
    return MemorySystem(
        MemoryConfig(mshrs=4, dram=DramCacheConfig(memory_cycles=memory_cycles))
    )


def test_delayed_hit_keeps_memory_attribution_across_trims():
    memory = _dram_system()
    row_bytes = memory.line_bytes  # 512 B: a row-buffer line is a DRAM row

    # Row 0 misses the row-buffer cache AND the DRAM array: its fill
    # comes from main memory and stays in flight for ~10k cycles.
    first = memory.load(0, 0)
    assert first.served_by is ServedBy.MEMORY

    # Meanwhile 18 rows on *other* DRAM banks miss the row-buffer cache
    # and fill from the (prefilled) DRAM array in a few cycles each,
    # overflowing the bookkeeping bound of 4 * mshrs = 16 entries and
    # forcing trims while row 0's fill is still outstanding.  Rows avoid
    # bank 0 (busy with row 0's fill) and row 0's cache set stays 2-way
    # so row 0 remains resident.
    rows = [row for row in range(1, 22) if row % memory.config.dram.dram_banks]
    rows = rows[:18]
    memory.prefill_backside(rows)
    cycle = 100
    for row in rows:
        result = memory.load(row * row_bytes, cycle)
        assert result.served_by is ServedBy.DRAM_CACHE
        cycle += 12

    # A delayed hit on row 0 must still blame main memory -- not the
    # ``ServedBy.L2`` default (there is no L2 in DRAM mode at all).
    again = memory.load(0, cycle)
    assert again.served_by is ServedBy.MEMORY
    assert again.completion_cycle == first.completion_cycle


def test_trim_still_bounds_the_map():
    memory = _dram_system()
    row_bytes = memory.line_bytes
    rows = [row for row in range(1, 90) if row % memory.config.dram.dram_banks]
    memory.prefill_backside(rows)
    memory.load(0, 0)  # one long-latency in-flight fill
    cycle = 100
    for row in rows:
        memory.load(row * row_bytes, cycle)
        cycle += 12
    # Bounded: the trim threshold (4 * mshrs) plus in-flight exemptions.
    assert len(memory._pending_served) <= 5 * memory.config.mshrs
