"""Tests for the functional set-associative / fully-associative caches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import FullyAssociativeCache, SetAssociativeCache
from repro.memory.common import line_address


class TestLineAddress:
    def test_basic(self):
        assert line_address(0, 32) == 0
        assert line_address(31, 32) == 0
        assert line_address(32, 32) == 1
        assert line_address(1024, 32) == 32

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            line_address(100, 24)


class TestSetAssociativeCache:
    def make(self, size=1024, assoc=2, line=32):
        return SetAssociativeCache(size, assoc, line)

    def test_geometry(self):
        cache = self.make()
        assert cache.num_sets == 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 2, 32)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(3 * 64, 2, 32)  # 3 sets

    def test_cold_miss_then_hit(self):
        cache = self.make()
        assert not cache.lookup(5)
        assert cache.fill(5) is None
        assert cache.lookup(5)

    def test_probe_does_not_touch_lru(self):
        cache = self.make(size=128, assoc=2, line=32)  # 2 sets
        cache.fill(0)  # set 0
        cache.fill(2)  # set 0; LRU order: 2, 0
        assert cache.probe(0)
        # 0 is still LRU because probe didn't promote it
        evicted = cache.fill(4)  # set 0, evicts LRU
        assert evicted is not None and evicted.line == 0

    def test_lru_eviction_order(self):
        cache = self.make(size=128, assoc=2, line=32)
        cache.fill(0)
        cache.fill(2)
        cache.lookup(0)  # promote 0; victim should now be 2
        evicted = cache.fill(4)
        assert evicted is not None and evicted.line == 2

    def test_dirty_tracking(self):
        cache = self.make()
        cache.fill(7)
        assert not cache.is_dirty(7)
        cache.lookup(7, write=True)
        assert cache.is_dirty(7)

    def test_dirty_eviction_reported(self):
        cache = self.make(size=128, assoc=2, line=32)
        cache.fill(0, dirty=True)
        cache.fill(2)
        cache.fill(4)
        # 0 was LRU and dirty
        assert not cache.probe(0)

    def test_fill_dirty_flag(self):
        cache = self.make(size=128, assoc=2, line=32)
        cache.fill(0, dirty=True)
        cache.fill(2)
        evicted = cache.fill(4)
        assert evicted is not None and evicted.line == 0 and evicted.dirty

    def test_refill_resident_line_keeps_single_copy(self):
        cache = self.make()
        cache.fill(3)
        assert cache.fill(3) is None
        assert len(cache) == 1

    def test_invalidate(self):
        cache = self.make()
        cache.fill(9, dirty=True)
        assert cache.invalidate(9)
        assert not cache.probe(9)
        assert not cache.is_dirty(9)
        assert not cache.invalidate(9)

    def test_set_isolation(self):
        """Lines mapping to different sets never evict each other."""
        cache = self.make(size=128, assoc=2, line=32)  # 2 sets
        cache.fill(0)  # set 0
        cache.fill(1)  # set 1
        cache.fill(2)  # set 0
        cache.fill(3)  # set 1
        assert len(cache) == 4

    def test_resident_lines_roundtrip(self):
        cache = self.make()
        lines = [0, 1, 17, 34]  # sets 0, 1, 1, 2 in a 16-set cache
        for line in lines:
            cache.fill(line)
        assert sorted(cache.resident_lines()) == sorted(lines)

    def test_capacity_never_exceeded(self):
        cache = self.make(size=256, assoc=2, line=32)
        for line in range(100):
            cache.fill(line)
        assert len(cache) <= 8


class TestSetAssociativeProperties:
    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
    def test_inclusion_larger_cache_never_misses_more(self, trace):
        """LRU stack property: a bigger cache's misses are a subset."""
        small = SetAssociativeCache(256, 8, 32)  # fully assoc: 8 lines
        big = SetAssociativeCache(512, 16, 32)  # fully assoc: 16 lines
        small_misses = big_misses = 0
        for line in trace:
            if not small.lookup(line):
                small_misses += 1
                small.fill(line)
            if not big.lookup(line):
                big_misses += 1
                big.fill(line)
        assert big_misses <= small_misses

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=200))
    def test_occupancy_bounded(self, trace):
        cache = SetAssociativeCache(512, 2, 32)
        for line in trace:
            if not cache.lookup(line):
                cache.fill(line)
        assert len(cache) <= 16

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=200))
    def test_hit_iff_resident(self, trace):
        """A lookup hits exactly when a previous fill is still resident."""
        cache = SetAssociativeCache(256, 2, 32)
        reference: set[int] = set()
        for line in trace:
            hit = cache.lookup(line)
            assert hit == (line in set(cache.resident_lines()) | set())
            if not hit:
                evicted = cache.fill(line)
                if evicted is not None:
                    reference.discard(evicted.line)
            reference.add(line)


class TestFullyAssociativeCache:
    def test_lru_behavior(self):
        cache = FullyAssociativeCache(2, 32)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)
        evicted = cache.fill(3)
        assert evicted == 2

    def test_capacity(self):
        cache = FullyAssociativeCache(4, 32)
        for line in range(10):
            cache.fill(line)
        assert len(cache) == 4

    def test_invalidate_and_clear(self):
        cache = FullyAssociativeCache(4, 32)
        cache.fill(5)
        assert cache.invalidate(5)
        assert not cache.invalidate(5)
        cache.fill(6)
        cache.clear()
        assert len(cache) == 0

    def test_refill_no_duplicate(self):
        cache = FullyAssociativeCache(4, 32)
        cache.fill(1)
        assert cache.fill(1) is None
        assert len(cache) == 1

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(0, 32)
