"""Tests for the level-zero line buffer."""

from repro.memory import LineBuffer


class TestLineBuffer:
    def test_miss_then_hit_after_fill(self):
        lb = LineBuffer(entries=4)
        assert not lb.load_lookup(3)
        lb.fill(3)
        assert lb.load_lookup(3)
        assert lb.stats.load_hits == 1
        assert lb.stats.load_lookups == 2

    def test_lru_capacity(self):
        lb = LineBuffer(entries=2)
        lb.fill(1)
        lb.fill(2)
        lb.fill(3)  # evicts 1
        assert not lb.load_lookup(1)
        assert lb.load_lookup(2)
        assert lb.load_lookup(3)

    def test_store_updates_only_resident_lines(self):
        lb = LineBuffer(entries=4)
        lb.store_update(9)  # no allocate on store
        assert not lb.load_lookup(9)
        lb.fill(9)
        lb.store_update(9)
        assert lb.stats.store_updates == 1

    def test_invalidation_on_cache_eviction(self):
        lb = LineBuffer(entries=4)
        lb.fill(5)
        lb.invalidate(5)
        assert not lb.load_lookup(5)
        assert lb.stats.invalidations == 1
        lb.invalidate(5)  # idempotent, not double counted
        assert lb.stats.invalidations == 1

    def test_hit_rate(self):
        lb = LineBuffer(entries=4)
        lb.fill(1)
        lb.load_lookup(1)
        lb.load_lookup(2)
        assert lb.stats.hit_rate == 0.5

    def test_hit_rate_no_lookups(self):
        assert LineBuffer().stats.hit_rate == 0.0

    def test_default_is_32_entries(self):
        """The paper's line buffer has 32 entries."""
        assert LineBuffer().entries == 32

    def test_spatial_locality_one_fill_many_hits(self):
        """Sequential words in one line hit after a single fill."""
        lb = LineBuffer(entries=4, line_bytes=32)
        lb.fill(0)
        hits = sum(lb.load_lookup(addr // 32) for addr in range(0, 32, 8))
        assert hits == 4
