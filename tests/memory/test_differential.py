"""Differential tests: the timed hierarchy against functional oracles.

The MemorySystem layers timing (ports, MSHRs, buses) on top of
functional cache state.  Whatever the timing does, the *hit/miss
decisions* must match a plain reference cache fed the same stream --
these tests run both side by side.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryConfig, MemorySystem, SetAssociativeCache

ACCESS = st.tuples(
    st.booleans(), st.integers(min_value=0, max_value=1 << 14)
)


class TestHitMissOracle:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(ACCESS, min_size=1, max_size=300))
    def test_writeback_matches_reference_cache(self, accesses):
        """Same stream, same geometry: identical hit/miss sequence.

        Delayed hits (line present but fill in flight) are counted as
        hits by the system and as hits by the oracle, so the comparison
        is exact.
        """
        system = MemorySystem(MemoryConfig(l1_size=2048))
        oracle = SetAssociativeCache(2048, 2, 32)
        mism = 0
        for i, (is_store, address) in enumerate(accesses):
            line = address >> 5
            oracle_hit = oracle.lookup(line, write=is_store)
            if not oracle_hit:
                oracle.fill(line, dirty=is_store)
            before_hits = system.stats.l1_hits
            if is_store:
                system.store(address, i * 200)  # spaced: no fills in flight
            else:
                system.load(address, i * 200)
            system_hit = system.stats.l1_hits == before_hits + 1
            mism += system_hit != oracle_hit
        assert mism == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ACCESS, min_size=1, max_size=200))
    def test_dirty_state_matches_reference(self, accesses):
        system = MemorySystem(MemoryConfig(l1_size=2048))
        oracle = SetAssociativeCache(2048, 2, 32)
        for i, (is_store, address) in enumerate(accesses):
            line = address >> 5
            if not oracle.lookup(line, write=is_store):
                oracle.fill(line, dirty=is_store)
            if is_store:
                system.store(address, i * 200)
            else:
                system.load(address, i * 200)
        for line in oracle.resident_lines():
            assert system.l1.probe(line)
            assert system.l1.is_dirty(line) == oracle.is_dirty(line)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ACCESS, min_size=1, max_size=200))
    def test_warm_equals_replaying_loads(self, accesses):
        """warm() must leave the L1 in the same state as timed access."""
        warmed = MemorySystem(MemoryConfig(l1_size=2048))
        warmed.warm([(s, a) for s, a in accesses])
        timed = MemorySystem(MemoryConfig(l1_size=2048))
        for i, (is_store, address) in enumerate(accesses):
            if is_store:
                timed.store(address, i * 200)
            else:
                timed.load(address, i * 200)
        assert sorted(warmed.l1.resident_lines()) == sorted(
            timed.l1.resident_lines()
        )


class TestTimingMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(ACCESS, min_size=5, max_size=120))
    def test_slower_hit_time_never_faster_overall(self, accesses):
        """Total latency with 3-cycle hits >= with 1-cycle hits."""
        totals = []
        for hit in (1, 3):
            system = MemorySystem(MemoryConfig(l1_hit_cycles=hit))
            total = 0
            for i, (is_store, address) in enumerate(accesses):
                result = (
                    system.store(address, i * 4)
                    if is_store
                    else system.load(address, i * 4)
                )
                total += result.completion_cycle - i * 4
            totals.append(total)
        assert totals[1] >= totals[0]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(ACCESS, min_size=5, max_size=120))
    def test_bigger_cache_never_more_l1_misses(self, accesses):
        counts = []
        for size in (1024, 8192):
            system = MemorySystem(MemoryConfig(l1_size=size, l1_assoc=8))
            for i, (is_store, address) in enumerate(accesses):
                if is_store:
                    system.store(address, i * 4)
                else:
                    system.load(address, i * 4)
            counts.append(system.stats.l1_misses)
        # 8-way LRU caches nest: the bigger one cannot miss more.
        assert counts[1] <= counts[0]
