"""Golden-reference regression tests for the paper's figures.

Each test simulates a figure's full design grid at the fast test
budget and compares the numbers against a committed snapshot in
``tests/golden/*.json``.  The simulator is deterministic (seeded
workloads, hash-stable addresses), so the comparison is **exact** by
default; the comparator takes a relative tolerance for the day a
legitimate accuracy/perf trade is introduced deliberately.

When a simulator change intentionally shifts the numbers, regenerate
the snapshots and commit the diff::

    python -m pytest tests/golden --update-golden
    git diff tests/golden/   # review the drift, then commit

An unexplained diff here is the bug the suite exists to catch: some
refactor changed simulated timing.
"""

import dataclasses
import json
import math
from pathlib import Path

import pytest

from repro import kernel
from repro.core import figures
from repro.core.experiment import ExperimentSettings
from repro.engine.executor import get_engine
from repro.kernel import tracecache

GOLDEN_DIR = Path(__file__).parent

#: The budget every snapshot was recorded at.  Changing it invalidates
#: every golden file (regenerate with --update-golden).
SETTINGS = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)

BENCHMARKS = ("gcc", "tomcatv", "database")

pytestmark = pytest.mark.golden


@pytest.fixture(params=kernel.BACKEND_NAMES)
def backend(request):
    """Every snapshot holds for every backend -- one golden truth.

    The engine memo and the trace cache are cleared first so the second
    backend actually simulates instead of replaying the first's
    memoized results.
    """
    get_engine().memo.clear()
    tracecache.clear()
    with kernel.use_backend(request.param):
        yield request.param


# ---------------------------------------------------------------------------
# Snapshot plumbing
# ---------------------------------------------------------------------------


def _jsonify(value):
    """Figures return dicts with tuple keys and dataclass leaves; fold
    everything to plain JSON with deterministic string keys."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, float) and math.isnan(value):
        return "NaN"  # JSON-safe, still comparable
    return value


def _compare(path, expected, actual, rel_tol, problems):
    """Recursive comparison; collects dotted-path mismatch descriptions."""
    if type(expected) is not type(actual):
        problems.append(
            f"{path}: type changed {type(expected).__name__} -> "
            f"{type(actual).__name__}"
        )
        return
    if isinstance(expected, dict):
        for key in expected.keys() | actual.keys():
            if key not in actual:
                problems.append(f"{path}.{key}: missing from current output")
            elif key not in expected:
                problems.append(f"{path}.{key}: not in golden snapshot")
            else:
                _compare(f"{path}.{key}", expected[key], actual[key], rel_tol, problems)
    elif isinstance(expected, list):
        if len(expected) != len(actual):
            problems.append(
                f"{path}: length {len(expected)} -> {len(actual)}"
            )
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _compare(f"{path}[{i}]", e, a, rel_tol, problems)
    elif isinstance(expected, float):
        if not math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=0.0):
            problems.append(f"{path}: {expected!r} -> {actual!r}")
    elif expected != actual:
        problems.append(f"{path}: {expected!r} -> {actual!r}")


def check_golden(request, name: str, data, rel_tol: float = 0.0) -> None:
    """Compare ``data`` against ``tests/golden/<name>.json`` (or rewrite it)."""
    actual = _jsonify(data)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        golden_path.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"golden snapshot {name}.json rewritten")
    if not golden_path.exists():
        pytest.fail(
            f"no golden snapshot {name}.json; record one with "
            "'python -m pytest tests/golden --update-golden'"
        )
    expected = json.loads(golden_path.read_text(encoding="utf-8"))
    problems: list[str] = []
    _compare(name, expected, actual, rel_tol, problems)
    if problems:
        shown = "\n  ".join(problems[:20])
        more = f"\n  ... and {len(problems) - 20} more" if len(problems) > 20 else ""
        pytest.fail(
            f"golden drift in {name}.json ({len(problems)} mismatches):\n"
            f"  {shown}{more}\n"
            "If this change is intentional, regenerate with --update-golden "
            "and commit the reviewed diff."
        )


# ---------------------------------------------------------------------------
# The snapshots: Figures 4-9 and the headline claims
# ---------------------------------------------------------------------------


class TestFigureGoldens:
    def test_figure4_ideal_ports(self, request, backend):
        check_golden(
            request, "figure4", figures.figure4(BENCHMARKS, settings=SETTINGS)
        )

    def test_figure5_banked(self, request, backend):
        check_golden(
            request, "figure5", figures.figure5(BENCHMARKS, settings=SETTINGS)
        )

    def test_figure6_line_buffer(self, request, backend):
        check_golden(
            request, "figure6", figures.figure6(BENCHMARKS, settings=SETTINGS)
        )

    def test_figure7_dram_cache(self, request, backend):
        check_golden(
            request, "figure7", figures.figure7(BENCHMARKS, settings=SETTINGS)
        )

    def test_figure8_size_sweeps(self, request, backend):
        check_golden(
            request, "figure8", figures.figure8(BENCHMARKS, settings=SETTINGS)
        )

    def test_figure9_execution_time(self, request, backend):
        check_golden(
            request, "figure9", figures.figure9(BENCHMARKS, settings=SETTINGS)
        )

    def test_headline_numbers(self, request, backend):
        check_golden(
            request,
            "headlines",
            figures.headline_numbers(BENCHMARKS, settings=SETTINGS),
        )
