"""Process-level chaos: every failure ends in a clean resume or a
marked gap -- never a hang, never a stack trace.

In-process cases drive the engine directly with ``REPRO_CHAOS``
directives; subprocess cases deliver the failures only a real process
boundary can express (SIGKILL of a pool worker, SIGKILL of the parent).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.core import experiment
from repro.core.experiment import ExperimentSettings, run_experiment
from repro.core.organizations import duplicate
from repro.engine.executor import ExecutionPlan, configure_engine
from repro.engine.store import CACHE_DIR_ENV, ResultStore
from repro.robustness.chaos import CHAOS_ENV, child_pids, corrupt_entry, kill_process
from repro.robustness.deadline import (
    POINT_GRACE_ENV,
    POINT_TIMEOUT_ENV,
    grace_seconds,
)
from repro.robustness.runner import resilient_sweeps

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)

REPO_SRC = str(Path(repro.__file__).resolve().parents[1])

FIGURE_ARGS = [
    "figure4",
    "--benchmarks",
    "gcc",
    "li",
    "--instructions",
    "1200",
    "--timing-warmup",
    "200",
    "--functional-warmup",
    "5000",
    "--no-progress",
]


@pytest.fixture(autouse=True)
def fresh_memo():
    experiment.clear_cache()
    yield
    experiment.clear_cache()


def _figure_lines(captured: str) -> list[str]:
    return [
        line for line in captured.splitlines() if "regenerated in" not in line
    ]


def _cli_env(cache_dir, **extra) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env[CACHE_DIR_ENV] = str(cache_dir)
    env.pop(CHAOS_ENV, None)
    env.update(extra)
    return env


def _popen(args, env) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestHangAndTimeout:
    def test_hang_is_ended_by_the_deadline_within_budget_plus_grace(
        self, monkeypatch
    ):
        """A silent spin the watchdog cannot see becomes a timeout gap."""
        monkeypatch.setenv(CHAOS_ENV, "hang:gcc")
        monkeypatch.setenv(POINT_TIMEOUT_ENV, "0.5")
        started = time.monotonic()
        with resilient_sweeps() as log:
            result = run_experiment(duplicate(32 * 1024), "gcc", FAST)
        elapsed = time.monotonic() - started
        assert result.failed
        assert [r.resolution for r in log.records] == ["timeout"]
        assert log.records[0].error_type == "DeadlineExceededError"
        assert elapsed < 0.5 + grace_seconds()

    def test_unscoped_points_are_untouched_by_scoped_chaos(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang:gcc")
        monkeypatch.setenv(POINT_TIMEOUT_ENV, "0.5")
        with resilient_sweeps() as log:
            result = run_experiment(duplicate(32 * 1024), "li", FAST)
        assert not result.failed
        assert log.records == []

    def test_sleeping_worker_is_killed_after_budget_plus_grace(
        self, monkeypatch
    ):
        """A worker stuck outside the simulation loop (where cooperative
        deadline ticks never run) is killed by the parent's backstop."""
        monkeypatch.setenv(CHAOS_ENV, "sleep=10:gcc")
        monkeypatch.setenv(POINT_TIMEOUT_ENV, "0.5")
        monkeypatch.setenv(POINT_GRACE_ENV, "0.5")
        previous = configure_engine(jobs=2, store=None)
        try:
            started = time.monotonic()
            with resilient_sweeps() as log:
                plan = ExecutionPlan()
                stuck = plan.add(duplicate(32 * 1024), "gcc", FAST)
                healthy = plan.add(duplicate(32 * 1024), "li", FAST)
                results = plan.execute()
            elapsed = time.monotonic() - started
        finally:
            configure_engine(jobs=previous[0], store=previous[1])
        assert results[stuck].failed
        assert not results[healthy].failed
        assert [r.resolution for r in log.records] == ["timeout"]
        assert "killed by the parent" in log.records[0].message
        assert elapsed < 10.0  # nobody waited out the sleep

    def test_stuck_mshr_chaos_becomes_a_diagnosed_gap(self, monkeypatch):
        """The watchdog-visible flavor: DeadlockError, retried, gapped."""
        monkeypatch.setenv(CHAOS_ENV, "stuck-mshr:gcc")
        with resilient_sweeps(retries=1) as log:
            result = run_experiment(duplicate(32 * 1024), "gcc", FAST)
        assert result.failed
        assert log.records[-1].resolution == "gap"
        assert log.records[-1].error_type == "DeadlockError"


class TestWorkerSigkill:
    def test_sweep_survives_a_worker_killed_mid_flight(self, tmp_path):
        """kill -9 on a pool worker: the sweep still finishes, exit 0."""
        env = _cli_env(tmp_path / "cache", **{CHAOS_ENV: "sleep=0.2"})
        proc = _popen(FIGURE_ARGS + ["--jobs", "2"], env)
        try:
            deadline = time.monotonic() + 30.0
            victims = []
            while time.monotonic() < deadline and not victims:
                victims = child_pids(proc.pid)
                time.sleep(0.05)
            assert victims, "the pool never spawned workers"
            kill_process(max(victims), signal.SIGKILL)
            out, err = proc.communicate(timeout=120)
        finally:
            proc.kill()
        assert proc.returncode == 0, err
        assert "Figure 4" in out
        assert "Traceback" not in err


class TestParentSigkill:
    def test_kill_minus_nine_then_resume_is_bit_identical(self, tmp_path):
        """The ISSUE's headline scenario: SIGKILL the whole sweep, then
        `--resume` re-executes only the missing points and the final
        output matches an uninterrupted run byte for byte."""
        cache_dir = tmp_path / "cache"
        env = _cli_env(cache_dir, **{CHAOS_ENV: "sleep=0.2"})
        proc = _popen(FIGURE_ARGS, env)
        time.sleep(3.0)  # startup + a few 0.2s-stretched points
        proc.kill()  # SIGKILL: no handler, no flush, no goodbye
        proc.communicate(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        store = ResultStore(cache_dir)
        finished_early = store.info()["entries"]
        assert 0 < finished_early < 24, "SIGKILL missed the mid-sweep window"

        # Resume without chaos; count re-simulations via store entries.
        resume = subprocess.run(
            [sys.executable, "-m", "repro", *FIGURE_ARGS, "--resume"],
            env=_cli_env(cache_dir),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stderr
        assert store.info()["entries"] == 24

        fresh = subprocess.run(
            [sys.executable, "-m", "repro", *FIGURE_ARGS],
            env=_cli_env(tmp_path / "fresh-cache"),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert fresh.returncode == 0, fresh.stderr
        assert _figure_lines(resume.stdout) == _figure_lines(fresh.stdout)

    def test_runs_resume_reports_store_served_points(self, tmp_path):
        cache_dir = tmp_path / "cache"
        env = _cli_env(cache_dir, **{CHAOS_ENV: "sleep=0.2"})
        proc = _popen(FIGURE_ARGS, env)
        time.sleep(3.0)
        proc.kill()
        proc.communicate(timeout=30)

        resume = subprocess.run(
            [sys.executable, "-m", "repro", "runs", "resume", "last",
             "--no-progress"],
            env=_cli_env(cache_dir),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stderr
        assert "resuming sweep" in resume.stdout
        served = int(
            resume.stdout.split("resume complete: ")[1].split(" point")[0]
        )
        assert served > 0  # the dead run's work was not repeated


class TestOnDiskRot:
    def test_cache_verify_quarantines_and_the_sweep_self_heals(
        self, tmp_path, monkeypatch, capsys
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
        assert main(FIGURE_ARGS) == 0
        baseline = _figure_lines(capsys.readouterr().out)
        store = ResultStore(cache_dir)
        entries = store._entry_paths()
        assert len(entries) == 24

        # Rot three entries three different ways and tear the ledger.
        corrupt_entry(entries[0], "truncate")
        corrupt_entry(entries[1], "garbage")
        corrupt_entry(entries[2], "schema")
        from repro.robustness.chaos import tear_trailing_line

        tear_trailing_line(store.ledger().path)

        assert main(["cache", "verify"]) == 0
        verify_out = capsys.readouterr().out
        assert verify_out.count("quarantined") == 3
        assert "torn trailing record" in verify_out
        quarantined = list(store.quarantine_dir.iterdir())
        assert len(quarantined) == 4  # 3 entries + 1 ledger fragment

        # The damaged points re-simulate; output matches the baseline.
        experiment.clear_cache()
        assert main(FIGURE_ARGS) == 0
        assert _figure_lines(capsys.readouterr().out) == baseline
        assert store.info()["entries"] == 24

    def test_verify_is_idempotent(self, tmp_path, monkeypatch, capsys):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
        assert main(FIGURE_ARGS) == 0
        capsys.readouterr()
        corrupt_entry(ResultStore(cache_dir)._entry_paths()[0], "garbage")
        assert main(["cache", "verify"]) == 0
        capsys.readouterr()
        assert main(["cache", "verify"]) == 0
        assert "no damage found" in capsys.readouterr().out
