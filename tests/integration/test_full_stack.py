"""Cross-module integration tests: the whole stack, end to end."""

import pytest

from repro.core import (
    ExperimentSettings,
    banked,
    dram_cache,
    duplicate,
    ideal_ports,
    run_experiment,
)
from repro.core.experiment import clear_cache
from repro.cpu import OutOfOrderCore, ProcessorConfig
from repro.memory import MemorySystem, ServedBy
from repro.workloads import WorkloadGenerator, benchmark

FAST = ExperimentSettings(
    instructions=3_000, timing_warmup=500, functional_warmup=80_000
)


class TestConservation:
    """Counts must reconcile across the CPU and memory layers."""

    @pytest.mark.parametrize(
        "org",
        [
            duplicate(32 * 1024, line_buffer=True),
            banked(32 * 1024),
            ideal_ports(ports=4, hit_cycles=3),
            dram_cache(6, line_buffer=True),
        ],
        ids=lambda o: o.label,
    )
    def test_loads_committed_equal_loads_issued(self, org):
        result = run_experiment(org, "gcc", FAST)
        # Every committed LOAD issued exactly one memory-system load;
        # up to a window's worth of issued loads may still be in flight
        # when the run reaches its instruction target.
        committed_loads = result.op_counts.get("LOAD", 0)
        assert 0 <= result.memory.loads - committed_loads <= 64
        # Stores drain at commit; the tail may still sit in the buffer.
        committed_stores = result.op_counts.get("STORE", 0)
        assert 0 <= committed_stores - result.memory.stores <= 64

    def test_served_by_partitions_accesses(self):
        result = run_experiment(duplicate(line_buffer=True), "li", FAST)
        assert sum(result.memory.served_by.values()) == result.memory.accesses

    def test_hits_plus_misses_equal_cache_accesses(self):
        result = run_experiment(duplicate(), "li", FAST)
        memory = result.memory
        assert memory.l1_hits + memory.l1_misses == memory.accesses

    def test_line_buffer_accounted_outside_l1(self):
        result = run_experiment(duplicate(line_buffer=True), "li", FAST)
        lb_served = result.memory.served_by[ServedBy.LINE_BUFFER]
        l1_accesses = result.memory.l1_hits + result.memory.l1_misses
        assert lb_served + l1_accesses == result.memory.accesses


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        results = []
        for _ in range(2):
            clear_cache()
            results.append(run_experiment(duplicate(), "database", FAST))
        a, b = results
        assert a.cycles == b.cycles
        assert a.ipc == b.ipc
        assert a.memory.l1_misses == b.memory.l1_misses
        assert a.branches.mispredictions == b.branches.mispredictions

    def test_different_seeds_differ(self):
        from dataclasses import replace

        a = run_experiment(duplicate(), "gcc", FAST)
        b = run_experiment(duplicate(), "gcc", replace(FAST, seed=99))
        assert a.cycles != b.cycles


class TestManualAssembly:
    """The public API pieces compose without the experiment driver."""

    def test_build_and_run_by_hand(self):
        spec = benchmark("li")
        generator = WorkloadGenerator(spec, seed=7)
        memory = MemorySystem(
            duplicate(16 * 1024, line_buffer=True).memory_config()
        )
        memory.prefill_backside(generator.footprint_lines(memory.line_bytes))
        memory.warm(generator.memory_references(50_000))
        core = OutOfOrderCore(ProcessorConfig(), memory)
        result = core.run(generator.instructions(), 2_000)
        assert result.instructions == 2_000
        assert 0.2 < result.ipc < 4.0

    def test_custom_processor_width(self):
        spec = benchmark("tomcatv")
        generator = WorkloadGenerator(spec, seed=7)
        memory = MemorySystem(duplicate().memory_config())
        core = OutOfOrderCore(
            ProcessorConfig(fetch_width=8, issue_width=8, commit_width=8),
            memory,
        )
        result = core.run(generator.instructions(), 2_000)
        assert result.ipc > 0


class TestScaling:
    def test_more_instructions_more_cycles(self):
        from dataclasses import replace

        short = run_experiment(duplicate(), "li", FAST)
        longer = run_experiment(
            duplicate(), "li", replace(FAST, instructions=6_000)
        )
        assert longer.cycles > short.cycles
        # IPC estimates agree within simulation noise.
        assert longer.ipc == pytest.approx(short.ipc, rel=0.25)

    def test_all_nine_benchmarks_run(self):
        from repro.workloads import BENCHMARKS

        tiny = ExperimentSettings(
            instructions=800, timing_warmup=200, functional_warmup=30_000
        )
        for name in BENCHMARKS:
            result = run_experiment(duplicate(line_buffer=True), name, tiny)
            assert result.instructions == 800, name
            assert result.ipc > 0.1, name
