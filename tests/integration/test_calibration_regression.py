"""Calibration regression guards.

The workload models were calibrated against the paper (see
EXPERIMENTS.md).  These tests pin the calibrated behavior inside
generous bands so refactors of the generators, the memory system, or
the core cannot silently destroy the reproduction.  If a deliberate
re-calibration moves a number, update the band here *and* the
paper-vs-measured record in EXPERIMENTS.md.
"""

import pytest

from repro.core import ExperimentSettings, duplicate, ideal_ports, run_experiment
from repro.memory import SetAssociativeCache
from repro.workloads import WorkloadGenerator, benchmark

SETTINGS = ExperimentSettings(
    instructions=6_000, timing_warmup=1_500, functional_warmup=150_000
)


def miss_per_instruction(name, size_kb, n=120_000, warm=150_000, seed=1):
    generator = WorkloadGenerator(benchmark(name), seed)
    warm_refs = generator.memory_references(warm)
    refs = generator.memory_references(n)
    cache = SetAssociativeCache(size_kb * 1024, 2, 32)
    for is_store, address in warm_refs:
        if not cache.lookup(address >> 5, write=is_store):
            cache.fill(address >> 5, dirty=is_store)
    misses = 0
    for is_store, address in refs:
        if not cache.lookup(address >> 5, write=is_store):
            misses += 1
            cache.fill(address >> 5, dirty=is_store)
    return misses / n


class TestMissRateBands:
    """Figure 3 magnitudes, wide bands (see EXPERIMENTS.md table)."""

    def test_gcc_4k(self):
        assert 0.02 < miss_per_instruction("gcc", 4) < 0.06

    def test_li_is_lowest(self):
        assert miss_per_instruction("li", 4) < miss_per_instruction("gcc", 4)

    def test_apsi_is_highest_at_4k(self):
        apsi = miss_per_instruction("apsi", 4)
        assert apsi > 0.06

    def test_database_1m_tail(self):
        assert miss_per_instruction("database", 1024, n=80_000) > 0.015


class TestIpcBands:
    """Figure 4-level IPCs at the reference configuration."""

    def test_gcc_ipc_band(self):
        ipc = run_experiment(ideal_ports(ports=2), "gcc", SETTINGS).ipc
        assert 1.1 < ipc < 2.2

    def test_tomcatv_ipc_band(self):
        ipc = run_experiment(ideal_ports(ports=2), "tomcatv", SETTINGS).ipc
        assert 2.0 < ipc < 3.4

    def test_database_ipc_band(self):
        ipc = run_experiment(ideal_ports(ports=2), "database", SETTINGS).ipc
        assert 0.5 < ipc < 1.4

    def test_ipc_ordering(self):
        ipcs = {
            name: run_experiment(ideal_ports(ports=2), name, SETTINGS).ipc
            for name in ("gcc", "tomcatv", "database")
        }
        assert ipcs["tomcatv"] > ipcs["gcc"] > ipcs["database"]


class TestSensitivityBands:
    """The headline sensitivities that make the paper's argument."""

    def test_gcc_pipelining_loss_band(self):
        one = run_experiment(ideal_ports(ports=2, hit_cycles=1), "gcc", SETTINGS).ipc
        two = run_experiment(ideal_ports(ports=2, hit_cycles=2), "gcc", SETTINGS).ipc
        loss = 1 - two / one
        assert 0.04 < loss < 0.25  # paper: 18 %; calibrated: ~10 %

    def test_tomcatv_pipelining_loss_small(self):
        one = run_experiment(
            ideal_ports(ports=2, hit_cycles=1), "tomcatv", SETTINGS
        ).ipc
        two = run_experiment(
            ideal_ports(ports=2, hit_cycles=2), "tomcatv", SETTINGS
        ).ipc
        assert 1 - two / one < 0.06  # paper: 3 %

    def test_second_port_gain_band(self):
        one = run_experiment(ideal_ports(ports=1), "gcc", SETTINGS).ipc
        two = run_experiment(ideal_ports(ports=2), "gcc", SETTINGS).ipc
        assert 0.03 < two / one - 1 < 0.30  # paper: 25 %; calibrated: ~8 %

    def test_line_buffer_gain_band(self):
        plain = run_experiment(duplicate(), "gcc", SETTINGS).ipc
        with_lb = run_experiment(duplicate(line_buffer=True), "gcc", SETTINGS).ipc
        assert 0.005 < with_lb / plain - 1 < 0.12  # paper: 3 %

    def test_branch_accuracy_band(self):
        """Predictor accuracy drives everything else; keep it realistic."""
        result = run_experiment(ideal_ports(ports=2), "gcc", SETTINGS)
        assert 0.88 < result.branches.accuracy < 0.99
