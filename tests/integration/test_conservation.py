"""Conservation invariants checked from the event stream itself.

Every load the core issues must be accounted for exactly once: it is
either forwarded from an in-flight store, satisfied by the line buffer,
an L1 hit (possibly delayed behind an outstanding fill), swapped back
from the victim cache, merged into a pending MSHR, or allocated a fresh
MSHR.  The trace facility sees each of these as a distinct event, so
the identity is testable end-to-end against a real simulation -- a
mis-counted path would break the partition.
"""

from collections import Counter

import pytest

from repro.core.experiment import ExperimentSettings, run_experiment
from repro.core.organizations import banked, duplicate, ideal_ports
from repro.engine.executor import get_engine
from repro.observability import events, tracing

FAST = ExperimentSettings(
    instructions=1_500, timing_warmup=300, functional_warmup=20_000
)

ORGANIZATIONS = [
    pytest.param(duplicate(line_buffer=True), id="duplicate+LB"),
    pytest.param(banked(banks=4), id="banked4"),
    pytest.param(ideal_ports(ports=2, hit_cycles=2), id="ideal-2c"),
]


def _traced_run(organization, benchmark="gcc"):
    get_engine().memo.clear()
    with tracing() as tracer:
        result = run_experiment(organization, benchmark, FAST)
    assert tracer.dropped == 0, "ring too small for this test"
    return tracer, result


class TestLoadConservation:
    @pytest.mark.parametrize("organization", ORGANIZATIONS)
    def test_issued_loads_partition_exactly(self, organization):
        tracer, _ = _traced_run(organization)
        issued_loads = [
            e for e in tracer.events(events.CPU_ISSUE) if e.fields["op"] == "LOAD"
        ]
        forwarded = sum(1 for e in issued_loads if e.fields.get("fwd"))
        mem_loads = tracer.count(events.MEM_LOAD)
        # every issued load either forwarded from a store or reached memory
        assert len(issued_loads) == forwarded + mem_loads

        outcomes = Counter(
            e.fields["outcome"] for e in tracer.events(events.MEM_LOAD)
        )
        # the outcome partition covers every memory load exactly once
        assert sum(outcomes.values()) == mem_loads
        known = {
            "lb_hit",
            "l1_hit",
            "delayed_hit",
            "victim_hit",
            "miss_merged",
            "miss_alloc",
        }
        assert set(outcomes) <= known

    @pytest.mark.parametrize("organization", ORGANIZATIONS)
    def test_line_buffer_hits_match(self, organization):
        tracer, _ = _traced_run(organization)
        lb_hits = sum(
            1
            for e in tracer.events(events.MEM_LOAD)
            if e.fields["outcome"] == "lb_hit"
        )
        assert tracer.count(events.MEM_LB_HIT) == lb_hits

    @pytest.mark.parametrize("organization", ORGANIZATIONS)
    def test_mshr_events_match_access_outcomes(self, organization):
        tracer, _ = _traced_run(organization)
        accesses = tracer.events(events.MEM_LOAD) + tracer.events(events.MEM_STORE)
        outcomes = Counter(e.fields["outcome"] for e in accesses)
        assert tracer.count(events.MEM_MSHR_ALLOC) == outcomes["miss_alloc"]
        assert tracer.count(events.MEM_MSHR_MERGE) == outcomes["miss_merged"]
        # no prefetching in these organizations: every fill had an alloc
        assert tracer.count(events.MEM_MSHR_FILL) == outcomes["miss_alloc"]


class TestPipelineConservation:
    def test_fetched_equals_committed_plus_in_flight(self):
        tracer, _ = _traced_run(duplicate(line_buffer=True))
        fetched = tracer.count(events.CPU_FETCH)
        committed = tracer.count(events.CPU_COMMIT)
        issued = tracer.count(events.CPU_ISSUE)
        # the run stops at the commit target: fetched >= issued >= committed
        assert fetched >= issued >= committed > 0

    def test_commits_are_totally_ordered(self):
        tracer, _ = _traced_run(duplicate(line_buffer=True))
        seqs = [e.fields["seq"] for e in tracer.events(events.CPU_COMMIT)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_every_commit_was_issued_and_fetched(self):
        tracer, _ = _traced_run(banked(banks=4))
        fetched = {e.fields["seq"] for e in tracer.events(events.CPU_FETCH)}
        issued = {e.fields["seq"] for e in tracer.events(events.CPU_ISSUE)}
        committed = {e.fields["seq"] for e in tracer.events(events.CPU_COMMIT)}
        assert committed <= issued <= fetched


class TestMetricsAgreeWithEvents:
    def test_measured_region_counts_are_a_subset_of_the_stream(self):
        """Metrics cover the measured region; the trace covers warmup too,
        so every metric count is bounded by its event count."""
        tracer, result = _traced_run(duplicate(line_buffer=True))
        metrics = result.metrics
        assert metrics["memory.loads"] <= tracer.count(events.MEM_LOAD)
        assert metrics["memory.stores"] <= tracer.count(events.MEM_STORE)
        assert metrics["cpu.instructions"] <= tracer.count(events.CPU_COMMIT)
        assert metrics["memory.mshr.primary_misses"] <= tracer.count(
            events.MEM_MSHR_ALLOC
        )
