"""Signal handling end to end: SIGINT -> exit 4 -> --resume, identically.

The in-process tests drive :func:`repro.cli.main` on the pytest main
thread (so ``ShutdownController`` installs real handlers) and deliver
genuine signals with ``os.kill``; the chaos ``sleep`` directive
stretches the sweep so the signal reliably lands mid-run.
"""

import os
import signal
import threading
import time

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.core import experiment
from repro.engine.checkpoint import list_checkpoints
from repro.engine.store import CACHE_DIR_ENV, ResultStore
from repro.robustness.chaos import CHAOS_ENV

FIGURE_ARGS = [
    "figure4",
    "--benchmarks",
    "gcc",
    "li",
    "--instructions",
    "1200",
    "--timing-warmup",
    "200",
    "--functional-warmup",
    "5000",
    "--no-progress",
]


def _figure_lines(captured: str) -> list[str]:
    return [
        line for line in captured.splitlines() if "regenerated in" not in line
    ]


@pytest.fixture(autouse=True)
def fresh_memo():
    experiment.clear_cache()
    yield
    experiment.clear_cache()


def _sigint_after(delay: float) -> threading.Timer:
    timer = threading.Timer(delay, os.kill, (os.getpid(), signal.SIGINT))
    timer.daemon = True
    timer.start()
    return timer


class TestSigintResume:
    def test_sigint_exits_4_keeps_checkpoint_then_resumes_identically(
        self, tmp_path, monkeypatch, capsys
    ):
        interrupted_dir = tmp_path / "interrupted"
        fresh_dir = tmp_path / "fresh"

        # Baseline: the uninterrupted output this sweep must converge to.
        monkeypatch.setenv(CACHE_DIR_ENV, str(fresh_dir))
        assert main(FIGURE_ARGS) == 0
        baseline = _figure_lines(capsys.readouterr().out)

        # Interrupted run: sleep chaos stretches every point so the
        # signal lands mid-sweep, without touching simulated numbers.
        experiment.clear_cache()
        monkeypatch.setenv(CACHE_DIR_ENV, str(interrupted_dir))
        monkeypatch.setenv(CHAOS_ENV, "sleep=0.2")
        timer = _sigint_after(1.0)
        try:
            code = main(FIGURE_ARGS)
        finally:
            timer.cancel()
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "interrupted" in captured.err
        assert "--resume" in captured.err

        # The checkpoint survived and is loadable.
        checkpoints = list_checkpoints(ResultStore(interrupted_dir).root)
        assert len(checkpoints) == 1
        status = checkpoints[0].status()
        assert status["planned"] == 24  # 2 benchmarks x 12 grid points
        assert 0 < status["completed"] < status["planned"]
        assert checkpoints[0].keys()  # header rebuilds the plan

        # Resume (chaos off): exit clean, output identical to baseline.
        experiment.clear_cache()
        monkeypatch.delenv(CHAOS_ENV)
        assert main(FIGURE_ARGS + ["--resume"]) == 0
        resumed = capsys.readouterr()
        assert _figure_lines(resumed.out) == baseline
        assert "--resume: checkpoint" in resumed.err
        # A clean completion deletes the checkpoint.
        assert list_checkpoints(interrupted_dir) == []

        # Every planned point now holds a stored result.
        assert ResultStore(interrupted_dir).info()["entries"] == status["planned"]

    def test_resume_conflicts_with_no_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(FIGURE_ARGS + ["--resume", "--no-cache"])
        assert "--no-cache" in capsys.readouterr().err

    def test_point_timeout_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(FIGURE_ARGS + ["--point-timeout", "0"])
        assert "--point-timeout" in capsys.readouterr().err


class TestRunsResume:
    def test_runs_resume_finishes_an_interrupted_sweep(
        self, tmp_path, monkeypatch, capsys
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
        monkeypatch.setenv(CHAOS_ENV, "sleep=0.2")
        timer = _sigint_after(1.0)
        try:
            code = main(FIGURE_ARGS)
        finally:
            timer.cancel()
        capsys.readouterr()
        assert code == EXIT_INTERRUPTED

        experiment.clear_cache()
        monkeypatch.delenv(CHAOS_ENV)
        assert main(["runs", "resume", "last", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "resuming sweep" in out
        assert "resume complete" in out
        assert list_checkpoints(cache_dir) == []
        # Every planned point now holds a stored result.
        assert ResultStore(cache_dir).info()["entries"] == 24

    def test_runs_resume_with_nothing_to_resume(self, capsys):
        assert main(["runs", "resume"]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_interrupted_run_lands_in_the_ledger(
        self, tmp_path, monkeypatch, capsys
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
        monkeypatch.setenv(CHAOS_ENV, "sleep=0.2")
        timer = _sigint_after(1.0)
        try:
            code = main(FIGURE_ARGS)
        finally:
            timer.cancel()
        capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        records = ResultStore(cache_dir).ledger().records()
        assert len(records) == 1
        assert records[0].get("interrupted") is True
        assert records[0]["summary"]["points"] > 0
        # The partial record is visible in `runs list` and `runs show`.
        assert main(["runs", "list"]) == 0
        assert "interrupted" in capsys.readouterr().out
        assert main(["runs", "show", "last"]) == 0
        assert "interrupted:  yes" in capsys.readouterr().out
