"""Trace workflow: capture, archive, characterize, and replay a workload.

Some studies need the *same* dynamic instruction stream replayed against
many machine configurations (so differences are purely architectural),
or archived alongside results.  This example:

1. captures 20k instructions of the database benchmark,
2. saves them to disk and reloads them (exact round trip),
3. prints the trace's measured profile (mix, dependences, footprint),
4. replays the identical trace against three cache organizations.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.core import banked, dram_cache, duplicate
from repro.cpu import OutOfOrderCore, ProcessorConfig
from repro.memory import MemorySystem
from repro.workloads import benchmark, trace
from repro.workloads.traces import (
    capture,
    load_trace,
    profile_trace,
    replay,
    save_trace,
)

INSTRUCTIONS = 20_000


def main() -> None:
    captured = capture(trace(benchmark("database"), seed=42), INSTRUCTIONS)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "database.trace"
        save_trace(captured, path)
        print(f"saved {INSTRUCTIONS} micro-ops to {path.name} "
              f"({path.stat().st_size // 1024} KB)")
        captured = load_trace(path)

    profile = profile_trace(replay(captured))
    print(f"profile: {profile.summary()}\n")

    print("replaying the identical stream against three organizations:")
    for organization in (
        duplicate(32 * 1024, line_buffer=True),
        banked(32 * 1024, line_buffer=True),
        dram_cache(6, line_buffer=True),
    ):
        memory = MemorySystem(organization.memory_config())
        core = OutOfOrderCore(ProcessorConfig(), memory)
        result = core.run(replay(captured), INSTRUCTIONS)
        print(
            f"  {organization.label:22s} IPC={result.ipc:.3f} "
            f"L1 miss={result.memory.l1_miss_rate:.1%}"
        )
    print(
        "\nbecause the instruction stream is frozen, every difference"
        "\nabove is attributable to the memory system alone."
    )


if __name__ == "__main__":
    main()
