"""Define your own synthetic workload and evaluate cache organizations.

Shows the full workload-modeling API: memory regions (working-set
shape), an ILP profile (dependence chains), and branch behavior.  The
example models a small in-memory key-value store: a hot index, a large
value heap, and an append log, with OS time for networking.

Run:  python examples/custom_workload.py
"""

from repro.core import ExperimentSettings, banked, duplicate, run_experiment
from repro.workloads import (
    BranchProfile,
    IlpProfile,
    Region,
    WorkloadSpec,
)

KB = 1024

KV_STORE = WorkloadSpec(
    name="kvstore",
    description="In-memory key-value store with an append log",
    group="custom",
    load_fraction=0.30,
    store_fraction=0.12,
    kernel_fraction=0.15,  # network stack time
    idle_fraction=0.0,
    user_regions=(
        Region("stack", 2 * KB, 0.30, "hot", hot_fraction=0.5, burst_mean=8),
        Region("index", 128 * KB, 0.30, "hot", hot_fraction=0.15, burst_mean=5),
        Region("values", 768 * KB, 0.25, "random", burst_mean=4),
        Region("log", 256 * KB, 0.15, "sequential", stride=8),
    ),
    kernel_regions=(
        Region("kstack", 4 * KB, 0.35, "hot", hot_fraction=0.5),
        Region("skbufs", 192 * KB, 0.65, "random", burst_mean=4),
    ),
    ilp=IlpProfile(
        name="kvstore",
        chains=3,
        dep_probability=1.0,
        cross_chain_probability=0.1,
        load_address_dep_probability=0.8,  # heavy pointer chasing
    ),
    branches=BranchProfile(
        frequency=0.15,
        loop_fraction=0.6,
        mean_trip_count=12,
        data_branch_count=16,
        data_taken_bias=0.85,
        bias_spread=0.08,
    ),
)

SETTINGS = ExperimentSettings(
    instructions=8_000, timing_warmup=2_000, functional_warmup=200_000
)


def main() -> None:
    print(f"workload: {KV_STORE.name} -- {KV_STORE.description}\n")
    print("organization                     IPC     L1 miss  LB hit")
    candidates = [
        duplicate(32 * KB),
        duplicate(32 * KB, line_buffer=True),
        duplicate(256 * KB, hit_cycles=2, line_buffer=True),
        banked(32 * KB, line_buffer=True),
        banked(256 * KB, hit_cycles=2, line_buffer=True),
    ]
    best = None
    for organization in candidates:
        result = run_experiment(organization, KV_STORE, SETTINGS)
        lb = result.memory.served_by
        from repro.memory import ServedBy

        lb_share = lb[ServedBy.LINE_BUFFER] / max(1, result.memory.accesses)
        print(
            f"{organization.label:30s}  {result.ipc:6.3f}  "
            f"{result.memory.l1_miss_rate:7.2%}  {lb_share:6.1%}"
        )
        if best is None or result.ipc > best[1].ipc:
            best = (organization, result)

    assert best is not None
    print(f"\nbest IPC: {best[0].label} ({best[1].ipc:.3f})")
    print(
        "note: at a fixed clock the larger pipelined cache can win on IPC;"
        "\nfold in cycle time (see design_space_sweep.py) before concluding."
    )


if __name__ == "__main__":
    main()
