"""Cache timing explorer: the cacti model and pipelining arithmetic.

Answers, purely analytically (no simulation -- instant):

* how fast is an N-KB cache (Figure 1)?
* how deep must it be pipelined for a given processor cycle time?
* what is the largest cache at each (cycle time, depth) design point?

Run:  python examples/cache_timing_explorer.py
"""

from repro.timing import (
    FIGURE1_SIZES,
    banked_access_fo4,
    clock_mhz,
    max_cache_size,
    required_depth,
    single_ported_access_fo4,
)


def size_label(size: int) -> str:
    return f"{size // (1024 * 1024)}M" if size >= 1024 * 1024 else f"{size // 1024}K"


def main() -> None:
    print("Access times (FO4), single-ported vs eight-way banked:")
    print("size   single  banked")
    for size in FIGURE1_SIZES:
        print(
            f"{size_label(size):5s}  {single_ported_access_fo4(size):6.1f}"
            f"  {banked_access_fo4(size):6.1f}"
        )

    print("\nPipeline depth needed at the reference 25 FO4 (200 MHz) clock:")
    for size in FIGURE1_SIZES:
        depth = required_depth(single_ported_access_fo4(size), 25.0)
        label = f"{depth} cycle(s)" if depth else "does not fit in 3 cycles"
        print(f"  {size_label(size):5s} -> {label}")

    print("\nLargest duplicate cache per (cycle time, depth) design point:")
    print("FO4   MHz    1~      2~      3~")
    for cycle_time in (30.0, 29.0, 25.0, 20.0, 15.0, 10.0):
        cells = []
        for depth in (1, 2, 3):
            fit = max_cache_size(cycle_time, depth)
            cells.append(size_label(fit.size_bytes) if fit else "--")
        print(
            f"{cycle_time:4.0f}  {clock_mhz(cycle_time):5.0f}  "
            + "  ".join(f"{c:6s}" for c in cells)
        )

    print(
        "\nReading the last table bottom-up is section 5's conclusion: at"
        "\n29 FO4 build a one-cycle 64 KB cache; below ~24 FO4 pipelining"
        "\nis mandatory; at 10 FO4 even 3 cycles barely fits a small cache."
    )


if __name__ == "__main__":
    main()
