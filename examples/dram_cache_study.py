"""DRAM-cache study: can on-chip DRAM beat an SRAM cache hierarchy?

Reproduces the section 4.3 comparison: a 4 MB on-chip DRAM cache with a
16 KB row-buffer first level (512 B lines, one-cycle hits) against a
conventional 16 KB SRAM primary cache backed by the 4 MB off-chip L2.
The DRAM hit time is swept 6-8 cycles, with and without a line buffer.

Run:  python examples/dram_cache_study.py
"""

from repro.core import (
    ExperimentSettings,
    dram_cache,
    duplicate,
    run_experiment,
)

SETTINGS = ExperimentSettings(
    instructions=8_000, timing_warmup=2_000, functional_warmup=200_000
)
BENCHMARKS = ("gcc", "tomcatv", "database")


def main() -> None:
    print("IPC of the 4 MB on-chip DRAM cache (16 KB row-buffer L1)")
    print("benchmark  " + "  ".join(f"{h}~ DRAM" for h in (6, 7, 8)) + "   no-LB 6~")
    for name in BENCHMARKS:
        row = [
            run_experiment(dram_cache(hit, line_buffer=True), name, SETTINGS).ipc
            for hit in (6, 7, 8)
        ]
        no_lb = run_experiment(dram_cache(6, line_buffer=False), name, SETTINGS).ipc
        print(
            f"{name:9s}  "
            + "  ".join(f"{v:7.3f}" for v in row)
            + f"   {no_lb:7.3f}"
        )

    print("\nEquivalent-area SRAM alternative: 16 KB duplicate cache + 4 MB L2")
    for name in BENCHMARKS:
        sram = run_experiment(
            duplicate(16 * 1024, line_buffer=True), name, SETTINGS
        ).ipc
        dram = run_experiment(dram_cache(6, line_buffer=True), name, SETTINGS).ipc
        verdict = "SRAM wins" if sram > dram else "DRAM wins"
        print(f"{name:9s}  SRAM={sram:.3f}  DRAM={dram:.3f}  -> {verdict}")

    print(
        "\nThe paper's conclusion: even with the optimistic six-cycle DRAM"
        "\nhit time, the DRAM cache on average underperforms the 16 KB SRAM"
        "\ncache backed by an off-chip L2 -- the 512-byte row-buffer lines"
        "\ncost too many conflict misses."
    )


if __name__ == "__main__":
    main()
