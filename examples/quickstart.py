"""Quickstart: simulate one cache organization on one benchmark.

Builds the paper's recommended organization -- a dual-ported (duplicate)
32 KB primary data cache with a line buffer -- runs the gcc workload on
the four-issue dynamic superscalar processor, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.core import ExperimentSettings, duplicate, run_experiment

SETTINGS = ExperimentSettings(
    instructions=10_000,  # measured window
    timing_warmup=2_000,  # cycle-simulated, not measured
    functional_warmup=200_000,  # cache warm-up without timing
)


def main() -> None:
    organization = duplicate(32 * 1024, hit_cycles=1, line_buffer=True)
    print(f"organization: {organization.label}")
    print(f"access time:  {organization.access_time_fo4():.1f} FO4")

    result = run_experiment(organization, "gcc", SETTINGS)

    print(f"\n{result.summary()}")
    memory = result.memory
    print(f"loads:             {memory.loads}")
    print(f"stores:            {memory.stores}")
    print(f"L1 miss rate:      {memory.l1_miss_rate:.2%}")
    print(f"misses/instr:      {result.misses_per_instruction():.3%}")
    print(f"avg load latency:  {memory.average_load_latency:.2f} cycles")
    print(f"branch accuracy:   {result.branches.accuracy:.1%}")

    # How much did the line buffer contribute?
    without = run_experiment(duplicate(32 * 1024, hit_cycles=1), "gcc", SETTINGS)
    gain = result.ipc / without.ipc - 1
    print(f"\nline buffer IPC gain vs plain duplicate cache: {gain:+.1%}")


if __name__ == "__main__":
    main()
