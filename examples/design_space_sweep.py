"""Design-space sweep: which cache organization should your chip use?

A compact version of the paper's Figure 8 / Figure 9 methodology:

1. sweep cache size x pipeline depth for duplicate caches with a line
   buffer on a benchmark of your choice (IPC view, fixed clock);
2. then fold in cycle time: for a range of processor cycle times, pick
   the largest realizable cache per depth and report normalized
   execution time -- the metric that actually decides the design.

Run:  python examples/design_space_sweep.py [benchmark]
"""

import sys

from repro.core import (
    ExperimentSettings,
    duplicate,
    execution_time_curves,
    best_point,
    run_experiment,
)
from repro.workloads import benchmark

SETTINGS = ExperimentSettings(
    instructions=8_000, timing_warmup=2_000, functional_warmup=200_000
)
SIZES = tuple(2**k * 1024 for k in range(2, 11))  # 4K .. 1M


def size_label(size: int) -> str:
    return f"{size // (1024 * 1024)}M" if size >= 1024 * 1024 else f"{size // 1024}K"


def ipc_view(name: str) -> None:
    print(f"IPC vs size for duplicate caches with a line buffer ({name})")
    print("size   " + "  ".join(f"{d}~ hit" for d in (1, 2, 3)))
    for size in SIZES:
        row = [
            run_experiment(
                duplicate(size, hit_cycles=depth, line_buffer=True), name, SETTINGS
            ).ipc
            for depth in (1, 2, 3)
        ]
        print(f"{size_label(size):5s}  " + "  ".join(f"{v:6.3f}" for v in row))


def execution_time_view(name: str) -> None:
    print(f"\nNormalized execution time vs processor cycle time ({name})")
    print("(normalized to a 10 FO4 processor with a 32 KB 3-cycle cache)")
    points = execution_time_curves(name, settings=SETTINGS)
    print("FO4  depth  cache  IPC    norm time")
    for p in points:
        print(
            f"{p.cycle_time_fo4:3.0f}  {p.depth}~     "
            f"{size_label(p.cache_size):5s}  {p.ipc:5.3f}  {p.normalized_time:.3f}"
        )
    winner = best_point(points)
    print(
        f"\nbest design point: {winner.cycle_time_fo4:.0f} FO4 cycle, "
        f"{winner.depth}-cycle {size_label(winner.cache_size)} duplicate cache"
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    benchmark(name)  # validate early with a helpful error
    ipc_view(name)
    execution_time_view(name)


if __name__ == "__main__":
    main()
