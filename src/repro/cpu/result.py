"""Simulation result records produced by the out-of-order core."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.branch import BranchStats
from repro.memory.stats import MemoryStats


@dataclass
class PipelineStats:
    """Where fetch bandwidth was lost."""

    window_full_stalls: int = 0  #: fetch cycles lost to a full window
    lsq_full_stalls: int = 0  #: fetch cycles lost to a full load/store buffer
    mispredict_stall_cycles: int = 0  #: cycles fetch waited on a wrong branch
    store_forwards: int = 0


@dataclass
class SimulationResult:
    """Outcome of one (processor, memory system, workload) simulation."""

    instructions: int
    cycles: int
    op_counts: dict[str, int] = field(default_factory=dict)
    pipeline: PipelineStats = field(default_factory=PipelineStats)
    branches: BranchStats = field(default_factory=BranchStats)
    memory: MemoryStats = field(default_factory=MemoryStats)
    #: flat export of every named counter the simulation maintained
    #: (see :mod:`repro.observability.metrics`); deterministic ints, so
    #: it round-trips the store and worker boundaries bit-identically
    metrics: dict[str, int | float] = field(default_factory=dict)
    #: the simulation failed and could not be recovered; metrics are
    #: meaningless and :attr:`ipc` reports NaN so downstream figure math
    #: shows a visible gap instead of a fabricated number
    failed: bool = False
    #: which :mod:`repro.kernel` backend produced this result.  Pure
    #: provenance: backends are result-identical by contract, so the
    #: experiment cache deliberately ignores this field (entries are
    #: shared across backends) while the run ledger records it.
    backend: str = ""
    #: interval-sampled counter series (see
    #: :mod:`repro.observability.counters`): a columnar dict of
    #: deterministic ints, present only when sampling was enabled for
    #: the run.  Bit-identical across backends and worker boundaries,
    #: like :attr:`metrics`.
    counters: dict | None = None

    @property
    def ipc(self) -> float:
        """Instructions committed per cycle -- the paper's Figure 4-8 metric."""
        if self.failed:
            return float("nan")
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def load_fraction(self) -> float:
        return self.op_counts.get("LOAD", 0) / self.instructions

    @property
    def store_fraction(self) -> float:
        return self.op_counts.get("STORE", 0) / self.instructions

    def misses_per_instruction(self) -> float:
        return self.memory.misses_per_instruction(self.instructions)

    def execution_time_fo4(self, cycle_time_fo4: float) -> float:
        """Execution time in FO4 units: cycles x cycle time (Figure 9)."""
        if cycle_time_fo4 <= 0:
            raise ValueError("cycle time must be positive")
        return self.cycles * cycle_time_fo4

    def summary(self) -> str:
        """One-line human-readable digest."""
        if self.failed:
            return "simulation failed; no valid measurements"
        return (
            f"{self.instructions} instructions in {self.cycles} cycles, "
            f"IPC={self.ipc:.3f}, "
            f"L1 miss rate={self.memory.l1_miss_rate:.1%}, "
            f"branch accuracy={self.branches.accuracy:.1%}"
        )
