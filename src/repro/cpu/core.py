"""The four-issue dynamic superscalar out-of-order core (MXS stand-in).

Cycle-level trace-driven model of the machine in Figure 2:

* in-order **fetch** of up to 4 instructions/cycle into a 64-entry
  instruction window, with hardware branch prediction -- a mispredicted
  branch stalls fetch until the branch resolves (wrong-path execution is
  not simulated, the standard trace-driven approximation);
* out-of-order **issue** of up to 4 ready instructions/cycle, oldest
  first, with *no restriction on instruction types* per cycle (the paper
  removes functional-unit mix limits to focus on the memory system);
* loads/stores take one address-calculation cycle and then access the
  :class:`~repro.memory.hierarchy.MemorySystem`, which folds in port,
  bank, MSHR, and bus contention and returns the completion cycle;
* in-order **commit** of up to 4 instructions/cycle; stores drain from
  the store buffer to the cache after commit at lowest priority.

The 32-entry load/store buffer gates dispatch of memory operations.

The cycle loop itself lives in :mod:`repro.kernel`: :meth:`run`
dispatches to the selected :class:`~repro.kernel.SimulationBackend`
(the reference loop moved verbatim to ``repro.kernel.reference``, the
event-driven one in ``repro.kernel.fast``).  ``_issue`` and
``_skip_to_next_event`` remain as instance methods because they are
the established extension points -- the chaos harness patches them per
instance -- and both backends route through them (the fast backend
falls back to the reference loop when it finds them patched).
"""

from __future__ import annotations

from typing import Iterator

from repro.cpu.branch import BranchStats, make_predictor
from repro.cpu.config import ProcessorConfig
from repro.cpu.isa import MAX_DEP_DISTANCE, MicroOp
from repro.cpu.result import PipelineStats, SimulationResult
from repro.memory.hierarchy import MemorySystem
from repro.observability import trace as obs_trace

_NOT_ISSUED = -1
_RING = 1024
_RING_MASK = _RING - 1
assert _RING >= MAX_DEP_DISTANCE + 512, "ring must outlive any dependence"


class _Slot:
    """One instruction in flight."""

    __slots__ = ("seq", "mop", "complete", "issued")

    def __init__(self, seq: int, mop: MicroOp):
        self.seq = seq
        self.mop = mop
        self.complete = 0  # valid only when issued
        self.issued = False


class OutOfOrderCore:
    """Runs a micro-op trace against a memory system and reports timing."""

    def __init__(self, config: ProcessorConfig, memory: MemorySystem):
        self.config = config.validated()
        self.memory = memory
        self.predictor = make_predictor(
            config.branch_predictor, config.predictor_entries
        )

    def run(
        self,
        trace: Iterator[MicroOp],
        max_instructions: int,
        *,
        warmup_instructions: int = 0,
        backend: str | None = None,
    ) -> SimulationResult:
        """Simulate until ``max_instructions`` commit (post-warmup).

        ``warmup_instructions`` are executed first to warm the caches and
        predictor; statistics are reset when they have committed, so the
        reported IPC covers only the measured region (the paper likewise
        simulates "an interesting portion" of each benchmark).

        ``backend`` names a :mod:`repro.kernel` backend to run on;
        ``None`` uses the process-wide selection (``REPRO_BACKEND`` /
        ``--backend``).  All backends produce bit-identical results.
        """
        from repro import kernel

        impl = (
            kernel.active_backend()
            if backend is None
            else kernel.get_backend(backend)
        )
        return impl.run(
            self, trace, max_instructions, warmup_instructions=warmup_instructions
        )

    # ------------------------------------------------------------------
    # Extension points: both backends issue through ``_issue``, and the
    # reference loop jumps idle stretches through ``_skip_to_next_event``.
    # Per-instance replacements (chaos directives, tests) are honored by
    # every backend -- the fast one by deferring to the reference loop.
    # ------------------------------------------------------------------

    def _issue(
        self,
        slot: _Slot,
        cycle: int,
        store_lines: dict[int, tuple[int, int]],
        pipeline: PipelineStats,
        tracer: "obs_trace.Tracer | None" = None,
    ) -> None:
        from repro.kernel import reference

        reference.issue_slot(self, slot, cycle, store_lines, pipeline, tracer)

    def _skip_to_next_event(
        self,
        cycle: int,
        window,
        comp: list[int],
        blocking_branch: _Slot | None,
    ) -> int:
        """Nothing happened this cycle: jump to the next interesting one."""
        from repro.kernel import reference

        return reference.skip_to_next_event(
            self, cycle, window, comp, blocking_branch
        )

    def _reset_stats(self) -> None:
        """Zero every statistics object after cache warmup."""
        from repro.memory.stats import MemoryStats

        self.memory.stats = MemoryStats()
        self.predictor.stats = BranchStats()
        arbiter = self.memory.arbiter
        arbiter.stats = type(arbiter.stats)()
        self.memory.mshrs.stats = type(self.memory.mshrs.stats)()
        self.memory.mshrs.occupancy_peak = 0
        if self.memory.line_buffer is not None:
            self.memory.line_buffer.stats = type(self.memory.line_buffer.stats)()
        if getattr(self.memory, "victim_cache", None) is not None:
            self.memory.victim_cache.stats = type(self.memory.victim_cache.stats)()
        backside = self.memory.backside
        backside.stats = type(backside.stats)()
        if self.memory.attribution is not None:
            # Attribution covers the measured region only, same as stats.
            self.memory.attribution.reset()


def simulate(
    trace: Iterator[MicroOp],
    memory: MemorySystem,
    *,
    config: ProcessorConfig | None = None,
    max_instructions: int = 20_000,
    warmup_instructions: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build a core and run a trace."""
    core = OutOfOrderCore(config or ProcessorConfig(), memory)
    return core.run(
        trace, max_instructions, warmup_instructions=warmup_instructions
    )
