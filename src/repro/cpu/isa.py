"""Micro-operation model and R10000 execution latencies (section 3.1).

The simulated processor is trace-driven: workload generators produce a
stream of :class:`MicroOp` records carrying everything the timing model
needs -- operation class, data dependences (as distances back to the
producing instruction), memory address for loads/stores, and branch
target behavior.  Functional emulation of MIPS semantics is deliberately
out of scope; the paper's questions are entirely about timing.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Instruction classes with distinct execution behavior."""

    IALU = 0  #: integer add/sub/logic/shift
    IMUL = 1
    IDIV = 2
    FADD = 3  #: FP add/sub/convert
    FMUL = 4
    FDIV = 5
    FSQRT = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9
    NOP = 10


#: Result latency in cycles for non-memory operations, per the MIPS
#: R10000 [Yeag96, MIPS94].  Loads/stores take one cycle of address
#: calculation and then access the memory system ("the load latency is
#: actually one cycle greater than the cache access time due to the
#: load's address calculation").
R10000_LATENCY: dict[Op, int] = {
    Op.IALU: 1,
    Op.IMUL: 6,
    Op.IDIV: 35,
    Op.FADD: 2,
    Op.FMUL: 2,
    Op.FDIV: 12,
    Op.FSQRT: 18,
    Op.BRANCH: 1,
    Op.NOP: 1,
}

#: Address-calculation latency for loads and stores.
ADDRESS_CALC_CYCLES = 1

#: Dependence distances beyond this are clamped by generators; the core
#: sizes its completion ring buffer from it.
MAX_DEP_DISTANCE = 256

MEMORY_OPS = frozenset({Op.LOAD, Op.STORE})

#: Functional-unit class of each op, for optional issue restrictions.
FU_CLASS: dict[Op, str] = {
    Op.IALU: "integer",
    Op.IMUL: "integer",
    Op.IDIV: "integer",
    Op.FADD: "float",
    Op.FMUL: "float",
    Op.FDIV: "float",
    Op.FSQRT: "float",
    Op.LOAD: "memory",
    Op.STORE: "memory",
    Op.BRANCH: "branch",
    Op.NOP: "integer",
}


class MicroOp:
    """One dynamic instruction in a workload trace.

    ``srcs`` holds distances (in dynamic instructions) back to each
    producer: ``(1, 3)`` means the values produced one and three
    instructions earlier are consumed.  Distances that reach before the
    start of the trace are treated as always-ready (architectural state).
    """

    __slots__ = ("op", "srcs", "address", "pc", "taken")

    def __init__(
        self,
        op: Op,
        srcs: tuple[int, ...] = (),
        address: int = 0,
        pc: int = 0,
        taken: bool = False,
    ):
        for distance in srcs:
            if not 1 <= distance <= MAX_DEP_DISTANCE:
                raise ValueError(
                    f"dependence distance {distance} outside "
                    f"[1, {MAX_DEP_DISTANCE}]"
                )
        self.op = op
        self.srcs = srcs
        self.address = address
        self.pc = pc
        self.taken = taken

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def latency(self) -> int:
        """Execution latency excluding memory time (loads/stores: addr calc)."""
        if self.is_memory:
            return ADDRESS_CALC_CYCLES
        return R10000_LATENCY[self.op]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.is_memory:
            extra = f", address={self.address:#x}"
        elif self.op is Op.BRANCH:
            extra = f", pc={self.pc:#x}, taken={self.taken}"
        return f"MicroOp({self.op.name}, srcs={self.srcs}{extra})"


def load(address: int, srcs: tuple[int, ...] = ()) -> MicroOp:
    return MicroOp(Op.LOAD, srcs, address=address)


def store(address: int, srcs: tuple[int, ...] = ()) -> MicroOp:
    return MicroOp(Op.STORE, srcs, address=address)


def branch(pc: int, taken: bool, srcs: tuple[int, ...] = ()) -> MicroOp:
    return MicroOp(Op.BRANCH, srcs, pc=pc, taken=taken)


def alu(srcs: tuple[int, ...] = ()) -> MicroOp:
    return MicroOp(Op.IALU, srcs)
