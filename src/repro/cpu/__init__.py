"""Dynamic superscalar processor model (the paper's MXS stand-in)."""

from repro.cpu.branch import (
    BranchPredictor,
    BranchStats,
    GsharePredictor,
    PerfectPredictor,
    TwoBitPredictor,
    make_predictor,
)
from repro.cpu.config import R10000_FU_LIMITS, ProcessorConfig
from repro.cpu.core import OutOfOrderCore, simulate
from repro.cpu.isa import (
    ADDRESS_CALC_CYCLES,
    MAX_DEP_DISTANCE,
    MEMORY_OPS,
    R10000_LATENCY,
    MicroOp,
    Op,
    alu,
    branch,
    load,
    store,
)
from repro.cpu.result import PipelineStats, SimulationResult

__all__ = [
    "BranchPredictor",
    "BranchStats",
    "GsharePredictor",
    "PerfectPredictor",
    "TwoBitPredictor",
    "make_predictor",
    "R10000_FU_LIMITS",
    "ProcessorConfig",
    "OutOfOrderCore",
    "simulate",
    "ADDRESS_CALC_CYCLES",
    "MAX_DEP_DISTANCE",
    "MEMORY_OPS",
    "R10000_LATENCY",
    "MicroOp",
    "Op",
    "alu",
    "branch",
    "load",
    "store",
    "PipelineStats",
    "SimulationResult",
]
