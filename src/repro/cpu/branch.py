"""Hardware branch prediction for the dynamic superscalar core.

MXS models "hardware branch prediction"; we provide the two classic
table-based schemes of that era plus a perfect oracle for experiments
that want to isolate memory effects:

* :class:`TwoBitPredictor` -- per-PC saturating two-bit counters;
* :class:`GsharePredictor` -- global history XOR PC indexing;
* :class:`PerfectPredictor` -- never mispredicts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchStats:
    branches: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.misprediction_rate if self.branches else 1.0


class BranchPredictor:
    """Interface: predict, then record the resolved outcome."""

    def __init__(self) -> None:
        self.stats = BranchStats()

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict, update, and return whether the prediction was correct."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        self.stats.branches += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        return correct


class TwoBitPredictor(BranchPredictor):
    """Classic 2-bit saturating counter table, initialized weakly taken."""

    def __init__(self, entries: int = 2048):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"table entries must be a power of two: {entries}")
        super().__init__()
        self.entries = entries
        self._mask = entries - 1
        self._table = [2] * entries  # 0-1 predict not-taken, 2-3 taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)


class GsharePredictor(BranchPredictor):
    """Two-bit counters indexed by PC xor global branch history."""

    def __init__(self, entries: int = 2048, history_bits: int = 8):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"table entries must be a power of two: {entries}")
        super().__init__()
        self.entries = entries
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [2] * entries

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class PerfectPredictor(BranchPredictor):
    """Oracle predictor: useful for isolating memory-system effects."""

    def predict(self, pc: int) -> bool:  # pragma: no cover - trivial
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def observe(self, pc: int, taken: bool) -> bool:
        self.stats.branches += 1
        return True


def make_predictor(kind: str, entries: int = 2048) -> BranchPredictor:
    if kind == "twobit":
        return TwoBitPredictor(entries)
    if kind == "gshare":
        return GsharePredictor(entries)
    if kind == "perfect":
        return PerfectPredictor()
    raise ValueError(f"unknown branch predictor: {kind!r}")
