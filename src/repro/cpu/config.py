"""Processor configuration (section 3.1 / Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorConfig:
    """The paper's four-issue dynamic superscalar machine.

    Defaults mirror Figure 2: 4-issue, R10000 instruction latencies, a
    64-entry instruction window (reorder buffer), a 32-entry load/store
    buffer, hardware branch prediction, and no restriction on the mix of
    instruction types issued per cycle.  The instruction cache is
    perfect (handled by the core: fetch never misses).
    """

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    window_size: int = 64
    lsq_size: int = 32
    branch_predictor: str = "twobit"
    predictor_entries: int = 2048
    #: extra cycles to redirect fetch after a mispredicted branch resolves
    mispredict_redirect_penalty: int = 3
    #: forward store data to later same-line loads still in the window
    store_forwarding: bool = False
    #: per-cycle functional-unit limits by class, e.g. the R10000's
    #: ``R10000_FU_LIMITS``.  None reproduces the paper's assumption of
    #: "no restrictions on the type of instructions issued each cycle".
    fu_limits: "tuple[tuple[str, int], ...] | None" = None
    #: raise :class:`~repro.robustness.errors.DeadlockError` when no
    #: instruction commits for this many cycles (0 disables the watchdog)
    watchdog_stall_cycles: int = 100_000
    #: run the memory system's structural audit every this many commits
    #: (0 disables periodic audits; a final audit still runs at the end)
    audit_interval_commits: int = 8192

    def validated(self) -> "ProcessorConfig":
        for name in ("fetch_width", "issue_width", "commit_width"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.window_size < self.fetch_width:
            raise ValueError("window must hold at least one fetch group")
        if self.lsq_size < 1:
            raise ValueError("load/store buffer needs at least one entry")
        if self.mispredict_redirect_penalty < 0:
            raise ValueError("redirect penalty cannot be negative")
        if self.watchdog_stall_cycles < 0:
            raise ValueError("watchdog_stall_cycles cannot be negative")
        if self.audit_interval_commits < 0:
            raise ValueError("audit_interval_commits cannot be negative")
        if self.fu_limits is not None:
            valid = {"integer", "float", "memory", "branch"}
            for unit, count in self.fu_limits:
                if unit not in valid:
                    raise ValueError(f"unknown functional unit class {unit!r}")
                if count < 1:
                    raise ValueError(f"need at least one {unit} unit")
        return self


#: The real R10000's issue resources [Yeag96]: two integer ALUs, one
#: FP adder + one FP multiplier (modeled together), one load/store unit.
R10000_FU_LIMITS: tuple[tuple[str, int], ...] = (
    ("integer", 2),
    ("float", 2),
    ("memory", 1),
    ("branch", 1),
)
