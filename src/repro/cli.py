"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro figure1
    python -m repro figure4 --benchmarks gcc tomcatv
    python -m repro figure9 --instructions 20000
    python -m repro headlines --jobs 4
    python -m repro headlines --backend fast
    python -m repro figure8 --jobs 4 --progress --serve-metrics 9100
    python -m repro all
    python -m repro figure4 --jobs 2 --point-timeout 120
    python -m repro figure4 --resume
    python -m repro cache info
    python -m repro cache clear
    python -m repro cache verify
    python -m repro runs resume last
    python -m repro trace gcc --trace-out gcc.jsonl.gz
    python -m repro trace gcc --format chrome
    python -m repro trace --from-jsonl gcc.jsonl.gz --format chrome
    python -m repro metrics gcc
    python -m repro metrics gcc --format json
    python -m repro counters gcc
    python -m repro counters gcc --interval 500 --format csv
    python -m repro counters gcc --format chrome
    python -m repro compare gcc --a banked-2 --b dual-ported
    python -m repro diagnose tomcatv
    python -m repro diagnose tomcatv --from-counters
    python -m repro figure4 --profile
    python -m repro runs list
    python -m repro runs show last
    python -m repro runs compare
    python -m repro figure4 --jobs 4 --spans-out sweep.jsonl.gz
    python -m repro spans last
    python -m repro spans --from-jsonl sweep.jsonl.gz --format chrome

Instruction budgets can also be scaled globally with ``REPRO_SCALE``
(a multiplier) or pinned with ``REPRO_INSTRUCTIONS`` (absolute measured
count).  ``--backend {reference,fast}`` (or ``REPRO_BACKEND``) selects
the simulation kernel; backends are bit-identical in output, so this is
purely a speed knob and cached results are shared between them.
Results persist in ``.repro-cache/`` (override with ``--cache-dir`` or
``REPRO_CACHE_DIR``; disable with ``--no-cache``), so a second run of
the same figures is nearly free.

Observability: ``trace <benchmark>`` records the full event stream of
one simulation of the paper's recommended organization (``--format
chrome`` writes Chrome trace-event JSON for Perfetto instead of JSONL;
``--from-jsonl`` converts an existing trace offline); ``metrics
[benchmark]`` prints every named counter of that design point (served
from the result store when warm); ``counters <benchmark>`` samples the
microarchitectural counter set every ``--interval`` committed
instructions (or ``REPRO_COUNTER_INTERVAL``) and prints the per-phase
time series with sparklines (``--format json|csv`` for the raw series;
``--format chrome`` merges Perfetto counter tracks into the simulation
trace export); ``compare <benchmark> --a <org> --b <org>`` runs two
design points with sampling on, aligns their series on the instruction
axis, ranks the divergent intervals, and prints a paper-style verdict;
``diagnose <benchmark>`` re-runs the Figure 4-7 design points with
latency attribution and ranks each one's stall sources
(``--from-counters`` adds each point's worst sampled interval to the
narrative); ``--profile`` reports per-phase wall clock and
events/second for any experiment run.  Setting ``REPRO_TRACE=<path>``
streams every event of any command to ``<path>`` as JSON lines
(gzipped when the path ends in ``.gz``); ``--attribution`` adds exact
per-load critical-path metrics to trace/metrics runs.

Live telemetry: during any figure/sweep run, ``--progress`` renders a
live per-point status display with ETA (auto-enabled on a TTY;
``--no-progress`` forces it off) and ``--serve-metrics PORT`` starts a
background HTTP thread exposing Prometheus text-format ``/metrics``
plus ``/healthz`` while the sweep is in flight.  Every ``execute()``
against the persistent store also appends a record to the run ledger
(``.repro-cache/runs.jsonl``); ``runs list`` shows the history,
``runs show [ref]`` one record, and ``runs compare [a] [b]`` diffs two
runs' per-point metrics, flagging any drift beyond ``--rel-tol``
(default 0.0 -- the golden suite's exact-agreement bar).

Sweep spans: ``--spans-out PATH`` (or ``REPRO_SPANS=PATH``) records a
hierarchical span trace of the *orchestration* -- plan lookup, cost
pricing, chunk packing, queue wait, per-point worker execution,
absorption, store writes, ledger append -- as JSONL (gzipped for
``.gz`` paths).  ``repro spans [ref]`` resolves a recorded run through
the ledger (default ``last``) and prints its critical path with a
speedup verdict; ``--format json`` emits the full analysis,
``--format chrome`` writes Perfetto-loadable orchestration tracks
(one per worker), and ``--from-jsonl`` analyzes a span file offline.

Crash safety: every sweep keeps a checkpoint next to the store; SIGINT/
SIGTERM finish in-flight points, flush checkpoint and ledger, and exit
with code 4 so ``--resume`` (same command) or ``repro runs resume
[ref]`` can continue, re-executing only what is missing -- output stays
byte-identical to an uninterrupted run.  ``--point-timeout SECONDS``
bounds each design point's wall clock (also via
``REPRO_POINT_TIMEOUT``): an overrunning point is cancelled and
recorded as a ``timeout`` gap instead of hanging the sweep.  ``cache
verify`` scans the store and ledger for torn/corrupt/mis-stamped
entries and quarantines them under ``.repro-cache/quarantine/``.

Exit codes: 0 -- everything regenerated cleanly; 3 -- finished, but
with gaps, failures, or drift; 4 -- interrupted, resumable.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core import ExperimentSettings, figures
from repro.core import reporting
from repro.engine.executor import configure_engine, get_engine
from repro.engine.store import ResultStore
from repro.observability import trace as obs_trace
from repro.robustness.runner import resilient_sweeps
from repro.workloads.catalog import BENCHMARKS, REPRESENTATIVES

EXPERIMENTS = (
    "figure1",
    "figure2",
    "table1",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "headlines",
    "ablations",
)

#: Exit code for a gracefully interrupted, resumable run (0 = clean,
#: 3 = finished with gaps/failures/drift).
EXIT_INTERRUPTED = 4


def _point_timeout_scope(timeout: float | None):
    """Export ``--point-timeout`` to workers via the environment.

    The deadline rides ``REPRO_POINT_TIMEOUT`` so pool workers inherit
    it without protocol changes; the previous value is restored on exit
    (tests call ``main()`` in-process).
    """
    from contextlib import contextmanager

    from repro.robustness.deadline import POINT_TIMEOUT_ENV

    @contextmanager
    def scope():
        if timeout is None:
            yield
            return
        previous = os.environ.get(POINT_TIMEOUT_ENV)
        os.environ[POINT_TIMEOUT_ENV] = str(timeout)
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop(POINT_TIMEOUT_ENV, None)
            else:
                os.environ[POINT_TIMEOUT_ENV] = previous

    return scope()


def _spans_scope(args: argparse.Namespace):
    """Collect orchestration spans when ``--spans-out``/``REPRO_SPANS`` ask.

    Only sweep-shaped invocations (the figures, ``all``, ``runs
    resume``) open a collector -- ``trace``/``metrics`` run one point
    and have no orchestration to span.  The path is exported as
    ``REPRO_SPANS`` (and restored afterwards -- tests drive ``main()``
    in-process), and the closing status line goes to stderr so stdout
    stays byte-identical with spans on or off.
    """
    from contextlib import contextmanager

    from repro.observability import spans as obs_spans

    experiment = args.experiment.lower()
    sweeping = (
        experiment in EXPERIMENTS
        or experiment == "all"
        or (experiment == "runs" and args.action == "resume")
    )
    path = args.spans_out or os.environ.get(obs_spans.SPANS_ENV)

    @contextmanager
    def scope():
        if not sweeping or not path:
            yield
            return
        previous = os.environ.get(obs_spans.SPANS_ENV)
        os.environ[obs_spans.SPANS_ENV] = path
        try:
            with obs_spans.collecting(path) as recorder:
                yield
        finally:
            if previous is None:
                os.environ.pop(obs_spans.SPANS_ENV, None)
            else:
                os.environ[obs_spans.SPANS_ENV] = previous
        print(
            f"[spans: {recorder.recorded} span(s) -> {path}]",
            file=sys.stderr,
        )

    return scope()


#: Default measured instructions per design point.
DEFAULT_INSTRUCTIONS = 12_000

#: Default measured instructions for the headline numbers: they are the
#: quoted result of the whole reproduction, so they get a 2x budget now
#: that the fast backend covers the cost.  Explicit ``--instructions``
#: (or ``REPRO_INSTRUCTIONS``) always wins.
HEADLINE_INSTRUCTIONS = 24_000


def _settings(
    args: argparse.Namespace, experiment: str | None = None
) -> ExperimentSettings:
    instructions = args.instructions
    if instructions is None:
        instructions = (
            HEADLINE_INSTRUCTIONS
            if experiment == "headlines"
            else DEFAULT_INSTRUCTIONS
        )
    return ExperimentSettings(
        instructions=instructions,
        timing_warmup=args.timing_warmup,
        functional_warmup=args.functional_warmup,
        seed=args.seed,
    )


def _run_one(name: str, args: argparse.Namespace) -> str:
    benchmarks = tuple(args.benchmarks)
    settings = _settings(args, experiment=name)
    if name == "figure1":
        return reporting.render_figure1(figures.figure1())
    if name == "figure2":
        return reporting.render_figure2(figures.figure2())
    if name == "table1":
        return reporting.render_table1(figures.table1())
    if name == "table2":
        return reporting.render_table2(figures.table2())
    if name == "figure3":
        return reporting.render_figure3(
            figures.figure3(benchmarks=tuple(BENCHMARKS))
        )
    if name == "figure4":
        return reporting.render_ipc_grid(
            figures.figure4(benchmarks, settings=settings),
            "ports",
            "Figure 4: ideal multi-cycle multi-ported 32 KB caches",
        )
    if name == "figure5":
        return reporting.render_ipc_grid(
            figures.figure5(benchmarks, settings=settings),
            "banks",
            "Figure 5: multi-cycle banked 32 KB caches",
        )
    if name == "figure6":
        return reporting.render_figure6(
            figures.figure6(benchmarks, settings=settings)
        )
    if name == "figure7":
        return reporting.render_figure7(
            figures.figure7(benchmarks, settings=settings)
        )
    if name == "figure8":
        return reporting.render_figure8(
            figures.figure8(benchmarks, settings=settings)
        )
    if name == "figure9":
        return reporting.render_figure9(
            figures.figure9(benchmarks, settings=settings)
        )
    if name == "headlines":
        return reporting.render_headlines(
            figures.headline_numbers(benchmarks, settings=settings)
        )
    if name == "ablations":
        return _run_ablations(settings)
    raise ValueError(f"unknown experiment {name!r}")


def _run_ablations(settings: ExperimentSettings) -> str:
    from repro.core import sweeps

    blocks = []
    mshr = sweeps.mshr_sweep("database", settings=settings)
    blocks.append(
        "MSHR depth (database):\n"
        + "\n".join(f"  {n} MSHRs: IPC={v:.3f}" for n, v in sorted(mshr.items()))
    )
    lb = sweeps.line_buffer_size_sweep("gcc", settings=settings)
    blocks.append(
        "Line-buffer size (gcc):\n"
        + "\n".join(
            f"  {n:3d} entries: IPC={ipc:.3f}, hit rate={rate:.1%}"
            for n, (ipc, rate) in sorted(lb.items())
        )
    )
    policies = sweeps.write_policy_sweep("gcc", settings=settings)
    blocks.append(
        "Write policy (gcc):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in policies.items())
    )
    victims = sweeps.victim_vs_line_buffer("gcc", settings=settings)
    blocks.append(
        "Victim cache vs line buffer (gcc, 8K):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in victims.items())
    )
    return "\n\n".join(blocks)


def _validated_benchmarks(
    parser: argparse.ArgumentParser, names: list[str]
) -> list[str]:
    """Case-insensitive benchmark validation with a one-line error."""
    by_lower = {key.lower(): key for key in BENCHMARKS}
    resolved = []
    for name in names:
        canonical = by_lower.get(name.lower())
        if canonical is None:
            parser.error(
                f"unknown benchmark {name!r}; choose from: "
                + ", ".join(sorted(BENCHMARKS))
            )
        resolved.append(canonical)
    return resolved


def _resolve_format(
    parser: argparse.ArgumentParser,
    raw: str | None,
    *,
    verb: str,
    allowed: tuple[str, ...],
) -> str:
    """Per-verb ``--format`` validation: case-insensitive, one-line error.

    The first entry of ``allowed`` is the default when the flag is
    absent.
    """
    if raw is None:
        return allowed[0]
    lowered = raw.lower()
    if lowered not in allowed:
        parser.error(
            f"unknown {verb} format {raw!r}; choose from: "
            + ", ".join(sorted(allowed))
        )
    return lowered


def _recommended_organization():
    """The paper's recommended design point (section 4): a dual-copy
    32 KB cache with a line buffer."""
    from repro.core.organizations import KB, duplicate

    return duplicate(32 * KB, line_buffer=True)


def _warn_overflow(tracer) -> None:
    """A truncated trace is never silent -- but the warning fires once
    per run with the final totals, not once per design point.

    Counting-only tracers (capacity 0, the ``--profile`` mode) retain
    nothing by design, so they never count as overflow.
    """
    if tracer.capacity <= 0 or not tracer.dropped:
        return
    points = max(tracer.overflow_points, 1)
    print(
        f"warning: ring overflowed on {points} design point(s) -- "
        f"{tracer.dropped} event(s) dropped in total; analyses of this "
        "trace are truncated "
        "(raise --trace-limit or use --trace-out for the full stream)",
        file=sys.stderr,
    )


def _convert_jsonl(args: argparse.Namespace) -> int:
    """``repro trace --from-jsonl <path> --format chrome``: offline export."""
    from repro.observability.chrometrace import read_jsonl, write_chrome_trace

    source = args.from_jsonl
    out = args.trace_out
    if out is None:
        stem = source[:-len(".gz")] if source.endswith(".gz") else source
        if stem.endswith(".jsonl"):
            stem = stem[: -len(".jsonl")]
        out = stem + ".trace.json"
    count = write_chrome_trace(read_jsonl(source), out)
    print(f"wrote {count} Chrome trace event(s) to {out}")
    return 0


def _trace_command(args: argparse.Namespace) -> int:
    """``python -m repro trace <benchmark>``: one fully traced simulation."""
    from contextlib import ExitStack

    from repro.core.experiment import run_experiment
    from repro.observability import attributing, tracing, utilization_summary

    organization = _recommended_organization()
    benchmark = args.benchmarks[0]
    chrome = args.trace_format == "chrome"
    with ExitStack() as stack:
        sink = None
        if args.trace_out is not None and not chrome:
            sink = stack.enter_context(obs_trace.open_sink(args.trace_out))
        if args.attribution:
            stack.enter_context(attributing())
        with tracing(capacity=args.trace_limit, sink=sink) as tracer:
            result = run_experiment(organization, benchmark, _settings(args))
    _warn_overflow(tracer)
    print(f"traced {organization.label} on {benchmark}: {result.summary()}")
    print()
    rows = [
        [kind, f"{count}"] for kind, count in sorted(tracer.by_kind.items())
    ]
    rows.append(["total", f"{tracer.emitted}"])
    print(reporting.format_table(["event kind", "count"], rows, "Event stream"))
    print(
        f"\n{len(tracer)} of {tracer.emitted} events retained "
        f"({tracer.dropped} dropped from the ring)"
    )
    if chrome:
        from repro.observability.chrometrace import write_chrome_trace

        out = args.trace_out or f"{benchmark}.trace.json"
        count = write_chrome_trace(tracer.events(), out)
        print(
            f"wrote {count} Chrome trace event(s) to {out} "
            "(open in Perfetto or chrome://tracing)"
        )
    elif args.trace_out is not None:
        print(f"full stream written to {args.trace_out}")
    tail = tracer.events()[-args.trace_tail:]
    if tail:
        print(f"\nlast {len(tail)} events:")
        for event in tail:
            print(f"  {event.to_json()}")
    print()
    print(utilization_summary(result, f"Pipeline utilization: {benchmark}"))
    return 0


def _print_json(payload) -> None:
    """The one JSON rendering both ``metrics`` and ``runs`` share:
    sorted keys, two-space indent, NaN-free (gaps are ``null``)."""
    import json
    import math

    def clean(value):
        if isinstance(value, float) and not math.isfinite(value):
            return None
        if isinstance(value, dict):
            return {key: clean(item) for key, item in value.items()}
        if isinstance(value, list):
            return [clean(item) for item in value]
        return value

    print(json.dumps(clean(payload), indent=2, sort_keys=True))


def _metrics_command(args: argparse.Namespace) -> int:
    """``python -m repro metrics [benchmark]``: every named counter."""
    from contextlib import ExitStack

    from repro.core.experiment import run_experiment
    from repro.observability import attributing, utilization_summary

    organization = _recommended_organization()
    benchmark = args.benchmarks[0]
    with ExitStack() as stack:
        if args.attribution:
            stack.enter_context(attributing())
        result = run_experiment(organization, benchmark, _settings(args))
    if not result.metrics:
        print(
            "no metrics on this result (stale cache entry?); "
            "run 'python -m repro cache clear' and retry",
            file=sys.stderr,
        )
        return 3
    if args.metrics_format == "json":
        _print_json(
            {
                "organization": organization.label,
                "benchmark": benchmark,
                "summary": {
                    "ipc": result.ipc,
                    "instructions": result.instructions,
                    "cycles": result.cycles,
                },
                "metrics": dict(result.metrics),
            }
        )
        return 0
    rows = [[name, f"{value}"] for name, value in result.metrics.items()]
    print(
        reporting.format_table(
            ["metric", "value"],
            rows,
            f"Metrics: {organization.label} on {benchmark}",
        )
    )
    print()
    print(utilization_summary(result, f"Pipeline utilization: {benchmark}"))
    return 0


def _diagnose_command(args: argparse.Namespace) -> int:
    """``python -m repro diagnose <benchmark>``: rank stall sources."""
    from repro.observability.diagnose import diagnose_benchmark, render_diagnosis

    benchmark = args.benchmarks[0]
    settings = _settings(args)
    counter_interval = None
    if args.from_counters:
        counter_interval = _counter_interval(args, settings)
    diagnoses = diagnose_benchmark(
        benchmark, settings, counter_interval=counter_interval
    )
    print(render_diagnosis(diagnoses, benchmark))
    return 0


def _counter_interval(
    args: argparse.Namespace, settings: ExperimentSettings
) -> int:
    """The sampling interval: ``--interval``, env, or ~20 rows/run."""
    from repro.observability import counters as obs_counters

    if args.interval is not None:
        return args.interval
    from_env = obs_counters.interval()
    if from_env is not None:
        return from_env
    return max(1, settings.scaled().instructions // 20)


def _counters_command(args: argparse.Namespace) -> int:
    """``python -m repro counters <benchmark>``: the interval series.

    Simulates directly (like ``diagnose``): sampling-enabled results
    must not pollute the shared store, and a stored counter-less result
    must not shadow a sampling run.
    """
    from repro.core.experiment import _simulate
    from repro.observability import counters as obs_counters
    from repro.observability import tracing
    from repro.workloads.catalog import benchmark as benchmark_spec

    organization = _recommended_organization()
    benchmark = args.benchmarks[0]
    settings = _settings(args)
    every = _counter_interval(args, settings)
    chrome = args.counters_format == "chrome"
    with obs_counters.sampling(every):
        if chrome:
            # The Chrome export wants the event stream too, so the
            # counter tracks land alongside the slice tracks.
            with tracing(capacity=args.trace_limit) as tracer:
                result = _simulate(
                    organization, benchmark_spec(benchmark), settings.scaled()
                )
        else:
            result = _simulate(
                organization, benchmark_spec(benchmark), settings.scaled()
            )
    series = result.counters
    if not series or not obs_counters.row_count(series):
        print(
            "no counter intervals sampled (measured window shorter "
            "than one interval?); lower --interval",
            file=sys.stderr,
        )
        return 3
    if args.counters_format == "json":
        _print_json(
            {
                "organization": organization.label,
                "benchmark": benchmark,
                "summary": {
                    "ipc": result.ipc,
                    "instructions": result.instructions,
                    "cycles": result.cycles,
                },
                "counters": series,
            }
        )
        return 0
    if args.counters_format == "csv":
        print(obs_counters.render_csv(series))
        return 0
    if chrome:
        from repro.observability.chrometrace import write_chrome_trace

        _warn_overflow(tracer)
        out = args.trace_out or f"{benchmark}.counters.trace.json"
        tracks = obs_counters.counter_track_events(
            series, label=organization.label
        )
        count = write_chrome_trace(
            tracer.events(), out, extra_events=tracks
        )
        print(
            f"wrote {count} Chrome trace event(s) to {out}, including "
            f"{len(tracks)} counter-track sample(s) "
            "(open in Perfetto or chrome://tracing)"
        )
        return 0
    print(
        f"sampled {organization.label} on {benchmark}: {result.summary()}"
    )
    print()
    print(obs_counters.render_table(series))
    print()
    print(obs_counters.render_sparklines(series))
    return 0


def _compare_command(args: argparse.Namespace) -> int:
    """``python -m repro compare <benchmark> --a X --b Y``: A/B diagnosis."""
    from repro.core.experiment import _simulate
    from repro.observability import counters as obs_counters
    from repro.observability.diagnose import compare_catalog
    from repro.workloads.catalog import benchmark as benchmark_spec

    catalog = compare_catalog()

    def resolve(label: str) -> tuple[str, str, object]:
        entry = catalog.get(label.lower())
        if entry is None:
            print(
                f"unknown design point {label!r}; choose from: "
                + ", ".join(sorted(catalog)),
                file=sys.stderr,
            )
            raise SystemExit(2)
        return (label.lower(), *entry)

    label_a, figure_a, org_a = resolve(args.compare_a)
    label_b, figure_b, org_b = resolve(args.compare_b)
    benchmark = args.benchmarks[0]
    settings = _settings(args)
    spec = benchmark_spec(benchmark)
    every = _counter_interval(args, settings)
    with obs_counters.sampling(every):
        result_a = _simulate(org_a, spec, settings.scaled())
        result_b = _simulate(org_b, spec, settings.scaled())
    ranked = obs_counters.rank_divergent(result_a.counters, result_b.counters)
    # The verdict cites the figure the slower organization belongs to.
    figure = figure_a if result_a.ipc <= result_b.ipc else figure_b
    sentence = obs_counters.verdict(
        label_a,
        label_b,
        result_a.counters,
        result_b.counters,
        figure=figure,
    )
    if args.compare_format == "json":
        _print_json(
            {
                "benchmark": benchmark,
                "interval": every,
                "a": {"label": label_a, "ipc": result_a.ipc},
                "b": {"label": label_b, "ipc": result_b.ipc},
                "divergent_intervals": ranked,
                "verdict": sentence,
            }
        )
        return 0
    print(
        f"compared {label_a} (IPC {result_a.ipc:.3f}) vs {label_b} "
        f"(IPC {result_b.ipc:.3f}) on {benchmark}, "
        f"{every} instructions/interval"
    )
    print()
    rows = []
    for entry in ranked:
        start, end = entry["instructions"]
        rows.append(
            [
                f"{entry['index']}{'*' if entry['partial'] else ''}",
                f"{start}..{end}",
                f"{entry['ipc_a']:.3f}",
                f"{entry['ipc_b']:.3f}",
                f"{entry['gap']:+.3f}",
                entry["pressure_label"],
                f"{entry['pressure_value']:.1%}",
            ]
        )
    print(
        reporting.format_table(
            [
                "interval",
                "instructions",
                f"IPC {label_a}",
                f"IPC {label_b}",
                "gap",
                "divergence driver",
                "at",
            ],
            rows,
            "Divergent intervals, widest IPC gap first (* = partial tail)",
        )
    )
    print()
    print(sentence)
    return 0


def _cache_command(action: str, cache_dir: str | None) -> int:
    """``python -m repro cache {info,clear,verify}`` on the result store."""
    store = ResultStore(cache_dir)
    if action == "info":
        info = store.info()
        print(f"cache root:      {info['root']}")
        print(f"schema version:  {info['schema']}")
        print(
            f"entries:         {info['entries']} "
            f"({info['current_schema_entries']} at the current schema)"
        )
        print(f"size:            {info['bytes']} bytes")
        if info["checkpoints"]:
            print(
                f"checkpoints:     {info['checkpoints']} interrupted "
                "sweep(s) (see 'repro runs resume')"
            )
        ledger = info["ledger"]
        if ledger["runs"]:
            print(
                f"run ledger:      {ledger['runs']} run(s), "
                f"last {ledger['last_run_id']} at {ledger['last_time_utc']}, "
                f"{ledger['bytes']} bytes"
            )
        else:
            print("run ledger:      no runs recorded")
        return 0
    if action == "verify":
        report = store.verify()
        print(
            f"scanned {report['scanned']} entr"
            f"{'y' if report['scanned'] == 1 else 'ies'}: "
            f"{report['ok']} healthy"
        )
        for item in report["quarantined"]:
            print(f"  quarantined {item['path']}: {item['problem']}")
            if item["moved_to"]:
                print(f"    -> {item['moved_to']}")
        ledger_report = report["ledger"]
        if ledger_report.get("torn"):
            where = ledger_report.get("fragment_path")
            print(
                "  run ledger: excised a torn trailing record"
                + (f" -> {where}" if where else "")
            )
        elif ledger_report.get("healed"):
            print("  run ledger: completed a record missing its newline")
        if not report["quarantined"] and not ledger_report.get("torn"):
            print("no damage found")
        # Always exit 0: verify's job is to leave the store healthy,
        # and after quarantining it has.  The next sweep re-simulates
        # whatever was lost.
        return 0
    removed = store.clear()
    # Run history survives a cache clear on purpose: the ledger is what
    # post-clear runs are compared against.
    print(f"removed {removed} cached result(s) from {store.root}")
    return 0


# ---------------------------------------------------------------------------
# The run-ledger verbs: repro runs {list,show,compare}
# ---------------------------------------------------------------------------


def _run_summary_row(record: dict) -> list[str]:
    summary = record.get("summary", {})
    cached = summary.get("memo", 0) + summary.get("store", 0)
    outcome_bits = [f"{summary.get('simulated', 0)} sim"]
    if cached:
        outcome_bits.append(f"{cached} cached")
    if summary.get("recovered"):
        outcome_bits.append(f"{summary['recovered']} recovered")
    if summary.get("gaps"):
        outcome_bits.append(f"{summary['gaps']} gaps")
    if summary.get("timeouts"):
        outcome_bits.append(f"{summary['timeouts']} timeouts")
    if record.get("interrupted"):
        outcome_bits.append("interrupted")
    mean_ipc = summary.get("mean_ipc")
    return [
        record.get("run_id", "?"),
        record.get("time_utc", "?"),
        f"{summary.get('points', 0)}",
        ", ".join(outcome_bits),
        f"{mean_ipc:.3f}" if mean_ipc is not None else "-",
        f"{record.get('wall_seconds', 0.0):.1f}s",
        f"{record.get('jobs', 1)}",
    ]


def _runs_list(ledger, fmt: str) -> int:
    records = ledger.records()
    if fmt == "json":
        _print_json(
            [
                {key: value for key, value in record.items() if key != "points"}
                for record in records
            ]
        )
        return 0
    if not records:
        print(f"no runs recorded yet ({ledger.path} is empty)")
        return 0
    rows = [_run_summary_row(record) for record in records]
    print(
        reporting.format_table(
            ["run", "time (UTC)", "points", "outcomes", "mean IPC", "wall", "jobs"],
            rows,
            f"Run ledger: {ledger.path}",
        )
    )
    return 0


def _runs_show(ledger, ref: str, fmt: str, parser) -> int:
    record = ledger.resolve(ref)
    if record is None:
        parser.error(
            f"no run matches {ref!r} in {ledger.path} "
            "(use an index, a run id or prefix, or 'last')"
        )
    if fmt == "json":
        _print_json(record)
        return 0
    summary = record.get("summary", {})
    print(f"run:          {record.get('run_id', '?')}")
    print(f"time (UTC):   {record.get('time_utc', '?')}")
    print(f"plan digest:  {record.get('plan_digest', '?')[:16]}")
    print(
        f"schema:       ledger v{record.get('schema', '?')}, "
        f"store v{record.get('store_schema', '?')}, "
        f"scale {record.get('scale', 1.0)}"
    )
    print(
        f"execution:    {record.get('jobs', 1)} job(s), "
        f"{record.get('wall_seconds', 0.0):.1f}s wall clock"
    )
    mean_ipc = summary.get("mean_ipc")
    print(f"mean IPC:     {f'{mean_ipc:.4f}' if mean_ipc is not None else '-'}")
    if record.get("interrupted"):
        print(
            "interrupted:  yes -- partial record; resume with "
            "'repro runs resume' or the original command plus --resume"
        )
    rows = [
        [
            row.get("label", "?"),
            row.get("outcome", "?"),
            f"{row['ipc']:.4f}" if row.get("ipc") is not None else "gap",
            f"{row.get('instructions', 0)}",
            f"{row.get('cycles', 0)}",
            f"{row['seconds']:.2f}s" if row.get("seconds") is not None else "-",
        ]
        for row in record.get("points", [])
    ]
    print()
    print(
        reporting.format_table(
            ["design point", "outcome", "IPC", "instructions", "cycles", "wall"],
            rows,
            f"{summary.get('points', len(rows))} design point(s)",
        )
    )
    spans_info = record.get("spans")
    if spans_info and spans_info.get("recorded"):
        print()
        trace_ref = spans_info.get("trace", "?")
        print(f"spans:        {spans_info['recorded']} recorded, trace {trace_ref}")
        for entry in spans_info.get("top") or []:
            print(f"              {entry['seconds']:8.3f}s  {entry['name']}")
        if spans_info.get("path"):
            print(
                f"              file: {spans_info['path']} "
                f"(analyze with 'repro spans {record.get('run_id', 'last')}')"
            )
    return 0


def _runs_compare(ledger, refs: list[str], rel_tol: float, fmt: str, parser) -> int:
    from repro.engine.ledger import compare_runs

    if len(refs) > 2:
        parser.error("'runs compare' takes at most two run references")
    if len(refs) == 2:
        record_a = ledger.resolve(refs[0])
        record_b = ledger.resolve(refs[1])
        if record_a is None or record_b is None:
            missing = refs[0] if record_a is None else refs[1]
            parser.error(f"no run matches {missing!r} in {ledger.path}")
    else:
        record_b = ledger.resolve(refs[0] if refs else "last")
        if record_b is None:
            parser.error(
                f"nothing to compare: no runs recorded in {ledger.path}"
            )
        record_a = ledger.previous_of_same_plan(record_b)
        if record_a is None:
            print(
                f"nothing to compare: {record_b.get('run_id', '?')} is the "
                "only recorded run of its plan "
                "(run the same figure again, or name two runs explicitly)",
                file=sys.stderr,
            )
            return 2
    comparison = compare_runs(record_a, record_b, rel_tol=rel_tol)
    if fmt == "json":
        _print_json(
            {
                "run_a": comparison.run_a,
                "run_b": comparison.run_b,
                "same_plan": comparison.same_plan,
                "matched_points": comparison.matched_points,
                "clean": comparison.clean,
                "rel_tol": rel_tol,
                "drifts": [
                    {
                        "label": drift.label,
                        "metric": drift.metric,
                        "value_a": drift.value_a,
                        "value_b": drift.value_b,
                    }
                    for drift in comparison.drifts
                ],
                "only_in_a": comparison.only_in_a,
                "only_in_b": comparison.only_in_b,
            }
        )
        return 0 if comparison.clean else 3
    print(f"comparing {comparison.run_a} (older) -> {comparison.run_b} (newer)")
    if not comparison.same_plan:
        print(
            "note: the runs executed different plans; "
            "only shared design points are compared",
            file=sys.stderr,
        )
    for label in comparison.only_in_a:
        print(f"  only in {comparison.run_a}: {label}")
    for label in comparison.only_in_b:
        print(f"  only in {comparison.run_b}: {label}")
    for drift in comparison.drifts:
        print(f"  DRIFT {drift.render()}")
    if comparison.clean:
        print(
            f"no drift: {comparison.matched_points} design point(s) agree "
            f"on every compared metric (rel_tol={rel_tol})"
        )
        return 0
    print(
        f"{len(comparison.drifts)} drifting metric(s) across "
        f"{comparison.matched_points} shared design point(s) "
        f"(rel_tol={rel_tol})",
        file=sys.stderr,
    )
    return 3


def _runs_resume(args: argparse.Namespace, parser) -> int:
    """``python -m repro runs resume [ref]``: finish an interrupted sweep.

    Rebuilds the interrupted plan from its checkpoint header and
    executes it whole; points an earlier run completed resolve from the
    store, so only the missing ones actually simulate.  Exits 0 when
    everything now holds a result, 3 when gaps remain, 4 when this run
    was itself interrupted.
    """
    from repro.engine.checkpoint import list_checkpoints, resolve_checkpoint
    from repro.engine.executor import ExecutionPlan
    from repro.observability.telemetry import sweep_telemetry
    from repro.robustness.shutdown import ShutdownController, SweepInterrupted

    if len(args.refs) > 1:
        parser.error("'runs resume' takes at most one checkpoint reference")
    ref = args.refs[0] if args.refs else "last"
    store = ResultStore(args.cache_dir)
    checkpoint = resolve_checkpoint(store.root, ref)
    if checkpoint is None:
        available = list_checkpoints(store.root)
        if not available:
            print(
                f"nothing to resume: no checkpoints under {store.root} "
                "(cleanly completed sweeps delete theirs)",
                file=sys.stderr,
            )
            return 2
        parser.error(
            f"no checkpoint matches {ref!r}; choose 'last' or a digest "
            "prefix from: "
            + ", ".join(cp.digest[:12] for cp in available)
        )
    keys = checkpoint.keys()
    if not keys:
        print(
            f"checkpoint {checkpoint.digest[:12]} has no readable plan "
            f"header ({checkpoint.path}); delete it and re-run the "
            "original command",
            file=sys.stderr,
        )
        return 2
    status = checkpoint.status()
    print(
        f"resuming sweep {checkpoint.digest[:12]}: "
        f"{status['completed']} of {status['planned']} point(s) already "
        f"done, {status['remaining']} to go"
    )
    previous = configure_engine(jobs=args.jobs, store=store)
    hits_before = store.hits
    try:
        with _point_timeout_scope(args.point_timeout):
            with ShutdownController():
                with sweep_telemetry(
                    progress=args.progress,
                    serve_port=args.serve_metrics,
                    store=store,
                ):
                    with resilient_sweeps() as log:
                        plan = ExecutionPlan()
                        for key in keys:
                            # Checkpoint keys carry already-scaled
                            # settings; add_key skips re-scaling.
                            plan.add_key(key)
                        try:
                            plan.execute()
                        except SweepInterrupted as stop:
                            print(f"[{stop}]", file=sys.stderr)
                            print(
                                "[resume again with: python -m repro runs "
                                f"resume {checkpoint.digest[:12]}]",
                                file=sys.stderr,
                            )
                            return EXIT_INTERRUPTED
    finally:
        get_engine().shutdown_pool()
        configure_engine(jobs=previous[0], store=previous[1])
    served = store.hits - hits_before
    simulated = len(keys) - served
    print(
        f"resume complete: {served} point(s) served from the store, "
        f"{simulated} executed this run"
    )
    summary = log.summary()
    if summary:
        print(summary, file=sys.stderr)
    return 3 if log.records else 0


def _spans_command(args: argparse.Namespace, parser) -> int:
    """``python -m repro spans [ref]``: critical-path analysis of a sweep.

    Resolves the span file through the run ledger (``last`` by default)
    or reads one directly with ``--from-jsonl``.  ``--format chrome``
    exports the Perfetto orchestration tracks instead of the report.
    """
    from repro.observability.spans import analyze, read_spans, render_analysis

    if args.refs:
        parser.error("'spans' takes at most one run reference")
    source = args.from_jsonl
    trace_id = None
    if source is not None:
        if args.action is not None:
            parser.error(
                "--from-jsonl reads a span file directly; "
                "drop the run reference"
            )
    else:
        ledger = ResultStore(args.cache_dir).ledger()
        ref = args.action or "last"
        record = ledger.resolve(ref)
        if record is None:
            print(
                f"no run matches {ref!r} in {ledger.path} "
                "(use an index, a run id or prefix, or 'last')",
                file=sys.stderr,
            )
            return 2
        run_id = record.get("run_id", "?")
        info = record.get("spans")
        if not info or not info.get("recorded"):
            print(
                f"run {run_id} recorded no spans; re-run the sweep with "
                "--spans-out PATH (or REPRO_SPANS=PATH)",
                file=sys.stderr,
            )
            return 2
        source = info.get("path")
        trace_id = info.get("trace")
        if not source:
            print(
                f"run {run_id} recorded {info['recorded']} span(s) but no "
                "sink file; re-run with --spans-out PATH to keep them",
                file=sys.stderr,
            )
            return 2
    if not os.path.exists(source):
        print(f"span file {source} does not exist", file=sys.stderr)
        return 2
    spans = read_spans(source)
    if not spans:
        print(f"no spans in {source}", file=sys.stderr)
        return 2
    if args.spans_format == "chrome":
        from repro.observability.chrometrace import write_chrome_spans

        selected = (
            [s for s in spans if s.get("trace") == trace_id]
            if trace_id is not None
            else spans
        )
        out = args.trace_out
        if out is None:
            stem = source[: -len(".gz")] if source.endswith(".gz") else source
            if stem.endswith(".jsonl"):
                stem = stem[: -len(".jsonl")]
            out = stem + ".trace.json"
        count = write_chrome_spans(selected or spans, out)
        print(
            f"wrote {count} Chrome trace event(s) to {out} "
            "(open in Perfetto or chrome://tracing)"
        )
        return 0
    analysis = analyze(spans, trace_id=trace_id)
    if analysis is None:
        print(f"no complete trace found in {source}", file=sys.stderr)
        return 2
    if args.spans_format == "json":
        _print_json(analysis)
        return 0
    print(render_analysis(analysis))
    return 0


def _runs_command(args: argparse.Namespace, parser) -> int:
    """``python -m repro runs {list,show,compare,resume}``."""
    ledger = ResultStore(args.cache_dir).ledger()
    action = args.action or "list"
    if action == "list":
        if args.refs:
            parser.error(f"unexpected extra argument {args.refs[0]!r}")
        return _runs_list(ledger, args.runs_format)
    if action == "show":
        if len(args.refs) > 1:
            parser.error("'runs show' takes at most one run reference")
        ref = args.refs[0] if args.refs else "last"
        return _runs_show(ledger, ref, args.runs_format, parser)
    if action == "compare":
        return _runs_compare(
            ledger, args.refs, args.rel_tol, args.runs_format, parser
        )
    if action == "resume":
        return _runs_resume(args, parser)
    parser.error("'runs' takes an action: list, show, compare, or resume")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; honors ``REPRO_TRACE=<path>`` for any command
    (``.gz`` paths gzip the JSONL stream transparently)."""
    trace_path = os.environ.get("REPRO_TRACE")
    if not trace_path:
        return _main(argv)
    with obs_trace.open_sink(trace_path) as sink:
        with obs_trace.tracing(sink=sink) as tracer:
            code = _main(argv)
        # One consolidated warning per run, whatever the sweep size --
        # the sink got the full stream either way.
        _warn_overflow(tracer)
        print(
            f"[REPRO_TRACE: {tracer.emitted} event(s) -> {trace_path}]",
            file=sys.stderr,
        )
    return code


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables and figures from 'Designing High Bandwidth "
            "On-Chip Caches' (Wilson & Olukotun, ISCA 1997)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "which table/figure to regenerate (or 'all', 'cache', "
            "'trace', 'metrics', 'counters', 'compare', 'diagnose', "
            "'runs', 'spans')"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help=(
            "subcommand argument: 'cache' takes 'info', 'clear', or "
            "'verify'; 'trace', 'metrics', 'counters', 'compare', and "
            "'diagnose' take a benchmark name; 'runs' takes 'list', "
            "'show', 'compare', or 'resume'; 'spans' takes a run "
            "reference (default 'last')"
        ),
    )
    parser.add_argument(
        "refs",
        nargs="*",
        default=[],
        help=(
            "('runs' only) run references for 'show' and 'compare': an "
            "index (1 is oldest, -1 newest), a run id or unique prefix, "
            "or 'last'"
        ),
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(REPRESENTATIVES),
        help="benchmarks to simulate (default: the three representatives)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help=(
            f"measured instructions per design point (default "
            f"{DEFAULT_INSTRUCTIONS}; 'headlines' uses "
            f"{HEADLINE_INSTRUCTIONS}); REPRO_INSTRUCTIONS overrides"
        ),
    )
    parser.add_argument("--timing-warmup", type=int, default=2_000)
    parser.add_argument("--functional-warmup", type=int, default=300_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--backend",
        choices=("reference", "fast"),
        default=None,
        help=(
            "simulation kernel (default: $REPRO_BACKEND or 'reference'); "
            "'fast' is event-driven and bit-identical to 'reference'"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for design points (default: 1, serial)",
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per design point (also via "
            "REPRO_POINT_TIMEOUT); an overrunning point becomes a "
            "'timeout' gap instead of hanging the sweep"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue an interrupted run of the same command: already-"
            "completed points resolve from the store, only the rest "
            "re-simulate (output stays identical to an unbroken run)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result store for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result store location (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-phase wall clock and event throughput",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help=(
            "('trace'/'spans') output file: the JSONL event stream "
            "(gzipped when the name ends in .gz), or the Chrome trace "
            "with --format chrome"
        ),
    )
    parser.add_argument(
        "--spans-out",
        default=None,
        metavar="PATH",
        help=(
            "record orchestration spans of every sweep in this run to "
            "PATH as JSON lines (gzipped when the name ends in .gz; "
            "also via REPRO_SPANS); analyze with 'repro spans last'"
        ),
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default=None,
        help=(
            "output format: jsonl (default) or chrome for 'trace'; "
            "table (default) or json for 'metrics' and 'runs'; "
            "report (default), json, or chrome for 'spans'"
        ),
    )
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "live per-point progress display during sweeps "
            "(default: auto, on when stderr is a TTY)"
        ),
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve Prometheus /metrics and /healthz on 127.0.0.1:PORT "
            "while the run is in flight (0 picks a free port)"
        ),
    )
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        help=(
            "('runs compare' only) relative tolerance before a metric "
            "difference counts as drift (default 0.0: exact agreement, "
            "the golden-suite bar)"
        ),
    )
    parser.add_argument(
        "--from-jsonl",
        default=None,
        help=(
            "('trace'/'spans') read an existing JSONL/JSONL.gz file "
            "instead of running a simulation or resolving the ledger"
        ),
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help=(
            "('trace'/'metrics' only) enable per-load critical-path "
            "attribution (adds attribution.* metrics and per-event "
            "path fields)"
        ),
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=None,
        metavar="INSTRUCTIONS",
        help=(
            "('counters'/'compare'/'diagnose --from-counters') committed "
            "instructions per sampled interval (default: "
            "$REPRO_COUNTER_INTERVAL, else ~20 intervals per run)"
        ),
    )
    parser.add_argument(
        "--a",
        dest="compare_a",
        default="banked-2",
        metavar="ORG",
        help=(
            "('compare' only) first design point label "
            "(default banked-2; see 'repro compare' errors for choices)"
        ),
    )
    parser.add_argument(
        "--b",
        dest="compare_b",
        default="dual-ported",
        metavar="ORG",
        help=(
            "('compare' only) second design point label "
            "(default dual-ported)"
        ),
    )
    parser.add_argument(
        "--from-counters",
        action="store_true",
        help=(
            "('diagnose' only) also sample interval counters and cite "
            "each point's worst interval in the narrative"
        ),
    )
    parser.add_argument(
        "--trace-limit",
        type=int,
        default=obs_trace.DEFAULT_CAPACITY,
        help="('trace' only) ring-buffer capacity "
        f"(default {obs_trace.DEFAULT_CAPACITY})",
    )
    parser.add_argument(
        "--trace-tail",
        type=int,
        default=10,
        help="('trace' only) how many trailing events to print (default 10)",
    )
    args = parser.parse_args(argv)
    if args.point_timeout is not None and args.point_timeout <= 0:
        parser.error(f"--point-timeout must be positive, got {args.point_timeout}")
    if args.interval is not None and args.interval < 1:
        parser.error(f"--interval must be >= 1, got {args.interval}")

    if args.backend is not None:
        # Scope, not a global set: tests drive main() in-process, and
        # the scope also exports REPRO_BACKEND so pool workers inherit
        # the selection.
        from repro import kernel

        with kernel.use_backend(args.backend):
            with _spans_scope(args):
                return _dispatch(parser, args)
    with _spans_scope(args):
        return _dispatch(parser, args)


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    experiment = args.experiment.lower()
    if experiment == "runs":
        args.runs_format = _resolve_format(
            parser, args.fmt, verb="runs", allowed=("table", "json")
        )
        return _runs_command(args, parser)
    if experiment == "spans":
        args.spans_format = _resolve_format(
            parser, args.fmt, verb="spans", allowed=("report", "json", "chrome")
        )
        return _spans_command(args, parser)
    if args.refs:
        parser.error(f"unexpected extra argument {args.refs[0]!r}")
    if experiment == "cache":
        if args.action not in ("info", "clear", "verify"):
            parser.error("'cache' takes an action: info, clear, or verify")
        return _cache_command(args.action, args.cache_dir)
    if experiment in ("trace", "metrics", "diagnose", "counters", "compare"):
        if experiment == "trace":
            args.trace_format = _resolve_format(
                parser, args.fmt, verb="trace", allowed=("jsonl", "chrome")
            )
        elif experiment == "counters":
            args.counters_format = _resolve_format(
                parser,
                args.fmt,
                verb="counters",
                allowed=("table", "json", "csv", "chrome"),
            )
        elif experiment == "compare":
            args.compare_format = _resolve_format(
                parser, args.fmt, verb="compare", allowed=("table", "json")
            )
        else:
            args.metrics_format = _resolve_format(
                parser, args.fmt, verb="metrics", allowed=("table", "json")
            )
        if experiment == "trace" and args.from_jsonl is not None:
            if args.trace_format != "chrome":
                parser.error("--from-jsonl requires --format chrome")
            if args.action is not None:
                parser.error(
                    "--from-jsonl converts an existing trace; "
                    "drop the benchmark name"
                )
            return _convert_jsonl(args)
        if args.action is not None:
            args.benchmarks = _validated_benchmarks(parser, [args.action])
        elif experiment in ("metrics", "counters", "compare"):
            args.benchmarks = [REPRESENTATIVES[0]]
        else:
            parser.error(f"{experiment!r} takes a benchmark name")
        if experiment == "diagnose":
            # Diagnosis simulates directly (attribution must not ride
            # or pollute the shared result store), so the engine is
            # not involved at all.
            return _diagnose_command(args)
        if experiment == "counters":
            # Same store discipline as diagnose: sampling-enabled runs
            # simulate directly, never through the shared result store.
            return _counters_command(args)
        if experiment == "compare":
            return _compare_command(args)
        if experiment == "trace":
            if args.trace_limit < 0:
                parser.error("--trace-limit cannot be negative")
            # No store: the point of 'trace' is watching a live run.
            previous = configure_engine(jobs=1, store=None)
            try:
                return _trace_command(args)
            finally:
                configure_engine(jobs=previous[0], store=previous[1])
        # With --attribution a stored (unattributed) result would lack
        # the attribution.* metrics, so bypass the store for that run.
        use_store = not args.no_cache and not args.attribution
        store = ResultStore(args.cache_dir) if use_store else None
        previous = configure_engine(jobs=1, store=store)
        try:
            return _metrics_command(args)
        finally:
            configure_engine(jobs=previous[0], store=previous[1])
    if args.fmt is not None:
        parser.error(
            "--format applies to the 'trace', 'metrics', 'counters', "
            "'compare', 'runs', and 'spans' verbs"
        )
    if args.action is not None:
        parser.error(f"unexpected extra argument {args.action!r}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if experiment != "all" and experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; choose from: "
            + ", ".join(
                EXPERIMENTS
                + (
                    "all",
                    "cache",
                    "trace",
                    "metrics",
                    "counters",
                    "compare",
                    "diagnose",
                    "runs",
                    "spans",
                )
            )
        )
    args.benchmarks = _validated_benchmarks(parser, args.benchmarks)
    if args.resume and args.no_cache:
        parser.error(
            "--resume needs the persistent result store; drop --no-cache"
        )

    profiler = None
    counting_tracer = None
    if args.profile:
        from repro.observability import PhaseProfiler, Tracer

        profiler = PhaseProfiler()
        if obs_trace.active() is None:
            # Counting-only tracer: per-kind totals, no ring retention.
            counting_tracer = Tracer(capacity=0)
            obs_trace.activate(counting_tracer)

    from repro.observability.telemetry import sweep_telemetry
    from repro.robustness.shutdown import ShutdownController, SweepInterrupted

    store = None if args.no_cache else ResultStore(args.cache_dir)
    if args.resume and store is not None:
        from repro.engine.checkpoint import list_checkpoints

        checkpoints = list_checkpoints(store.root)
        if checkpoints:
            status = checkpoints[0].status()
            print(
                f"[--resume: checkpoint {status['plan_digest'][:12]} has "
                f"{status['completed']} of {status['planned']} point(s) "
                "done; completed points resolve from the store]",
                file=sys.stderr,
            )
        else:
            print(
                "[--resume: no checkpoint found; running from scratch "
                "(the store still serves anything already simulated)]",
                file=sys.stderr,
            )
    previous = configure_engine(jobs=args.jobs, store=store)
    names = EXPERIMENTS if experiment == "all" else (experiment,)
    broken: list[str] = []
    interrupted: SweepInterrupted | None = None
    try:
        with _point_timeout_scope(args.point_timeout):
            with ShutdownController():
                with sweep_telemetry(
                    progress=args.progress,
                    serve_port=args.serve_metrics,
                    store=store,
                ):
                    with resilient_sweeps() as log:
                        for name in names:
                            start = time.time()
                            try:
                                if profiler is not None:
                                    with profiler.phase(name):
                                        output = _run_one(name, args)
                                else:
                                    output = _run_one(name, args)
                            except SweepInterrupted as stop:
                                interrupted = stop
                                print(f"[{name} interrupted: {stop}]", file=sys.stderr)
                                break
                            except Exception as error:  # noqa: BLE001 - keep figures alive
                                broken.append(name)
                                first_line = (
                                    str(error).splitlines() or [repr(error)]
                                )[0]
                                print(
                                    f"[{name} FAILED: {type(error).__name__}: "
                                    f"{first_line}]\n",
                                    file=sys.stderr,
                                )
                                continue
                            elapsed = time.time() - start
                            print(output)
                            # Stderr like every other bracketed status
                            # line: stdout carries only simulated
                            # numbers, so runs are byte-comparable
                            # across backends (and machines).
                            print(
                                f"[{name} regenerated in {elapsed:.1f}s]\n",
                                file=sys.stderr,
                            )
    finally:
        # The persistent worker pool lives for the whole invocation
        # (reused across figures); tear it down before handing the
        # engine back.
        get_engine().shutdown_pool()
        configure_engine(jobs=previous[0], store=previous[1])
        if counting_tracer is not None:
            obs_trace.deactivate()

    if profiler is not None:
        summary = profiler.summary()
        if summary:
            print(summary)

    summary = log.summary()
    if summary:
        print(summary, file=sys.stderr)
    if broken:
        print(
            f"[{len(broken)} experiment(s) failed outright: {', '.join(broken)}]",
            file=sys.stderr,
        )
    if interrupted is not None:
        hint = (
            f"python -m repro {args.experiment} --resume"
            if interrupted.checkpoint_path
            else f"python -m repro {args.experiment}"
        )
        print(
            f"[interrupted -- finished work is saved"
            + (
                f"; checkpoint: {interrupted.checkpoint_path}"
                if interrupted.checkpoint_path
                else ""
            )
            + f"; continue with: {hint} (or 'python -m repro runs resume')]",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return 3 if (broken or log.records) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
