"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro figure1
    python -m repro figure4 --benchmarks gcc tomcatv
    python -m repro figure9 --instructions 20000
    python -m repro headlines --jobs 4
    python -m repro all
    python -m repro cache info
    python -m repro cache clear
    python -m repro trace gcc --trace-out gcc.jsonl.gz
    python -m repro trace gcc --format chrome
    python -m repro trace --from-jsonl gcc.jsonl.gz --format chrome
    python -m repro metrics gcc
    python -m repro diagnose tomcatv
    python -m repro figure4 --profile

Instruction budgets can also be scaled globally with ``REPRO_SCALE``.
Results persist in ``.repro-cache/`` (override with ``--cache-dir`` or
``REPRO_CACHE_DIR``; disable with ``--no-cache``), so a second run of
the same figures is nearly free.

Observability: ``trace <benchmark>`` records the full event stream of
one simulation of the paper's recommended organization (``--format
chrome`` writes Chrome trace-event JSON for Perfetto instead of JSONL;
``--from-jsonl`` converts an existing trace offline); ``metrics
[benchmark]`` prints every named counter of that design point (served
from the result store when warm); ``diagnose <benchmark>`` re-runs the
Figure 4-7 design points with latency attribution and ranks each one's
stall sources; ``--profile`` reports per-phase wall clock and
events/second for any experiment run.  Setting ``REPRO_TRACE=<path>``
streams every event of any command to ``<path>`` as JSON lines
(gzipped when the path ends in ``.gz``); ``--attribution`` adds exact
per-load critical-path metrics to trace/metrics runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core import ExperimentSettings, figures
from repro.core import reporting
from repro.engine.executor import configure_engine
from repro.engine.store import ResultStore
from repro.observability import trace as obs_trace
from repro.robustness.runner import resilient_sweeps
from repro.workloads.catalog import BENCHMARKS, REPRESENTATIVES

EXPERIMENTS = (
    "figure1",
    "figure2",
    "table1",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "headlines",
    "ablations",
)


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        instructions=args.instructions,
        timing_warmup=args.timing_warmup,
        functional_warmup=args.functional_warmup,
        seed=args.seed,
    )


def _run_one(name: str, args: argparse.Namespace) -> str:
    benchmarks = tuple(args.benchmarks)
    settings = _settings(args)
    if name == "figure1":
        return reporting.render_figure1(figures.figure1())
    if name == "figure2":
        return reporting.render_figure2(figures.figure2())
    if name == "table1":
        return reporting.render_table1(figures.table1())
    if name == "table2":
        return reporting.render_table2(figures.table2())
    if name == "figure3":
        return reporting.render_figure3(
            figures.figure3(benchmarks=tuple(BENCHMARKS))
        )
    if name == "figure4":
        return reporting.render_ipc_grid(
            figures.figure4(benchmarks, settings=settings),
            "ports",
            "Figure 4: ideal multi-cycle multi-ported 32 KB caches",
        )
    if name == "figure5":
        return reporting.render_ipc_grid(
            figures.figure5(benchmarks, settings=settings),
            "banks",
            "Figure 5: multi-cycle banked 32 KB caches",
        )
    if name == "figure6":
        return reporting.render_figure6(
            figures.figure6(benchmarks, settings=settings)
        )
    if name == "figure7":
        return reporting.render_figure7(
            figures.figure7(benchmarks, settings=settings)
        )
    if name == "figure8":
        return reporting.render_figure8(
            figures.figure8(benchmarks, settings=settings)
        )
    if name == "figure9":
        return reporting.render_figure9(
            figures.figure9(benchmarks, settings=settings)
        )
    if name == "headlines":
        return reporting.render_headlines(
            figures.headline_numbers(benchmarks, settings=settings)
        )
    if name == "ablations":
        return _run_ablations(settings)
    raise ValueError(f"unknown experiment {name!r}")


def _run_ablations(settings: ExperimentSettings) -> str:
    from repro.core import sweeps

    blocks = []
    mshr = sweeps.mshr_sweep("database", settings=settings)
    blocks.append(
        "MSHR depth (database):\n"
        + "\n".join(f"  {n} MSHRs: IPC={v:.3f}" for n, v in sorted(mshr.items()))
    )
    lb = sweeps.line_buffer_size_sweep("gcc", settings=settings)
    blocks.append(
        "Line-buffer size (gcc):\n"
        + "\n".join(
            f"  {n:3d} entries: IPC={ipc:.3f}, hit rate={rate:.1%}"
            for n, (ipc, rate) in sorted(lb.items())
        )
    )
    policies = sweeps.write_policy_sweep("gcc", settings=settings)
    blocks.append(
        "Write policy (gcc):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in policies.items())
    )
    victims = sweeps.victim_vs_line_buffer("gcc", settings=settings)
    blocks.append(
        "Victim cache vs line buffer (gcc, 8K):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in victims.items())
    )
    return "\n\n".join(blocks)


def _validated_benchmarks(
    parser: argparse.ArgumentParser, names: list[str]
) -> list[str]:
    """Case-insensitive benchmark validation with a one-line error."""
    by_lower = {key.lower(): key for key in BENCHMARKS}
    resolved = []
    for name in names:
        canonical = by_lower.get(name.lower())
        if canonical is None:
            parser.error(
                f"unknown benchmark {name!r}; choose from: "
                + ", ".join(sorted(BENCHMARKS))
            )
        resolved.append(canonical)
    return resolved


def _recommended_organization():
    """The paper's recommended design point (section 4): a dual-copy
    32 KB cache with a line buffer."""
    from repro.core.organizations import KB, duplicate

    return duplicate(32 * KB, line_buffer=True)


def _warn_dropped(tracer) -> None:
    """Satellite guarantee: a truncated trace is never silent."""
    if tracer.dropped:
        print(
            f"warning: ring overflowed -- {tracer.dropped} event(s) dropped; "
            "analyses of this trace are truncated "
            "(raise --trace-limit or use --trace-out for the full stream)",
            file=sys.stderr,
        )


def _convert_jsonl(args: argparse.Namespace) -> int:
    """``repro trace --from-jsonl <path> --format chrome``: offline export."""
    from repro.observability.chrometrace import read_jsonl, write_chrome_trace

    source = args.from_jsonl
    out = args.trace_out
    if out is None:
        stem = source[:-len(".gz")] if source.endswith(".gz") else source
        if stem.endswith(".jsonl"):
            stem = stem[: -len(".jsonl")]
        out = stem + ".trace.json"
    count = write_chrome_trace(read_jsonl(source), out)
    print(f"wrote {count} Chrome trace event(s) to {out}")
    return 0


def _trace_command(args: argparse.Namespace) -> int:
    """``python -m repro trace <benchmark>``: one fully traced simulation."""
    from contextlib import ExitStack

    from repro.core.experiment import run_experiment
    from repro.observability import attributing, tracing, utilization_summary

    organization = _recommended_organization()
    benchmark = args.benchmarks[0]
    chrome = args.trace_format == "chrome"
    with ExitStack() as stack:
        sink = None
        if args.trace_out is not None and not chrome:
            sink = stack.enter_context(obs_trace.open_sink(args.trace_out))
        if args.attribution:
            stack.enter_context(attributing())
        with tracing(capacity=args.trace_limit, sink=sink) as tracer:
            result = run_experiment(organization, benchmark, _settings(args))
    _warn_dropped(tracer)
    print(f"traced {organization.label} on {benchmark}: {result.summary()}")
    print()
    rows = [
        [kind, f"{count}"] for kind, count in sorted(tracer.by_kind.items())
    ]
    rows.append(["total", f"{tracer.emitted}"])
    print(reporting.format_table(["event kind", "count"], rows, "Event stream"))
    print(
        f"\n{len(tracer)} of {tracer.emitted} events retained "
        f"({tracer.dropped} dropped from the ring)"
    )
    if chrome:
        from repro.observability.chrometrace import write_chrome_trace

        out = args.trace_out or f"{benchmark}.trace.json"
        count = write_chrome_trace(tracer.events(), out)
        print(
            f"wrote {count} Chrome trace event(s) to {out} "
            "(open in Perfetto or chrome://tracing)"
        )
    elif args.trace_out is not None:
        print(f"full stream written to {args.trace_out}")
    tail = tracer.events()[-args.trace_tail:]
    if tail:
        print(f"\nlast {len(tail)} events:")
        for event in tail:
            print(f"  {event.to_json()}")
    print()
    print(utilization_summary(result, f"Pipeline utilization: {benchmark}"))
    return 0


def _metrics_command(args: argparse.Namespace) -> int:
    """``python -m repro metrics [benchmark]``: every named counter."""
    from contextlib import ExitStack

    from repro.core.experiment import run_experiment
    from repro.observability import attributing, utilization_summary

    organization = _recommended_organization()
    benchmark = args.benchmarks[0]
    with ExitStack() as stack:
        if args.attribution:
            stack.enter_context(attributing())
        result = run_experiment(organization, benchmark, _settings(args))
    if not result.metrics:
        print(
            "no metrics on this result (stale cache entry?); "
            "run 'python -m repro cache clear' and retry",
            file=sys.stderr,
        )
        return 3
    rows = [[name, f"{value}"] for name, value in result.metrics.items()]
    print(
        reporting.format_table(
            ["metric", "value"],
            rows,
            f"Metrics: {organization.label} on {benchmark}",
        )
    )
    print()
    print(utilization_summary(result, f"Pipeline utilization: {benchmark}"))
    return 0


def _diagnose_command(args: argparse.Namespace) -> int:
    """``python -m repro diagnose <benchmark>``: rank stall sources."""
    from repro.observability.diagnose import diagnose_benchmark, render_diagnosis

    benchmark = args.benchmarks[0]
    diagnoses = diagnose_benchmark(benchmark, _settings(args))
    print(render_diagnosis(diagnoses, benchmark))
    return 0


def _cache_command(action: str, cache_dir: str | None) -> int:
    """``python -m repro cache {info,clear}`` against the result store."""
    store = ResultStore(cache_dir)
    if action == "info":
        info = store.info()
        print(f"cache root:      {info['root']}")
        print(f"schema version:  {info['schema']}")
        print(
            f"entries:         {info['entries']} "
            f"({info['current_schema_entries']} at the current schema)"
        )
        print(f"size:            {info['bytes']} bytes")
        return 0
    removed = store.clear()
    print(f"removed {removed} cached result(s) from {store.root}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; honors ``REPRO_TRACE=<path>`` for any command
    (``.gz`` paths gzip the JSONL stream transparently)."""
    trace_path = os.environ.get("REPRO_TRACE")
    if not trace_path:
        return _main(argv)
    with obs_trace.open_sink(trace_path) as sink:
        with obs_trace.tracing(sink=sink) as tracer:
            code = _main(argv)
        print(
            f"[REPRO_TRACE: {tracer.emitted} event(s) -> {trace_path}]",
            file=sys.stderr,
        )
    return code


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables and figures from 'Designing High Bandwidth "
            "On-Chip Caches' (Wilson & Olukotun, ISCA 1997)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "which table/figure to regenerate "
            "(or 'all', 'cache', 'trace', 'metrics', 'diagnose')"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help=(
            "subcommand argument: 'cache' takes 'info' or 'clear'; "
            "'trace', 'metrics', and 'diagnose' take a benchmark name"
        ),
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(REPRESENTATIVES),
        help="benchmarks to simulate (default: the three representatives)",
    )
    parser.add_argument("--instructions", type=int, default=12_000)
    parser.add_argument("--timing-warmup", type=int, default=2_000)
    parser.add_argument("--functional-warmup", type=int, default=300_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for design points (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result store for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result store location (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-phase wall clock and event throughput",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help=(
            "('trace' only) output file: the JSONL event stream "
            "(gzipped when the name ends in .gz), or the Chrome trace "
            "with --format chrome"
        ),
    )
    parser.add_argument(
        "--format",
        dest="trace_format",
        default="jsonl",
        help="('trace' only) output format: jsonl (default) or chrome",
    )
    parser.add_argument(
        "--from-jsonl",
        default=None,
        help=(
            "('trace' only) convert an existing JSONL/JSONL.gz trace "
            "to --format chrome instead of running a simulation"
        ),
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help=(
            "('trace'/'metrics' only) enable per-load critical-path "
            "attribution (adds attribution.* metrics and per-event "
            "path fields)"
        ),
    )
    parser.add_argument(
        "--trace-limit",
        type=int,
        default=obs_trace.DEFAULT_CAPACITY,
        help="('trace' only) ring-buffer capacity "
        f"(default {obs_trace.DEFAULT_CAPACITY})",
    )
    parser.add_argument(
        "--trace-tail",
        type=int,
        default=10,
        help="('trace' only) how many trailing events to print (default 10)",
    )
    args = parser.parse_args(argv)

    experiment = args.experiment.lower()
    trace_format = args.trace_format.lower()
    if trace_format not in ("jsonl", "chrome"):
        parser.error(
            f"unknown trace format {args.trace_format!r}; "
            "choose from: chrome, jsonl"
        )
    args.trace_format = trace_format
    if experiment == "cache":
        if args.action not in ("info", "clear"):
            parser.error("'cache' takes an action: info or clear")
        return _cache_command(args.action, args.cache_dir)
    if experiment in ("trace", "metrics", "diagnose"):
        if experiment == "trace" and args.from_jsonl is not None:
            if trace_format != "chrome":
                parser.error("--from-jsonl requires --format chrome")
            if args.action is not None:
                parser.error(
                    "--from-jsonl converts an existing trace; "
                    "drop the benchmark name"
                )
            return _convert_jsonl(args)
        if args.action is not None:
            args.benchmarks = _validated_benchmarks(parser, [args.action])
        elif experiment == "metrics":
            args.benchmarks = [REPRESENTATIVES[0]]
        else:
            parser.error(f"{experiment!r} takes a benchmark name")
        if experiment == "diagnose":
            # Diagnosis simulates directly (attribution must not ride
            # or pollute the shared result store), so the engine is
            # not involved at all.
            return _diagnose_command(args)
        if experiment == "trace":
            if args.trace_limit < 0:
                parser.error("--trace-limit cannot be negative")
            # No store: the point of 'trace' is watching a live run.
            previous = configure_engine(jobs=1, store=None)
            try:
                return _trace_command(args)
            finally:
                configure_engine(jobs=previous[0], store=previous[1])
        # With --attribution a stored (unattributed) result would lack
        # the attribution.* metrics, so bypass the store for that run.
        use_store = not args.no_cache and not args.attribution
        store = ResultStore(args.cache_dir) if use_store else None
        previous = configure_engine(jobs=1, store=store)
        try:
            return _metrics_command(args)
        finally:
            configure_engine(jobs=previous[0], store=previous[1])
    if args.action is not None:
        parser.error(f"unexpected extra argument {args.action!r}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if experiment != "all" and experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; choose from: "
            + ", ".join(
                EXPERIMENTS + ("all", "cache", "trace", "metrics", "diagnose")
            )
        )
    args.benchmarks = _validated_benchmarks(parser, args.benchmarks)

    profiler = None
    counting_tracer = None
    if args.profile:
        from repro.observability import PhaseProfiler, Tracer

        profiler = PhaseProfiler()
        if obs_trace.active() is None:
            # Counting-only tracer: per-kind totals, no ring retention.
            counting_tracer = Tracer(capacity=0)
            obs_trace.activate(counting_tracer)

    store = None if args.no_cache else ResultStore(args.cache_dir)
    previous = configure_engine(jobs=args.jobs, store=store)
    names = EXPERIMENTS if experiment == "all" else (experiment,)
    broken: list[str] = []
    try:
        with resilient_sweeps() as log:
            for name in names:
                start = time.time()
                try:
                    if profiler is not None:
                        with profiler.phase(name):
                            output = _run_one(name, args)
                    else:
                        output = _run_one(name, args)
                except Exception as error:  # noqa: BLE001 - keep figures alive
                    broken.append(name)
                    first_line = (str(error).splitlines() or [repr(error)])[0]
                    print(
                        f"[{name} FAILED: {type(error).__name__}: {first_line}]\n",
                        file=sys.stderr,
                    )
                    continue
                elapsed = time.time() - start
                print(output)
                print(f"[{name} regenerated in {elapsed:.1f}s]\n")
    finally:
        configure_engine(jobs=previous[0], store=previous[1])
        if counting_tracer is not None:
            obs_trace.deactivate()

    if profiler is not None:
        summary = profiler.summary()
        if summary:
            print(summary)

    summary = log.summary()
    if summary:
        print(summary, file=sys.stderr)
    if broken:
        print(
            f"[{len(broken)} experiment(s) failed outright: {', '.join(broken)}]",
            file=sys.stderr,
        )
    return 3 if (broken or log.records) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
