"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro figure1
    python -m repro figure4 --benchmarks gcc tomcatv
    python -m repro figure9 --instructions 20000
    python -m repro headlines --jobs 4
    python -m repro all
    python -m repro cache info
    python -m repro cache clear

Instruction budgets can also be scaled globally with ``REPRO_SCALE``.
Results persist in ``.repro-cache/`` (override with ``--cache-dir`` or
``REPRO_CACHE_DIR``; disable with ``--no-cache``), so a second run of
the same figures is nearly free.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import ExperimentSettings, figures
from repro.core import reporting
from repro.engine.executor import configure_engine
from repro.engine.store import ResultStore
from repro.robustness.runner import resilient_sweeps
from repro.workloads.catalog import BENCHMARKS, REPRESENTATIVES

EXPERIMENTS = (
    "figure1",
    "figure2",
    "table1",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "headlines",
    "ablations",
)


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        instructions=args.instructions,
        timing_warmup=args.timing_warmup,
        functional_warmup=args.functional_warmup,
        seed=args.seed,
    )


def _run_one(name: str, args: argparse.Namespace) -> str:
    benchmarks = tuple(args.benchmarks)
    settings = _settings(args)
    if name == "figure1":
        return reporting.render_figure1(figures.figure1())
    if name == "figure2":
        return reporting.render_figure2(figures.figure2())
    if name == "table1":
        return reporting.render_table1(figures.table1())
    if name == "table2":
        return reporting.render_table2(figures.table2())
    if name == "figure3":
        return reporting.render_figure3(
            figures.figure3(benchmarks=tuple(BENCHMARKS))
        )
    if name == "figure4":
        return reporting.render_ipc_grid(
            figures.figure4(benchmarks, settings=settings),
            "ports",
            "Figure 4: ideal multi-cycle multi-ported 32 KB caches",
        )
    if name == "figure5":
        return reporting.render_ipc_grid(
            figures.figure5(benchmarks, settings=settings),
            "banks",
            "Figure 5: multi-cycle banked 32 KB caches",
        )
    if name == "figure6":
        return reporting.render_figure6(
            figures.figure6(benchmarks, settings=settings)
        )
    if name == "figure7":
        return reporting.render_figure7(
            figures.figure7(benchmarks, settings=settings)
        )
    if name == "figure8":
        return reporting.render_figure8(
            figures.figure8(benchmarks, settings=settings)
        )
    if name == "figure9":
        return reporting.render_figure9(
            figures.figure9(benchmarks, settings=settings)
        )
    if name == "headlines":
        return reporting.render_headlines(
            figures.headline_numbers(benchmarks, settings=settings)
        )
    if name == "ablations":
        return _run_ablations(settings)
    raise ValueError(f"unknown experiment {name!r}")


def _run_ablations(settings: ExperimentSettings) -> str:
    from repro.core import sweeps

    blocks = []
    mshr = sweeps.mshr_sweep("database", settings=settings)
    blocks.append(
        "MSHR depth (database):\n"
        + "\n".join(f"  {n} MSHRs: IPC={v:.3f}" for n, v in sorted(mshr.items()))
    )
    lb = sweeps.line_buffer_size_sweep("gcc", settings=settings)
    blocks.append(
        "Line-buffer size (gcc):\n"
        + "\n".join(
            f"  {n:3d} entries: IPC={ipc:.3f}, hit rate={rate:.1%}"
            for n, (ipc, rate) in sorted(lb.items())
        )
    )
    policies = sweeps.write_policy_sweep("gcc", settings=settings)
    blocks.append(
        "Write policy (gcc):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in policies.items())
    )
    victims = sweeps.victim_vs_line_buffer("gcc", settings=settings)
    blocks.append(
        "Victim cache vs line buffer (gcc, 8K):\n"
        + "\n".join(f"  {k}: IPC={v:.3f}" for k, v in victims.items())
    )
    return "\n\n".join(blocks)


def _validated_benchmarks(
    parser: argparse.ArgumentParser, names: list[str]
) -> list[str]:
    """Case-insensitive benchmark validation with a one-line error."""
    by_lower = {key.lower(): key for key in BENCHMARKS}
    resolved = []
    for name in names:
        canonical = by_lower.get(name.lower())
        if canonical is None:
            parser.error(
                f"unknown benchmark {name!r}; choose from: "
                + ", ".join(sorted(BENCHMARKS))
            )
        resolved.append(canonical)
    return resolved


def _cache_command(action: str, cache_dir: str | None) -> int:
    """``python -m repro cache {info,clear}`` against the result store."""
    store = ResultStore(cache_dir)
    if action == "info":
        info = store.info()
        print(f"cache root:      {info['root']}")
        print(f"schema version:  {info['schema']}")
        print(
            f"entries:         {info['entries']} "
            f"({info['current_schema_entries']} at the current schema)"
        )
        print(f"size:            {info['bytes']} bytes")
        return 0
    removed = store.clear()
    print(f"removed {removed} cached result(s) from {store.root}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables and figures from 'Designing High Bandwidth "
            "On-Chip Caches' (Wilson & Olukotun, ISCA 1997)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="which table/figure to regenerate (or 'all', or 'cache')",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="subcommand action: 'cache' takes 'info' or 'clear'",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(REPRESENTATIVES),
        help="benchmarks to simulate (default: the three representatives)",
    )
    parser.add_argument("--instructions", type=int, default=12_000)
    parser.add_argument("--timing-warmup", type=int, default=2_000)
    parser.add_argument("--functional-warmup", type=int, default=300_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for design points (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result store for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result store location (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    args = parser.parse_args(argv)

    experiment = args.experiment.lower()
    if experiment == "cache":
        if args.action not in ("info", "clear"):
            parser.error("'cache' takes an action: info or clear")
        return _cache_command(args.action, args.cache_dir)
    if args.action is not None:
        parser.error(f"unexpected extra argument {args.action!r}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if experiment != "all" and experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; choose from: "
            + ", ".join(EXPERIMENTS + ("all", "cache"))
        )
    args.benchmarks = _validated_benchmarks(parser, args.benchmarks)

    store = None if args.no_cache else ResultStore(args.cache_dir)
    previous = configure_engine(jobs=args.jobs, store=store)
    names = EXPERIMENTS if experiment == "all" else (experiment,)
    broken: list[str] = []
    try:
        with resilient_sweeps() as log:
            for name in names:
                start = time.time()
                try:
                    output = _run_one(name, args)
                except Exception as error:  # noqa: BLE001 - keep figures alive
                    broken.append(name)
                    first_line = (str(error).splitlines() or [repr(error)])[0]
                    print(
                        f"[{name} FAILED: {type(error).__name__}: {first_line}]\n",
                        file=sys.stderr,
                    )
                    continue
                elapsed = time.time() - start
                print(output)
                print(f"[{name} regenerated in {elapsed:.1f}s]\n")
    finally:
        configure_engine(jobs=previous[0], store=previous[1])

    summary = log.summary()
    if summary:
        print(summary, file=sys.stderr)
    if broken:
        print(
            f"[{len(broken)} experiment(s) failed outright: {', '.join(broken)}]",
            file=sys.stderr,
        )
    return 3 if (broken or log.records) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
