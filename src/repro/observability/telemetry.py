"""Live sweep telemetry: heartbeats, progress display, ``/metrics``.

A running sweep used to be opaque: ``ExecutionPlan.execute`` fanned
design points out over worker processes and nothing came back until the
whole batch finished.  This module threads a second, *live* event path
through the engine's worker protocol:

* a :class:`TelemetryBeacon` rides inside each simulation (worker or
  parent process) and emits periodic heartbeats -- point label,
  instructions committed, current cycle, attempt number -- rate-limited
  by wall clock so the hot loop pays one ``is None`` check when
  telemetry is off and a cheap counter mask when it is on;
* worker processes ship heartbeats to the parent over the engine's
  pool channel -- the same plain ``multiprocessing.Queue`` that carries
  dispatch marks -- installed by the pool initializer *only when a hub
  is active*; the executor's wait loop drains it into
  :class:`TelemetryHub.handle` (no manager process, no extra thread,
  and the no-telemetry path never wires a queue into beacons at all);
* the hub aggregates per-point and per-worker state (status, progress,
  instructions/second, heartbeat recency via
  :class:`~repro.robustness.watchdog.LivenessMonitor`) and serves three
  consumers: the live TTY :class:`ProgressDisplay`, the Prometheus
  text-format ``/metrics`` endpoint (:class:`MetricsServer`, with
  ``/healthz``), and the deadlock watchdog, whose reports gain
  heartbeat evidence (a stuck worker is *reported stalled*, not just
  timed out).

Nothing here perturbs simulation results: heartbeats only observe, the
futures of a parallel run are still consumed in submission order, and
with telemetry off (`active_hub()` is ``None``, the default) every hook
degenerates to a single pointer test -- the same zero-overhead contract
the tracer keeps.
"""

from __future__ import annotations

import json
import re
import threading
import time
from contextlib import contextmanager
from typing import IO, TYPE_CHECKING, Callable, Iterator

from repro.observability import trace as obs_trace
from repro.observability.events import TELEMETRY_HEARTBEAT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.key import ExperimentKey
    from repro.engine.store import ResultStore
    from repro.robustness.runner import FailureLog

#: Minimum wall-clock seconds between heartbeats from one simulation.
HEARTBEAT_INTERVAL_SECONDS = 0.25

#: Commit batches between wall-clock checks inside the beacon: the hot
#: path pays ``time.monotonic()`` only once per this many calls.
_BEAT_CALL_MASK = 63

#: Terminal point states (a late heartbeat must not resurrect them).
_TERMINAL = frozenset({"done", "cached", "failed", "recovered", "gap", "timeout"})


def _point_id(key: "ExperimentKey") -> str:
    """Short stable id for one design point (display + wire format)."""
    return key.digest[:12]


# ---------------------------------------------------------------------------
# Beacon: the in-simulation side
# ---------------------------------------------------------------------------


class TelemetryBeacon:
    """Emits heartbeats from inside one running simulation.

    ``send`` is any callable taking a message dict: the hub's
    :meth:`TelemetryHub.handle` when simulating in the parent process,
    or the manager-queue forwarder in a worker.  Send errors disable
    the beacon rather than fail the simulation -- telemetry is an
    observer, never a correctness dependency.
    """

    __slots__ = (
        "point",
        "label",
        "budget",
        "attempt",
        "worker",
        "interval",
        "_send",
        "_calls",
        "_last_sent",
        "instructions",
        "cycle",
    )

    def __init__(
        self,
        point: str,
        label: str,
        send: Callable[[dict], None],
        *,
        budget: int = 0,
        attempt: int = 1,
        worker: str | None = None,
        interval: float = HEARTBEAT_INTERVAL_SECONDS,
    ):
        import os

        self.point = point
        self.label = label
        self.budget = budget
        self.attempt = attempt
        self.worker = worker if worker is not None else f"pid:{os.getpid()}"
        self.interval = interval
        self._send = send
        self._calls = 0
        self._last_sent = 0.0
        self.instructions = 0
        self.cycle = 0

    def _emit(self, message: dict) -> None:
        if self._send is None:
            return
        message.setdefault("point", self.point)
        message.setdefault("label", self.label)
        message.setdefault("worker", self.worker)
        try:
            self._send(message)
        except Exception:  # noqa: BLE001 - observer must never kill the sim
            self._send = None

    def start(self) -> None:
        self._last_sent = time.monotonic()
        self._emit(
            {
                "type": "start",
                "budget": self.budget,
                "attempt": self.attempt,
            }
        )

    def progress(self, instructions: int, cycle: int) -> None:
        """Hot-path hook: called by the core on committing cycles."""
        self.instructions = instructions
        self.cycle = cycle
        self._calls += 1
        if self._calls & _BEAT_CALL_MASK:
            return
        now = time.monotonic()
        if now - self._last_sent < self.interval:
            return
        self._last_sent = now
        self._emit(
            {
                "type": "beat",
                "instructions": instructions,
                "cycle": cycle,
                "budget": self.budget,
                "attempt": self.attempt,
            }
        )

    def stall(self, cycle: int, stalled_cycles: int) -> None:
        """Final heartbeat when the commit watchdog detects a deadlock.

        This is the liveness evidence: the parent learns *which* point
        stalled and for how many cycles, instead of inferring a dead
        worker from heartbeat silence alone.
        """
        self._emit(
            {
                "type": "stall",
                "cycle": cycle,
                "stalled_cycles": stalled_cycles,
                "instructions": self.instructions,
            }
        )

    def counters(self, index: int, row: dict) -> None:
        """Interval-boundary hook: latest counter row for this point.

        Cold path by construction -- the sampler calls it once per
        interval, never per commit -- so no rate limiting is needed;
        the hub keeps only the newest row per point.
        """
        self._emit({"type": "counters", "index": index, "row": row})

    def end(self, status: str, error_type: str | None = None) -> None:
        message: dict = {"type": "end", "status": status}
        if error_type is not None:
            message["error_type"] = error_type
        self._emit(message)


#: The process-wide active beacon (worker or parent); ``None`` = off.
_BEACON: TelemetryBeacon | None = None


def beacon() -> TelemetryBeacon | None:
    """The beacon of the currently running simulation, if any."""
    return _BEACON


def install_beacon(active: TelemetryBeacon) -> None:
    global _BEACON
    _BEACON = active


def clear_beacon() -> None:
    global _BEACON
    _BEACON = None


def notify_stall(cycle: int, stalled_cycles: int) -> None:
    """Forward deadlock evidence through the active beacon, if any."""
    active = _BEACON
    if active is not None:
        active.stall(cycle, stalled_cycles)


# ---------------------------------------------------------------------------
# Worker plumbing: the manager queue crosses the process boundary
# ---------------------------------------------------------------------------

#: Set by the pool initializer in each worker process.
_WORKER_QUEUE = None


def _init_worker(queue) -> None:
    """``ProcessPoolExecutor`` initializer: remember the heartbeat queue."""
    global _WORKER_QUEUE
    _WORKER_QUEUE = queue


def _queue_send(message: dict) -> None:
    _WORKER_QUEUE.put(message)


def point_beacon(
    key: "ExperimentKey",
    send: Callable[[dict], None] | None = None,
    attempt: int = 1,
) -> TelemetryBeacon | None:
    """A beacon for one design point, or ``None`` when telemetry is off.

    With no explicit ``send`` the worker queue is used -- which is only
    installed when the parent opened a telemetry channel, so workers of
    an untelemetered run return ``None`` here and pay nothing.
    """
    if send is None:
        if _WORKER_QUEUE is None:
            return None
        send = _queue_send
    budget = key.settings.timing_warmup + key.settings.instructions
    return TelemetryBeacon(
        _point_id(key), key.label, send, budget=budget, attempt=attempt
    )


# ---------------------------------------------------------------------------
# Hub: parent-side aggregation
# ---------------------------------------------------------------------------


class PointState:
    """Live status of one design point as the hub sees it."""

    __slots__ = (
        "point",
        "label",
        "status",
        "worker",
        "instructions",
        "budget",
        "cycle",
        "attempt",
        "outcome",
        "stalled_cycles",
        "error_type",
        "started",
        "updated",
    )

    def __init__(self, point: str, label: str, status: str, now: float):
        self.point = point
        self.label = label
        self.status = status  #: queued/running/stalled/<terminal outcome>
        self.worker: str | None = None
        self.instructions = 0
        self.budget = 0
        self.cycle = 0
        self.attempt = 1
        self.outcome: str | None = None
        self.stalled_cycles = 0
        self.error_type: str | None = None
        self.started = now
        self.updated = now

    @property
    def fraction(self) -> float:
        if self.budget <= 0:
            return 0.0
        return min(1.0, self.instructions / self.budget)


class _WorkerStats:
    """Instructions/second per worker, from consecutive heartbeats."""

    __slots__ = ("worker", "instructions", "at", "rate", "beats")

    def __init__(self, worker: str):
        self.worker = worker
        self.instructions = 0
        self.at = 0.0
        self.rate = 0.0
        self.beats = 0

    def observe(self, instructions: int, now: float) -> None:
        if self.beats and instructions >= self.instructions and now > self.at:
            instant = (instructions - self.instructions) / (now - self.at)
            # Light smoothing so the display does not flicker.
            self.rate = instant if self.rate == 0.0 else 0.5 * self.rate + 0.5 * instant
        self.instructions = instructions
        self.at = now
        self.beats += 1


class TelemetryHub:
    """Aggregates heartbeats and lifecycle events for one sweep run.

    Thread-safe: the executor calls lifecycle methods from the main
    thread while the queue drain thread feeds :meth:`handle` and the
    display/metrics threads read :meth:`snapshot`.
    """

    def __init__(
        self,
        *,
        stale_after: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        # Deferred: robustness imports the memory system at package
        # level, and this module must stay importable from anywhere in
        # that graph (the CPU core hoists the beacon on every run).
        from repro.robustness.watchdog import LivenessMonitor

        self._lock = threading.Lock()
        self._clock = clock
        self._points: dict[str, PointState] = {}
        self._workers: dict[str, _WorkerStats] = {}
        self.liveness = LivenessMonitor(stale_after=stale_after, clock=clock)
        self.started = clock()
        self.totals = {
            "planned": 0,
            "cached": 0,
            "simulated": 0,
            "recovered": 0,
            "gaps": 0,
            "timeouts": 0,
            "resumed": 0,
        }
        self._store: "ResultStore | None" = None
        self._failure_log: "FailureLog | None" = None
        #: Dispatch summary of the engine's latest parallel batch.
        self._dispatch: dict | None = None
        #: Span-recorder summary of the latest executed sweep.
        self._spans: dict | None = None
        #: Latest interval-counter row per point (interval samplers
        #: emit one message per boundary; only the newest row matters
        #: for live gauges).
        self._counters: dict[str, dict] = {}
        # Legacy parallel channel state: the engine now forwards worker
        # heartbeats from its own pool channel, so the manager queue is
        # only built when a caller explicitly asks for worker_queue().
        self._manager = None
        self._queue = None
        self._drain: threading.Thread | None = None
        self._drain_stop = threading.Event()

    # -- wiring ---------------------------------------------------------

    def attach_store(self, store: "ResultStore | None") -> None:
        self._store = store

    def attach_failure_log(self, log: "FailureLog | None") -> None:
        self._failure_log = log

    def worker_queue(self):
        """A standalone heartbeat queue (created lazily; legacy path).

        The engine's persistent pool now shares its dispatch-mark queue
        with the beacons and forwards heartbeats to :meth:`handle`
        directly, so ordinary sweeps never call this -- no manager
        process, no drain thread, nothing paid when telemetry is off.
        Kept for external callers that feed a hub from their own worker
        processes.  Returns ``None`` if the multiprocessing manager
        cannot start (telemetry then degrades to parent-side lifecycle
        events only).
        """
        with self._lock:
            if self._queue is not None:
                return self._queue
            try:
                import multiprocessing

                self._manager = multiprocessing.Manager()
                self._queue = self._manager.Queue()
            except Exception:  # noqa: BLE001 - degrade, don't break the sweep
                self._manager = None
                self._queue = None
                return None
            self._drain = threading.Thread(
                target=self._drain_loop, name="telemetry-drain", daemon=True
            )
            self._drain.start()
            return self._queue

    def _drain_loop(self) -> None:
        import queue as queue_mod

        while not self._drain_stop.is_set():
            try:
                message = self._queue.get(timeout=0.2)
            except (queue_mod.Empty, EOFError, OSError):
                continue
            if message is None:
                break
            try:
                self.handle(message)
            except Exception:  # noqa: BLE001 - a bad message must not kill the drain
                continue

    def close(self) -> None:
        """Stop the drain thread and the manager process, if any."""
        self._drain_stop.set()
        if self._drain is not None:
            self._drain.join(timeout=2.0)
            self._drain = None
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:  # noqa: BLE001
                pass
            self._manager = None
            self._queue = None

    # -- lifecycle (called by the executor) -----------------------------

    def _state(self, point: str, label: str, status: str) -> PointState:
        state = self._points.get(point)
        if state is None:
            state = self._points[point] = PointState(
                point, label, status, self._clock()
            )
        return state

    def batch_started(self, planned: int) -> None:
        with self._lock:
            self.totals["planned"] += planned

    def point_cached(self, point: str, label: str, layer: str) -> None:
        with self._lock:
            state = self._state(point, label, "cached")
            state.status = "cached"
            state.outcome = layer
            state.updated = self._clock()
            self.totals["cached"] += 1

    def point_queued(self, point: str, label: str) -> None:
        with self._lock:
            self._state(point, label, "queued")

    def point_started(self, point: str, label: str) -> None:
        with self._lock:
            state = self._state(point, label, "running")
            state.status = "running"
            state.started = state.updated = self._clock()

    def point_retrying(self, point: str, label: str, attempt: int) -> None:
        with self._lock:
            state = self._state(point, label, "running")
            state.status = "running"
            state.attempt = attempt
            state.updated = self._clock()

    def point_finished(self, point: str, label: str, outcome: str) -> None:
        """Terminal transition: simulated / recovered / gap / timeout."""
        with self._lock:
            state = self._state(point, label, "done")
            state.status = "failed" if outcome in ("gap", "timeout") else "done"
            state.outcome = outcome
            state.updated = self._clock()
            if outcome == "timeout":
                # A timeout is a gap (the point is lost) with its own
                # counter so the display and /metrics can tell a hang
                # from an ordinary failure.
                self.totals["gaps"] += 1
                self.totals["timeouts"] += 1
            elif outcome == "gap":
                self.totals["gaps"] += 1
            elif outcome == "recovered":
                self.totals["recovered"] += 1
            else:
                self.totals["simulated"] += 1
            if state.worker is not None:
                self.liveness.beat(state.worker)

    def sweep_resumed(self, skipped: int) -> None:
        """A resumed batch skipped ``skipped`` already-completed points."""
        with self._lock:
            self.totals["resumed"] += skipped

    def record_dispatch(self, dispatch: dict) -> None:
        """The engine's dispatch profile for its latest parallel batch.

        Carries per-worker utilization/steal counters (see
        :class:`repro.engine.dispatch.DispatchProfile`) into the
        ``--progress`` display and ``/metrics``.
        """
        with self._lock:
            self._dispatch = dispatch

    def record_spans(self, summary: dict) -> None:
        """The sweep span recorder's summary for the latest batch.

        Threads the orchestration-span totals (see
        :meth:`repro.observability.spans.SpanRecorder.summary`) into the
        snapshot and the ``repro_span_*`` Prometheus series.
        """
        with self._lock:
            self._spans = summary

    # -- heartbeat stream ------------------------------------------------

    def handle(self, message: dict) -> None:
        """One heartbeat message (from a queue drain or a direct send)."""
        kind = message.get("type")
        point = message.get("point", "?")
        label = message.get("label", point)
        worker = message.get("worker")
        now = self._clock()
        with self._lock:
            state = self._state(point, label, "running")
            if worker is not None:
                state.worker = worker
                self.liveness.beat(worker)
            state.updated = now
            if kind == "start":
                if state.status not in _TERMINAL:
                    state.status = "running"
                state.budget = message.get("budget", state.budget)
                state.attempt = message.get("attempt", state.attempt)
                state.started = now
            elif kind == "beat":
                if state.status not in _TERMINAL:
                    state.status = "running"
                state.instructions = message.get("instructions", state.instructions)
                state.cycle = message.get("cycle", state.cycle)
                state.budget = message.get("budget", state.budget)
                state.attempt = message.get("attempt", state.attempt)
                if worker is not None:
                    stats = self._workers.get(worker)
                    if stats is None:
                        stats = self._workers[worker] = _WorkerStats(worker)
                    stats.observe(state.instructions, now)
            elif kind == "stall":
                state.status = "stalled"
                state.stalled_cycles = message.get("stalled_cycles", 0)
                state.cycle = message.get("cycle", state.cycle)
            elif kind == "end":
                if message.get("status") != "ok":
                    state.error_type = message.get("error_type")
            elif kind == "counters":
                row = message.get("row")
                if isinstance(row, dict):
                    self._counters[point] = {
                        "label": label,
                        "index": message.get("index", 0),
                        "row": row,
                    }
        obs_trace.emit(
            TELEMETRY_HEARTBEAT,
            message.get("cycle", 0),
            type=kind,
            point=point,
            label=label,
        )

    # -- read side -------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent view for the display and the metrics endpoint."""
        now = self._clock()
        with self._lock:
            done = (
                self.totals["cached"]
                + self.totals["simulated"]
                + self.totals["recovered"]
                + self.totals["gaps"]
            )
            total = self.totals["planned"]
            elapsed = now - self.started
            remaining = max(0, total - done)
            eta = (elapsed / done) * remaining if done and remaining else 0.0
            in_flight = [
                {
                    "point": s.point,
                    "label": s.label,
                    "status": s.status,
                    "worker": s.worker,
                    "instructions": s.instructions,
                    "budget": s.budget,
                    "fraction": s.fraction,
                    "attempt": s.attempt,
                    "stalled_cycles": s.stalled_cycles,
                    "heartbeat_age": (
                        self.liveness.age(s.worker) if s.worker else None
                    ),
                }
                for s in self._points.values()
                if s.status in ("running", "queued", "stalled")
            ]
            workers = {
                w.worker: {
                    "rate": w.rate,
                    "age": self.liveness.age(w.worker),
                    "alive": self.liveness.status(w.worker) == "alive",
                }
                for w in self._workers.values()
            }
            return {
                "total": total,
                "done": done,
                "dispatch": self._dispatch,
                "spans": self._spans,
                "cached": self.totals["cached"],
                "simulated": self.totals["simulated"],
                "recovered": self.totals["recovered"],
                "gaps": self.totals["gaps"],
                "timeouts": self.totals["timeouts"],
                "resumed": self.totals["resumed"],
                "elapsed": elapsed,
                "eta": eta,
                "in_flight": in_flight,
                "workers": workers,
                "counters": {
                    point: dict(entry)
                    for point, entry in self._counters.items()
                },
                "stalled": [p["label"] for p in in_flight if p["status"] == "stalled"],
                "store_hits": self._store.hits if self._store is not None else 0,
                "store_misses": self._store.misses if self._store is not None else 0,
                "failure_log_depth": (
                    len(self._failure_log.records)
                    if self._failure_log is not None
                    else 0
                ),
            }

    def prometheus(self) -> str:
        """The sweep state in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())


#: The process-wide active hub; ``None`` means telemetry is off.
_HUB: TelemetryHub | None = None


def active_hub() -> TelemetryHub | None:
    return _HUB


def install_hub(hub: TelemetryHub) -> None:
    global _HUB
    _HUB = hub


def clear_hub() -> None:
    global _HUB
    _HUB = None


# ---------------------------------------------------------------------------
# Prometheus text rendering
# ---------------------------------------------------------------------------


#: Prometheus 0.0.4 metric-name charset (first char, then the rest).
_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")


def metric_name(*parts: str) -> str:
    """Join name parts with ``_`` into one validated Prometheus name.

    Every dynamically built metric name (sweep tallies, the per-point
    ``repro_counter_*`` gauges) goes through here, so a typo'd or
    illegal part fails loudly at render time instead of producing
    exposition text scrapers silently drop.
    """
    name = "_".join(parts)
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid Prometheus metric name: {name!r}")
    return name


def _metric(
    lines: list[str], name: str, help_text: str, kind: str, value
) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    lines.append(f"{name} {value:g}" if isinstance(value, float) else f"{name} {value}")


def render_prometheus(snapshot: dict) -> str:
    """Render one hub snapshot as Prometheus 0.0.4 text format."""
    lines: list[str] = []
    _metric(
        lines,
        "repro_sweep_points_total",
        "Design points planned in the current sweep",
        "gauge",
        snapshot["total"],
    )
    _metric(
        lines,
        "repro_sweep_points_done",
        "Design points resolved (simulated, cached, recovered, or gap)",
        "gauge",
        snapshot["done"],
    )
    for field, help_text in (
        ("cached", "Points served from the memo or the result store"),
        ("simulated", "Points simulated at full budget"),
        ("recovered", "Points recovered at a reduced budget after a failure"),
        ("gaps", "Points lost to unrecovered failures"),
        ("timeouts", "Points lost to wall-clock deadline expiry"),
        ("resumed", "Points skipped because an earlier run completed them"),
    ):
        _metric(
            lines,
            metric_name("repro_sweep_points", field),
            help_text,
            "gauge",
            snapshot[field],
        )
    _metric(
        lines,
        "repro_sweep_elapsed_seconds",
        "Wall-clock seconds since the sweep telemetry started",
        "gauge",
        round(snapshot["elapsed"], 3),
    )
    _metric(
        lines,
        "repro_sweep_eta_seconds",
        "Estimated wall-clock seconds to finish the remaining points",
        "gauge",
        round(snapshot["eta"], 3),
    )
    _metric(
        lines,
        "repro_sweep_points_in_flight",
        "Design points currently queued, running, or stalled",
        "gauge",
        len(snapshot["in_flight"]),
    )
    _metric(
        lines,
        "repro_sweep_points_stalled",
        "Design points whose commit watchdog reported a deadlock",
        "gauge",
        len(snapshot["stalled"]),
    )
    _metric(
        lines,
        "repro_store_hits_total",
        "Result-store loads served from disk this process",
        "counter",
        snapshot["store_hits"],
    )
    _metric(
        lines,
        "repro_store_misses_total",
        "Result-store loads that missed this process",
        "counter",
        snapshot["store_misses"],
    )
    _metric(
        lines,
        "repro_failure_log_depth",
        "Failure records accumulated by the resilient sweep",
        "gauge",
        snapshot["failure_log_depth"],
    )
    workers = snapshot["workers"]
    if workers:
        lines.append(
            "# HELP repro_worker_alive Worker sent a heartbeat recently (1) "
            "or went quiet (0)"
        )
        lines.append("# TYPE repro_worker_alive gauge")
        for worker, stats in sorted(workers.items()):
            lines.append(
                f'repro_worker_alive{{worker="{worker}"}} '
                f'{1 if stats["alive"] else 0}'
            )
        lines.append(
            "# HELP repro_worker_instructions_per_second Simulated commit "
            "rate per worker, from consecutive heartbeats"
        )
        lines.append("# TYPE repro_worker_instructions_per_second gauge")
        for worker, stats in sorted(workers.items()):
            lines.append(
                f'repro_worker_instructions_per_second{{worker="{worker}"}} '
                f'{stats["rate"]:.1f}'
            )
        lines.append(
            "# HELP repro_worker_heartbeat_age_seconds Seconds since each "
            "worker's last heartbeat"
        )
        lines.append("# TYPE repro_worker_heartbeat_age_seconds gauge")
        for worker, stats in sorted(workers.items()):
            lines.append(
                f'repro_worker_heartbeat_age_seconds{{worker="{worker}"}} '
                f'{stats["age"]:.3f}'
            )
    dispatch = snapshot.get("dispatch")
    if dispatch:
        _metric(
            lines,
            "repro_dispatch_chunks_total",
            "Work chunks planned for the latest parallel batch",
            "gauge",
            dispatch.get("chunks", 0),
        )
        _metric(
            lines,
            "repro_dispatch_steals_total",
            "Chunks workers pulled from the shared queue beyond their first",
            "gauge",
            dispatch.get("steals", 0),
        )
        _metric(
            lines,
            "repro_dispatch_utilization",
            "Aggregate worker busy time over the batch wall clock x workers",
            "gauge",
            float(dispatch.get("utilization", 0.0)),
        )
        worker_stats = dispatch.get("worker_stats") or {}
        if worker_stats:
            lines.append(
                "# HELP repro_worker_points_total Design points each worker "
                "simulated in the latest parallel batch"
            )
            lines.append("# TYPE repro_worker_points_total gauge")
            for worker, stats in sorted(worker_stats.items()):
                lines.append(
                    f'repro_worker_points_total{{worker="{worker}"}} '
                    f'{stats["points"]}'
                )
            lines.append(
                "# HELP repro_worker_busy_seconds_total Seconds each worker "
                "spent simulating in the latest parallel batch"
            )
            lines.append("# TYPE repro_worker_busy_seconds_total gauge")
            for worker, stats in sorted(worker_stats.items()):
                lines.append(
                    f'repro_worker_busy_seconds_total{{worker="{worker}"}} '
                    f'{stats["busy_seconds"]:g}'
                )
            lines.append(
                "# HELP repro_worker_steals_total Chunks each worker pulled "
                "beyond its first in the latest parallel batch"
            )
            lines.append("# TYPE repro_worker_steals_total gauge")
            for worker, stats in sorted(worker_stats.items()):
                lines.append(
                    f'repro_worker_steals_total{{worker="{worker}"}} '
                    f'{stats["steals"]}'
                )
    spans = snapshot.get("spans")
    if spans:
        _metric(
            lines,
            "repro_span_recorded_total",
            "Orchestration spans recorded by the latest sweep",
            "counter",
            spans.get("recorded", 0),
        )
        by_name = spans.get("by_name") or {}
        if by_name:
            lines.append(
                "# HELP repro_span_seconds_total Wall-clock seconds "
                "accumulated per orchestration span name"
            )
            lines.append("# TYPE repro_span_seconds_total counter")
            for name, row in sorted(by_name.items()):
                lines.append(
                    f'repro_span_seconds_total{{name="{name}"}} '
                    f'{row["seconds"]:g}'
                )
            lines.append(
                "# HELP repro_span_count_total Orchestration spans "
                "recorded per span name"
            )
            lines.append("# TYPE repro_span_count_total counter")
            for name, row in sorted(by_name.items()):
                lines.append(
                    f'repro_span_count_total{{name="{name}"}} {row["count"]}'
                )
    counter_rows = snapshot.get("counters") or {}
    if counter_rows:
        # Latest interval row per in-flight point, one labeled gauge per
        # sampled column (all raw per-interval deltas; rates are left to
        # the scraper so the exposition stays integer-exact).
        columns: dict[str, list[tuple[str, int]]] = {}
        index_rows: list[tuple[str, int]] = []
        for point, entry in sorted(counter_rows.items()):
            index_rows.append((entry["label"], entry.get("index", 0)))
            for column, value in entry["row"].items():
                columns.setdefault(column, []).append((entry["label"], value))
        name = metric_name("repro_counter", "interval_index")
        lines.append(
            f"# HELP {name} Index of each point's latest sampled interval"
        )
        lines.append(f"# TYPE {name} gauge")
        for label, value in index_rows:
            lines.append(f'{name}{{point="{label}"}} {value}')
        for column, rows in sorted(columns.items()):
            name = metric_name("repro_counter", column)
            lines.append(
                f"# HELP {name} Latest interval's {column} per design point"
            )
            lines.append(f"# TYPE {name} gauge")
            for label, value in rows:
                lines.append(f'{name}{{point="{label}"}} {value}')
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Live progress display
# ---------------------------------------------------------------------------


def _human_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


def render_progress_lines(snapshot: dict, width: int = 100) -> list[str]:
    """Human-readable progress block for one hub snapshot."""
    parts = [f"{snapshot['done']}/{snapshot['total']} points"]
    if snapshot["cached"]:
        parts.append(f"{snapshot['cached']} cached")
    if snapshot.get("resumed"):
        parts.append(f"{snapshot['resumed']} resumed")
    if snapshot["recovered"]:
        parts.append(f"{snapshot['recovered']} recovered")
    if snapshot["gaps"]:
        parts.append(f"{snapshot['gaps']} FAILED")
    if snapshot.get("timeouts"):
        parts.append(f"{snapshot['timeouts']} timed out")
    parts.append(f"elapsed {_human_seconds(snapshot['elapsed'])}")
    if snapshot["eta"]:
        parts.append(f"ETA {_human_seconds(snapshot['eta'])}")
    lines = ["sweep: " + " · ".join(parts)]
    dispatch = snapshot.get("dispatch")
    if dispatch:
        pool = [
            f"{dispatch.get('workers', 0)} workers",
            f"{dispatch.get('chunks', 0)} chunks",
        ]
        if dispatch.get("steals"):
            pool.append(f"{dispatch['steals']} steals")
        pool.append(f"{float(dispatch.get('utilization', 0.0)):.0%} busy")
        if not dispatch.get("pool_reused", True):
            pool.append("pool cold")
        lines.append(("  pool: " + " · ".join(pool))[:width])
    for point in snapshot["in_flight"]:
        if point["status"] == "stalled":
            detail = (
                f"STALLED: no commit for {point['stalled_cycles']} cycles"
            )
        elif point["status"] == "queued":
            detail = "queued"
        else:
            detail = f"{point['instructions']}/{point['budget']} instr"
            if point["budget"]:
                detail += f" ({point['fraction']:.0%})"
            if point["attempt"] > 1:
                detail += f" · retry #{point['attempt']}"
            age = point["heartbeat_age"]
            if age is not None and age > 5.0:
                detail += f" · no heartbeat for {age:.0f}s"
        worker = f" [{point['worker']}]" if point["worker"] else ""
        lines.append(f"  {point['label']}{worker}  {detail}"[:width])
    return lines


def render_final_summary(snapshot: dict) -> str:
    """The one-line recap printed when a ``--progress`` display closes.

    A sweep's live block disappears with the process; this line is the
    durable answer to "how did that go" -- total wall clock, pool
    utilization, and steals -- without needing ``repro runs show``.
    """
    parts = [
        f"sweep finished: {snapshot['done']}/{snapshot['total']} points "
        f"in {_human_seconds(snapshot['elapsed'])}"
    ]
    if snapshot.get("gaps"):
        parts.append(f"{snapshot['gaps']} FAILED")
    dispatch = snapshot.get("dispatch")
    if dispatch:
        parts.append(
            f"{dispatch.get('workers', 0)} workers "
            f"{float(dispatch.get('utilization', 0.0)):.0%} busy"
        )
        steals = dispatch.get("steals", 0)
        if steals:
            parts.append(f"{steals} steal(s)")
    spans = snapshot.get("spans")
    if spans and spans.get("recorded"):
        parts.append(f"{spans['recorded']} spans")
    return " · ".join(parts)


class ProgressDisplay:
    """Renders hub snapshots to a stream on a background thread.

    On a TTY the block is redrawn in place with ANSI cursor movement;
    on a plain stream (forced ``--progress`` in CI) it appends one
    status line whenever the done-count changes, so logs stay readable.
    """

    def __init__(
        self,
        hub: TelemetryHub,
        stream: IO[str],
        *,
        interval: float = 0.5,
        ansi: bool | None = None,
    ):
        self.hub = hub
        self.stream = stream
        self.interval = interval
        self.ansi = stream.isatty() if ansi is None else ansi
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_block_lines = 0
        self._last_done = -1
        self._closed = False

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-progress", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.render()
            except Exception:  # noqa: BLE001 - display must never kill a sweep
                return

    def render(self, final: bool = False) -> None:
        snapshot = self.hub.snapshot()
        if self.ansi:
            lines = render_progress_lines(snapshot)
            out = []
            if self._last_block_lines:
                out.append(f"\x1b[{self._last_block_lines}F")
            out.extend(f"\x1b[2K{line}\n" for line in lines)
            # Clear leftover lines from a taller previous block.
            extra = self._last_block_lines - len(lines)
            if extra > 0:
                out.extend("\x1b[2K\n" for _ in range(extra))
                out.append(f"\x1b[{extra}F")
            self.stream.write("".join(out))
            self.stream.flush()
            self._last_block_lines = len(lines)
        else:
            if snapshot["done"] == self._last_done and not final:
                return
            self._last_done = snapshot["done"]
            self.stream.write(render_progress_lines(snapshot)[0] + "\n")
            self.stream.flush()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._closed:
            return  # the summary line prints exactly once
        self._closed = True
        try:
            self.render(final=True)
            self.stream.write(
                render_final_summary(self.hub.snapshot()) + "\n"
            )
            self.stream.flush()
        except Exception:  # noqa: BLE001
            pass


# ---------------------------------------------------------------------------
# /metrics + /healthz HTTP endpoint
# ---------------------------------------------------------------------------


class MetricsServer:
    """Background HTTP thread: Prometheus ``/metrics`` plus ``/healthz``.

    Binds loopback only -- this is an operator's live view of one
    process, not a public service.  Port 0 picks an ephemeral port;
    the bound port is in :attr:`port`.
    """

    def __init__(self, hub: TelemetryHub, port: int, host: str = "127.0.0.1"):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        started = time.monotonic()

        class Handler(BaseHTTPRequestHandler):
            def _send(self, code: int, content_type: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path == "/metrics":
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        hub.prometheus(),
                    )
                elif self.path == "/healthz":
                    self._send(
                        200,
                        "application/json",
                        json.dumps(
                            {
                                "status": "ok",
                                "uptime_seconds": round(
                                    time.monotonic() - started, 3
                                ),
                            }
                        ),
                    )
                else:
                    self._send(404, "text/plain", "not found\n")

            def log_message(self, *args) -> None:  # silence per-request spam
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="telemetry-metrics",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


# ---------------------------------------------------------------------------
# The CLI-facing scope
# ---------------------------------------------------------------------------


@contextmanager
def sweep_telemetry(
    *,
    progress: bool | None = None,
    serve_port: int | None = None,
    store: "ResultStore | None" = None,
    stream: IO[str] | None = None,
) -> Iterator[TelemetryHub | None]:
    """Enable live telemetry for the enclosed sweep run.

    ``progress=None`` auto-enables the display on a TTY; ``True`` and
    ``False`` force it.  ``serve_port`` starts the ``/metrics`` HTTP
    thread.  When neither consumer is wanted, yields ``None`` without
    installing anything -- the zero-overhead off state.
    """
    import sys

    out = stream if stream is not None else sys.stderr
    want_progress = out.isatty() if progress is None else progress
    if not want_progress and serve_port is None:
        yield None
        return
    hub = TelemetryHub()
    hub.attach_store(store)
    display = ProgressDisplay(hub, out) if want_progress else None
    server = MetricsServer(hub, serve_port) if serve_port is not None else None
    install_hub(hub)
    try:
        if server is not None:
            server.start()
            print(
                f"[serving /metrics and /healthz on "
                f"http://127.0.0.1:{server.port}]",
                file=out,
            )
        if display is not None:
            display.start()
        yield hub
    finally:
        clear_hub()
        if display is not None:
            display.close()
        if server is not None:
            server.close()
        hub.close()
