"""Observability: event tracing, metrics registry, profiling, breakdowns.

Public surface:

* :mod:`repro.observability.trace` -- the zero-overhead-when-disabled
  event trace (``tracing()`` scope, bounded ring, JSONL sink);
* :mod:`repro.observability.events` -- the event-kind taxonomy and the
  :class:`EventChannel` that feeds both invariant taps and the tracer;
* :mod:`repro.observability.metrics` -- hierarchical named counters and
  the per-simulation metrics snapshot riding ``SimulationResult``;
* :mod:`repro.observability.profile` -- per-phase wall-clock/event
  throughput behind the CLI ``--profile`` flag;
* :mod:`repro.observability.utilization` -- the per-design-point
  pipeline-utilization breakdown table;
* :mod:`repro.observability.attribution` -- per-access critical-path
  cycle accounting (exact-sum latency decomposition, fixed-bucket
  histograms with p50/p95/p99), off unless ``attributing()`` or
  ``REPRO_ATTRIBUTION=1``;
* :mod:`repro.observability.chrometrace` -- Chrome trace-event JSON
  export of any captured or JSONL stream, for Perfetto;
* :mod:`repro.observability.diagnose` -- stall-source ranking and the
  ``repro diagnose`` narrative report;
* :mod:`repro.observability.telemetry` -- live sweep telemetry: worker
  heartbeats over a multiprocessing queue, the per-point progress
  display, and the Prometheus ``/metrics`` + ``/healthz`` endpoint
  (``sweep_telemetry()`` scope, zero overhead when off).
"""

from repro.observability import attribution, events, telemetry, trace
from repro.observability.attribution import (
    AttributionAccumulator,
    LatencyHistogram,
    attributing,
)
from repro.observability.chrometrace import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
)
from repro.observability.events import ALL_KINDS, EventChannel
from repro.observability.metrics import (
    Counter,
    MetricsRegistry,
    Timer,
    snapshot_memory_system,
    snapshot_simulation,
)
from repro.observability.profile import PhaseProfiler, PhaseRecord
from repro.observability.telemetry import (
    MetricsServer,
    ProgressDisplay,
    TelemetryBeacon,
    TelemetryHub,
    render_prometheus,
    sweep_telemetry,
)
from repro.observability.trace import (
    DEFAULT_CAPACITY,
    TraceEvent,
    Tracer,
    activate,
    active,
    deactivate,
    tracing,
)
from repro.observability.utilization import utilization_rows, utilization_summary

__all__ = [
    "ALL_KINDS",
    "AttributionAccumulator",
    "Counter",
    "DEFAULT_CAPACITY",
    "EventChannel",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsServer",
    "PhaseProfiler",
    "PhaseRecord",
    "ProgressDisplay",
    "TelemetryBeacon",
    "TelemetryHub",
    "TraceEvent",
    "Tracer",
    "Timer",
    "activate",
    "active",
    "attributing",
    "attribution",
    "chrome_trace_events",
    "deactivate",
    "events",
    "read_jsonl",
    "render_prometheus",
    "snapshot_memory_system",
    "snapshot_simulation",
    "sweep_telemetry",
    "telemetry",
    "trace",
    "tracing",
    "utilization_rows",
    "utilization_summary",
    "write_chrome_trace",
]
