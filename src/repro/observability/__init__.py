"""Observability: event tracing, metrics registry, profiling, breakdowns.

Public surface:

* :mod:`repro.observability.trace` -- the zero-overhead-when-disabled
  event trace (``tracing()`` scope, bounded ring, JSONL sink);
* :mod:`repro.observability.events` -- the event-kind taxonomy and the
  :class:`EventChannel` that feeds both invariant taps and the tracer;
* :mod:`repro.observability.metrics` -- hierarchical named counters and
  the per-simulation metrics snapshot riding ``SimulationResult``;
* :mod:`repro.observability.profile` -- per-phase wall-clock/event
  throughput behind the CLI ``--profile`` flag;
* :mod:`repro.observability.utilization` -- the per-design-point
  pipeline-utilization breakdown table;
* :mod:`repro.observability.attribution` -- per-access critical-path
  cycle accounting (exact-sum latency decomposition, fixed-bucket
  histograms with p50/p95/p99), off unless ``attributing()`` or
  ``REPRO_ATTRIBUTION=1``;
* :mod:`repro.observability.counters` -- interval-sampled
  microarchitectural counter series (the software analog of PMU
  sampling): one columnar row of integer deltas every
  ``REPRO_COUNTER_INTERVAL`` committed instructions, bit-identical
  across kernel backends, off unless ``sampling()`` or the env var;
* :mod:`repro.observability.chrometrace` -- Chrome trace-event JSON
  export of any captured or JSONL stream, for Perfetto;
* :mod:`repro.observability.diagnose` -- stall-source ranking and the
  ``repro diagnose`` narrative report;
* :mod:`repro.observability.spans` -- sweep-scope hierarchical span
  tracing of the orchestration layer (plan, pricing, chunks, queue
  wait, worker execution, absorption), with cross-process propagation,
  a JSONL(.gz) sink (``REPRO_SPANS``/``--spans-out``), and the
  critical-path analyzer behind ``repro spans``;
* :mod:`repro.observability.telemetry` -- live sweep telemetry: worker
  heartbeats over a multiprocessing queue, the per-point progress
  display, and the Prometheus ``/metrics`` + ``/healthz`` endpoint
  (``sweep_telemetry()`` scope, zero overhead when off).
"""

from repro.observability import (
    attribution,
    counters,
    events,
    spans,
    telemetry,
    trace,
)
from repro.observability.attribution import (
    AttributionAccumulator,
    LatencyHistogram,
    attributing,
)
from repro.observability.counters import CounterSampler, sampling
from repro.observability.chrometrace import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
)
from repro.observability.events import ALL_KINDS, EventChannel
from repro.observability.metrics import (
    Counter,
    MetricsRegistry,
    Timer,
    snapshot_memory_system,
    snapshot_simulation,
)
from repro.observability.profile import PhaseProfiler, PhaseRecord
from repro.observability.spans import (
    SPANS_ENV,
    SpanRecorder,
    analyze,
    collecting,
    read_spans,
    render_analysis,
)
from repro.observability.telemetry import (
    MetricsServer,
    ProgressDisplay,
    TelemetryBeacon,
    TelemetryHub,
    render_prometheus,
    sweep_telemetry,
)
from repro.observability.trace import (
    DEFAULT_CAPACITY,
    TraceEvent,
    Tracer,
    activate,
    active,
    deactivate,
    tracing,
)
from repro.observability.utilization import utilization_rows, utilization_summary

__all__ = [
    "ALL_KINDS",
    "AttributionAccumulator",
    "Counter",
    "CounterSampler",
    "DEFAULT_CAPACITY",
    "EventChannel",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsServer",
    "PhaseProfiler",
    "PhaseRecord",
    "ProgressDisplay",
    "SPANS_ENV",
    "SpanRecorder",
    "TelemetryBeacon",
    "TelemetryHub",
    "TraceEvent",
    "Tracer",
    "Timer",
    "activate",
    "active",
    "analyze",
    "attributing",
    "attribution",
    "chrome_trace_events",
    "collecting",
    "counters",
    "deactivate",
    "events",
    "read_jsonl",
    "read_spans",
    "render_analysis",
    "render_prometheus",
    "sampling",
    "snapshot_memory_system",
    "snapshot_simulation",
    "spans",
    "sweep_telemetry",
    "telemetry",
    "trace",
    "tracing",
    "utilization_rows",
    "utilization_summary",
    "write_chrome_trace",
]
