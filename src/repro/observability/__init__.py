"""Observability: event tracing, metrics registry, profiling, breakdowns.

Public surface:

* :mod:`repro.observability.trace` -- the zero-overhead-when-disabled
  event trace (``tracing()`` scope, bounded ring, JSONL sink);
* :mod:`repro.observability.events` -- the event-kind taxonomy and the
  :class:`EventChannel` that feeds both invariant taps and the tracer;
* :mod:`repro.observability.metrics` -- hierarchical named counters and
  the per-simulation metrics snapshot riding ``SimulationResult``;
* :mod:`repro.observability.profile` -- per-phase wall-clock/event
  throughput behind the CLI ``--profile`` flag;
* :mod:`repro.observability.utilization` -- the per-design-point
  pipeline-utilization breakdown table.
"""

from repro.observability import events, trace
from repro.observability.events import ALL_KINDS, EventChannel
from repro.observability.metrics import (
    Counter,
    MetricsRegistry,
    Timer,
    snapshot_memory_system,
    snapshot_simulation,
)
from repro.observability.profile import PhaseProfiler, PhaseRecord
from repro.observability.trace import (
    DEFAULT_CAPACITY,
    TraceEvent,
    Tracer,
    activate,
    active,
    deactivate,
    tracing,
)
from repro.observability.utilization import utilization_rows, utilization_summary

__all__ = [
    "ALL_KINDS",
    "Counter",
    "DEFAULT_CAPACITY",
    "EventChannel",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseRecord",
    "TraceEvent",
    "Tracer",
    "Timer",
    "activate",
    "active",
    "deactivate",
    "events",
    "snapshot_memory_system",
    "snapshot_simulation",
    "trace",
    "tracing",
    "utilization_rows",
    "utilization_summary",
]
