"""Export captured event streams as Chrome trace-event JSON.

Converts a :class:`~repro.observability.trace.TraceEvent` stream (the
live ring or a JSONL/JSONL.gz file) into the Trace Event Format that
``chrome://tracing`` and Perfetto open directly:

* loads and stores render as complete ("X") slices on their own tracks,
  named by outcome, spanning request to completion;
* each cache port/bank and each bus gets its own track -- grants are
  one-cycle slices, bus transfers span their grant window, and bank
  conflicts appear as instant markers carrying the wait;
* in-flight misses render as async begin/end pairs ("b"/"e") from MSHR
  allocation to fill, giving Perfetto's arrow view of miss overlap;
* CPU issue slices and flush markers give the pipeline context.

One simulated cycle maps to one microsecond of trace time (the format's
timestamps are microseconds), so durations read directly as cycles.

The export is purely a view: it never needs the simulator, so existing
JSONL traces convert offline (``repro trace --from-jsonl run.jsonl.gz
--format chrome``).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.observability import events as kinds
from repro.observability.trace import TraceEvent

#: Single simulated process; tracks are threads within it.
PID = 1

#: Fixed thread ids for the always-present tracks; per-port/bank/bus
#: tracks are allocated dynamically above :data:`DYNAMIC_TID_BASE` in
#: order of first appearance.
TID_CPU = 1
TID_LOADS = 2
TID_STORES = 3
TID_MSHR = 4
TID_ENGINE = 5
DYNAMIC_TID_BASE = 10

_FIXED_TRACKS = (
    (TID_CPU, "cpu pipeline"),
    (TID_LOADS, "loads"),
    (TID_STORES, "stores"),
    (TID_MSHR, "mshr in-flight"),
    (TID_ENGINE, "engine"),
)


def read_jsonl(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Parse a JSONL trace (``.gz`` transparent) back into events."""
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            record = json.loads(raw)
            cycle = record.pop("cycle")
            kind = record.pop("kind")
            yield TraceEvent(cycle, kind, record)


def chrome_trace_events(trace_events: Iterable[TraceEvent]) -> list[dict]:
    """The ``traceEvents`` array for one event stream."""
    out: list[dict] = [
        {
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro simulation"},
        }
    ]
    for tid, name in _FIXED_TRACKS:
        out.append(_thread_name(tid, name))
    dynamic: dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = dynamic.get(track)
        if tid is None:
            tid = DYNAMIC_TID_BASE + len(dynamic)
            dynamic[track] = tid
            out.append(_thread_name(tid, track))
        return tid

    for event in trace_events:
        kind = event.kind
        fields = event.fields
        ts = event.cycle
        if kind in (kinds.MEM_LOAD, kinds.MEM_STORE):
            tid = TID_LOADS if kind == kinds.MEM_LOAD else TID_STORES
            out.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": tid,
                    "ts": ts,
                    "dur": max(fields.get("done", ts) - ts, 0),
                    "name": fields.get("outcome", kind),
                    "cat": "mem",
                    "args": fields,
                }
            )
        elif kind == kinds.MEM_PORT_GRANT:
            out.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": tid_for(f"port {fields.get('key', '?')}"),
                    "ts": ts,
                    "dur": 1,
                    "name": "grant",
                    "cat": "port",
                    "args": fields,
                }
            )
        elif kind == kinds.MEM_BANK_CONFLICT:
            out.append(
                {
                    "ph": "i",
                    "pid": PID,
                    "tid": tid_for(f"bank {fields.get('bank', '?')}"),
                    "ts": ts,
                    "s": "t",
                    "name": f"conflict (+{fields.get('wait', '?')})",
                    "cat": "port",
                    "args": fields,
                }
            )
        elif kind == kinds.MEM_BUS_TRANSFER:
            start = fields.get("start", ts)
            out.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": tid_for(f"bus {fields.get('bus', '?')}"),
                    "ts": start,
                    "dur": max(fields.get("done", start) - start, 0),
                    "name": f"{fields.get('bytes', '?')}B",
                    "cat": "bus",
                    "args": fields,
                }
            )
        elif kind == kinds.MEM_MSHR_FILL and "alloc" in fields:
            # The fill event carries its allocation cycle, so one event
            # yields the whole in-flight window as an async pair even
            # when the alloc event has dropped off the ring.
            alloc = fields["alloc"]
            ready = fields.get("ready", ts)
            if ready > alloc:
                name = f"miss line {fields.get('line', 0):#x}"
                common = {
                    "pid": PID,
                    "tid": TID_MSHR,
                    "cat": "mshr",
                    "id": fields.get("line", 0),
                    "name": name,
                }
                out.append({"ph": "b", "ts": alloc, "args": fields, **common})
                out.append({"ph": "e", "ts": ready, **common})
        elif kind in (kinds.MEM_MSHR_ALLOC, kinds.MEM_MSHR_MERGE, kinds.MEM_MSHR_FILL):
            out.append(_instant(TID_MSHR, ts, kind.rsplit(".", 1)[-1], "mshr", fields))
        elif kind == kinds.MEM_LB_HIT:
            out.append(_instant(TID_LOADS, ts, "lb.hit", "mem", fields))
        elif kind == kinds.CPU_ISSUE:
            out.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": TID_CPU,
                    "ts": ts,
                    "dur": max(fields.get("complete", ts) - ts, 0),
                    "name": fields.get("op", "issue"),
                    "cat": "cpu",
                    "args": fields,
                }
            )
        elif kind == kinds.CPU_FLUSH:
            out.append(_instant(TID_CPU, ts, "flush", "cpu", fields))
        elif kind in (kinds.CPU_FETCH, kinds.CPU_COMMIT):
            # Skipped: one marker per instruction adds nothing the issue
            # slices don't show, and triples the file size.
            continue
        elif kind.startswith("engine."):
            out.append(_instant(TID_ENGINE, ts, kind, "engine", fields))
        else:
            out.append(_instant(TID_CPU, ts, kind, "other", fields))
    return out


def _thread_name(tid: int, name: str) -> dict:
    return {
        "ph": "M",
        "pid": PID,
        "tid": tid,
        "name": "thread_name",
        "args": {"name": name},
    }


def _instant(tid: int, ts: int, name: str, cat: str, fields: dict) -> dict:
    return {
        "ph": "i",
        "pid": PID,
        "tid": tid,
        "ts": ts,
        "s": "t",
        "name": name,
        "cat": cat,
        "args": fields,
    }


# --------------------------------------------------------------------------
# Orchestration spans (repro.observability.spans) -> per-worker tracks
# --------------------------------------------------------------------------

#: Orchestration spans render as a second Chrome process so a sweep's
#: wall-clock tracks never collide with the simulated-cycle tracks.
ORCHESTRATION_PID = 2


def span_trace_events(spans: Iterable[dict]) -> list[dict]:
    """The ``traceEvents`` array for an orchestration span stream.

    One Chrome *thread* per originating process (coordinator first,
    then each pool worker in order of first appearance), timestamps in
    microseconds relative to the earliest span, ``chunk.wait`` spans
    doubled as async begin/end pairs so Perfetto draws the submit->start
    arrow the MSHR in-flight view uses for misses.
    """
    spans = [s for s in spans if isinstance(s, dict) and "span" in s]
    out: list[dict] = [
        {
            "ph": "M",
            "pid": ORCHESTRATION_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro sweep orchestration"},
        }
    ]
    if not spans:
        return out
    base = min(float(s.get("t0") or 0.0) for s in spans)
    tids: dict[str, int] = {}

    def tid_for(proc: str) -> int:
        tid = tids.get(proc)
        if tid is None:
            tid = 1 + len(tids)
            tids[proc] = tid
            out.append(
                {
                    "ph": "M",
                    "pid": ORCHESTRATION_PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": proc},
                }
            )
        return tid

    # Register the coordinator (the root span's process) as tid 1 so the
    # track order is stable regardless of which span sorts first.
    roots = [s for s in spans if s.get("parent") is None]
    if roots:
        tid_for(str(roots[0].get("proc")))

    for span in sorted(spans, key=lambda s: float(s.get("t0") or 0.0)):
        proc = str(span.get("proc"))
        tid = tid_for(proc)
        ts = int(round((float(span.get("t0") or 0.0) - base) * 1e6))
        dur = int(round(float(span.get("dur") or 0.0) * 1e6))
        name = str(span.get("name"))
        args = {
            "trace": span.get("trace"),
            "span": span.get("span"),
            **(span.get("attrs") or {}),
        }
        if dur <= 0:
            out.append(
                {
                    "ph": "i",
                    "pid": ORCHESTRATION_PID,
                    "tid": tid,
                    "ts": ts,
                    "s": "t",
                    "name": name,
                    "cat": "orchestration",
                    "args": args,
                }
            )
            continue
        out.append(
            {
                "ph": "X",
                "pid": ORCHESTRATION_PID,
                "tid": tid,
                "ts": ts,
                "dur": dur,
                "name": name,
                "cat": "orchestration",
                "args": args,
            }
        )
        if name == "chunk.wait":
            # Async pair: queue-wait as an arrow from submit to start.
            common = {
                "pid": ORCHESTRATION_PID,
                "tid": tid,
                "cat": "queue",
                "id": int((span.get("attrs") or {}).get("chunk", 0) or 0),
                "name": "queued",
            }
            out.append({"ph": "b", "ts": ts, "args": args, **common})
            out.append({"ph": "e", "ts": ts + dur, **common})
    return out


def write_chrome_spans(
    spans: Iterable[dict],
    destination: Union[str, Path, IO[str]],
) -> int:
    """Write orchestration spans as a Chrome trace; returns event count."""
    payload_events = span_trace_events(spans)
    document = {
        "traceEvents": payload_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro",
            "time_unit": "1 trace us == 1 wall-clock us",
        },
    }
    if hasattr(destination, "write"):
        json.dump(document, destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    return len(payload_events)


def write_chrome_trace(
    trace_events: Iterable[TraceEvent],
    destination: Union[str, Path, IO[str]],
    *,
    extra_events: Iterable[dict] = (),
) -> int:
    """Write the full Chrome trace JSON object; returns the event count.

    The JSON-object form (``{"traceEvents": [...]}``) is used rather
    than the bare array so metadata fields are legal and the file is
    self-describing.  ``extra_events`` are pre-built Chrome events
    appended verbatim -- the counters layer merges its Perfetto counter
    tracks (``"ph": "C"``) into the simulation export this way.
    """
    payload_events = chrome_trace_events(trace_events) + list(extra_events)
    document = {
        "traceEvents": payload_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro",
            "time_unit": "1 trace us == 1 simulated cycle",
        },
    }
    if hasattr(destination, "write"):
        json.dump(document, destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    return len(payload_events)
