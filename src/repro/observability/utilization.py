"""Per-design-point pipeline-utilization breakdown (Figure 5/6 flavor).

The paper's Figure 5/6 discussions attribute IPC differences to where
cycles went: port and bank conflicts, cache pipelining, line-buffer
hits, MSHR pressure, and bus occupancy.  This module renders exactly
that breakdown for one simulated design point, from the named metrics
snapshot riding its :class:`~repro.cpu.result.SimulationResult` -- so
it works equally on a fresh simulation or on a result resolved from the
persistent store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.result import SimulationResult


def _pct(part: float, whole: float) -> str:
    return f"{100 * part / whole:.1f}%" if whole else "-"


def _rate(part: float, whole: float) -> str:
    return f"{part / whole:.2f}" if whole else "-"


def utilization_rows(metrics: dict[str, int | float]) -> list[list[str]]:
    """The breakdown as ``[section, quantity, value]`` table rows."""
    get = metrics.get
    cycles = get("cpu.cycles", 0)
    instructions = get("cpu.instructions", 0)
    accesses = get("memory.loads", 0) + get("memory.stores", 0)
    rows: list[list[str]] = [
        ["pipeline", "instructions", f"{instructions}"],
        ["pipeline", "cycles", f"{cycles}"],
        ["pipeline", "IPC", _rate(instructions, cycles)],
        [
            "fetch stalls",
            "window full",
            _pct(get("cpu.pipeline.window_full_stalls", 0), cycles),
        ],
        [
            "fetch stalls",
            "load/store buffer full",
            _pct(get("cpu.pipeline.lsq_full_stalls", 0), cycles),
        ],
        [
            "fetch stalls",
            "branch mispredict",
            _pct(get("cpu.pipeline.mispredict_stall_cycles", 0), cycles),
        ],
    ]
    for level in (
        "line_buffer",
        "l1",
        "row_buffer",
        "victim_cache",
        "l2",
        "dram_cache",
        "memory",
    ):
        count = get(f"memory.served_by.{level}", 0)
        if count:
            rows.append(["data served by", level.replace("_", " "), _pct(count, accesses)])
    requests = get("memory.ports.requests", 0)
    rows += [
        ["cache ports", "accesses granted", f"{requests}"],
        ["cache ports", "delayed", _pct(get("memory.ports.delayed", 0), requests)],
        [
            "cache ports",
            "avg wait (cycles)",
            _rate(get("memory.ports.wait_cycles", 0), requests),
        ],
    ]
    conflicts = get("memory.ports.bank_conflicts", 0)
    if conflicts:
        rows.append(["cache ports", "bank conflicts", _pct(conflicts, requests)])
    primary = get("memory.mshr.primary_misses", 0)
    rows += [
        ["MSHRs", "primary misses", f"{primary}"],
        ["MSHRs", "merged (secondary)", f"{get('memory.mshr.merged_misses', 0)}"],
        [
            "MSHRs",
            "full-stall cycles",
            f"{get('memory.mshr.full_stall_cycles', 0)}",
        ],
    ]
    lookups = get("memory.line_buffer.load_lookups", 0)
    if lookups:
        rows.append(
            [
                "line buffer",
                "load hit rate",
                _pct(get("memory.line_buffer.load_hits", 0), lookups),
            ]
        )
    for bus, label in (("chip", "chip<->L2"), ("memory", "L2<->memory")):
        busy = get(f"memory.bus.{bus}.busy_cycles", 0)
        if f"memory.bus.{bus}.busy_cycles" in metrics:
            rows.append([f"bus {label}", "busy", _pct(busy, cycles)])
            rows.append(
                [
                    f"bus {label}",
                    "queue cycles",
                    f"{get(f'memory.bus.{bus}.queue_cycles', 0)}",
                ]
            )
    return rows


def utilization_summary(
    result: "SimulationResult", title: str = "Pipeline utilization"
) -> str:
    """Render the utilization table for one simulation result."""
    from repro.core.reporting import format_table

    if result.failed:
        return f"{title}\n  simulation failed; no utilization data"
    if not result.metrics:
        return f"{title}\n  no metrics snapshot on this result (pre-observability run)"
    return format_table(
        ["section", "quantity", "value"], utilization_rows(result.metrics), title
    )
