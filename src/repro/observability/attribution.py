"""Per-access critical-path latency attribution (schema v3).

The paper's Figures 4-7 argue about *where load cycles go* -- port
contention vs. bank conflicts vs. multi-cycle pipelining vs. DRAM row
misses -- but an aggregate ``load_latency_total`` cannot distinguish
them.  This module decomposes every load's observed latency into named
critical-path components at the moment the hierarchy resolves the
access, so the split is exact by construction rather than re-derived
from the event stream after the fact.

Component taxonomy (cycles on the critical path of one load):

=================  ========================================================
``port_wait``      waiting for a free cache port (ideal/duplicate ports)
``bank_conflict``  waiting for a busy bank (banked organizations)
``l1_access``      the pipelined L1 (or row-buffer cache) hit time itself
``line_buffer``    the one-cycle level-zero line-buffer hit
``mshr_wait``      a primary miss waiting for a free MSHR register
``mshr_merge``     waiting on an earlier miss's in-flight fill (delayed
                   hits and merged secondary misses)
``victim_swap``    the victim-cache swap penalty
``l2_access``      the L2 lookup time (SRAM mode)
``bus_queue``      queueing for a busy chip/memory bus
``bus_transfer``   the line moving across a bus
``dram_bank_wait`` waiting for a busy DRAM bank (DRAM-cache mode)
``dram_access``    the DRAM array access itself (row miss service)
``memory``         main-memory latency
=================  ========================================================

**Exactness invariant**: for every access the component cycles sum to
``completion_cycle - request_cycle``.  :meth:`AttributionAccumulator.
record` enforces this at record time; the property tests in
``tests/observability/test_attribution.py`` check it across SRAM
multi-port, banked, and DRAM-cache organizations.

Attribution is off by default and adds nothing to the hot path when
off (the same hoisted ``is None`` discipline as tracing).  Enable it
per-scope with :func:`attributing` or process-wide for worker pools
with ``REPRO_ATTRIBUTION=1``.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.robustness.errors import SimulationInvariantError

#: Every component name ``record`` accepts, in taxonomy order.
COMPONENTS = (
    "port_wait",
    "bank_conflict",
    "l1_access",
    "line_buffer",
    "mshr_wait",
    "mshr_merge",
    "victim_swap",
    "l2_access",
    "bus_queue",
    "bus_transfer",
    "dram_bank_wait",
    "dram_access",
    "memory",
)

#: Components that are intrinsic service time rather than stalls --
#: ``repro diagnose`` excludes them when ranking stall sources.
BASE_COMPONENTS = frozenset({"l1_access", "line_buffer"})

#: Fixed latency-histogram bucket upper bounds (cycles, inclusive).
#: Quasi-logarithmic so one-cycle hits and 500-cycle DRAM misses both
#: land in meaningful buckets; identical across design points so
#: histograms are comparable between results.
BUCKET_BOUNDS = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64,
    96, 128, 192, 256, 384, 512, 768, 1024,
)

#: Environment switch: any value but "" / "0" enables attribution
#: process-wide (it propagates to ``ProcessPoolExecutor`` workers,
#: unlike module globals).
ENV_FLAG = "REPRO_ATTRIBUTION"

_ENABLED = False


def enabled() -> bool:
    """Whether new :class:`~repro.memory.hierarchy.MemorySystem`
    instances should attribute their accesses."""
    if _ENABLED:
        return True
    raw = os.environ.get(ENV_FLAG)
    return bool(raw) and raw != "0"


def enable() -> None:
    """Turn attribution on process-wide (serial runs; workers need
    :data:`ENV_FLAG` instead)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


@contextmanager
def attributing() -> Iterator[None]:
    """Scope with attribution enabled; restores the prior state::

        with attributing():
            result = run_experiment(org, "gcc", settings)
        result.metrics["attribution.component.bank_conflict.cycles"]
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous


def critical_path(**parts: int) -> tuple[tuple[str, int], ...]:
    """Build a ``((component, cycles), ...)`` path, dropping zero terms.

    Keyword order is path order; used by the backside models to report
    how a fill's latency decomposes.
    """
    return tuple((name, cycles) for name, cycles in parts.items() if cycles)


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated percentiles."""

    __slots__ = ("counts", "overflow", "total", "sum", "max_seen")

    def __init__(self) -> None:
        self.counts = [0] * len(BUCKET_BOUNDS)
        self.overflow = 0  #: samples above the last bucket bound
        self.total = 0
        self.sum = 0
        self.max_seen = 0

    def record(self, value: int) -> None:
        self.total += 1
        self.sum += value
        if value > self.max_seen:
            self.max_seen = value
        index = bisect_left(BUCKET_BOUNDS, value)
        if index < _BUCKET_COUNT:
            self.counts[index] += 1
        else:
            self.overflow += 1

    def percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` of the distribution (0 < fraction <= 1).

        Linearly interpolated inside the containing bucket; samples in
        the overflow bucket report the maximum observed value, which is
        tracked exactly.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self.total == 0:
            return 0.0
        target = fraction * self.total
        cumulative = 0
        lower = 0
        for bound, count in zip(BUCKET_BOUNDS, self.counts):
            if count and cumulative + count >= target:
                within = (target - cumulative) / count
                return lower + within * (bound - lower)
            cumulative += count
            lower = bound
        return float(self.max_seen)


class AttributionAccumulator:
    """Aggregates per-access critical paths for one simulation.

    The memory hierarchy calls :meth:`record` once per load with the
    access outcome, the observed latency, and the component path; the
    accumulator keeps per-component and per-outcome totals plus the
    latency histogram, and exports everything as flat dotted metrics
    for ``SimulationResult.metrics``.
    """

    __slots__ = (
        "loads",
        "component_cycles",
        "component_loads",
        "outcome_loads",
        "outcome_cycles",
        "histogram",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero everything (the core calls this when measurement starts,
        so warmup accesses never pollute the measured attribution)."""
        self.loads = 0
        self.component_cycles: dict[str, int] = {}
        self.component_loads: dict[str, int] = {}
        self.outcome_loads: dict[str, int] = {}
        self.outcome_cycles: dict[str, int] = {}
        self.histogram = LatencyHistogram()

    def record(
        self,
        outcome: str,
        latency: int,
        path: Iterable[tuple[str, int]],
    ) -> None:
        """Account one access; enforces the exact-sum invariant."""
        self.loads += 1
        total = 0
        cycles_by = self.component_cycles
        loads_by = self.component_loads
        for component, cycles in path:
            if component not in _KNOWN:
                raise SimulationInvariantError(
                    f"unknown attribution component {component!r}"
                )
            if cycles < 0:
                raise SimulationInvariantError(
                    f"negative {component} attribution ({cycles} cycles) "
                    f"on a {outcome} access"
                )
            total += cycles
            cycles_by[component] = cycles_by.get(component, 0) + cycles
            loads_by[component] = loads_by.get(component, 0) + 1
        if total != latency:
            raise SimulationInvariantError(
                f"attribution components sum to {total} cycles but the "
                f"{outcome} access took {latency}: "
                + ", ".join(f"{name}={cycles}" for name, cycles in path)
            )
        self.outcome_loads[outcome] = self.outcome_loads.get(outcome, 0) + 1
        self.outcome_cycles[outcome] = self.outcome_cycles.get(outcome, 0) + latency
        self.histogram.record(latency)

    def to_metrics(self, prefix: str = "attribution") -> dict[str, int | float]:
        """Flat dotted export merged into the simulation snapshot."""
        histogram = self.histogram
        out: dict[str, int | float] = {
            f"{prefix}.loads": self.loads,
            f"{prefix}.latency.cycles": histogram.sum,
        }
        if self.loads:
            out[f"{prefix}.latency.max"] = histogram.max_seen
            for label, fraction in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                out[f"{prefix}.latency.{label}"] = histogram.percentile(fraction)
            for bound, count in zip(BUCKET_BOUNDS, histogram.counts):
                if count:
                    out[f"{prefix}.latency.le_{bound:04d}"] = count
            if histogram.overflow:
                out[f"{prefix}.latency.le_inf"] = histogram.overflow
        for component in sorted(self.component_cycles):
            out[f"{prefix}.component.{component}.cycles"] = (
                self.component_cycles[component]
            )
            out[f"{prefix}.component.{component}.loads"] = (
                self.component_loads[component]
            )
        for outcome in sorted(self.outcome_loads):
            out[f"{prefix}.outcome.{outcome}.loads"] = self.outcome_loads[outcome]
            out[f"{prefix}.outcome.{outcome}.cycles"] = self.outcome_cycles[outcome]
        return out


_KNOWN = frozenset(COMPONENTS)
_BUCKET_COUNT = len(BUCKET_BOUNDS)
