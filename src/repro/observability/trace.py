"""Cycle-level event tracing: bounded ring buffer + optional JSONL sink.

One :class:`Tracer` at a time may be *active* process-wide; the emit
points scattered through the CPU core, memory system, and execution
engine consult the module-level active tracer and do nothing when none
is installed.  The disabled path is a single ``is None`` check (in the
hottest loops the check is hoisted out of the loop entirely), so
simulations with tracing off pay effectively nothing -- the overhead
guarantee DESIGN.md section 9 states and ``bench_suite.py`` measures.

Captured events land in a bounded ring buffer (a ``deque`` with
``maxlen``), so an arbitrarily long simulation traces in O(capacity)
memory: once full, the oldest events fall off and ``dropped`` counts
them.  A ``capacity`` of 0 keeps only the per-kind counts -- the cheap
"counting" mode the ``--profile`` flag uses.  An optional sink receives
every event as one JSON line, for offline analysis of full streams.

Two levers keep the tracing-*enabled* overhead proportionate to what
the tracer actually keeps:

* ``kinds`` restricts capture to an explicit set of event kinds,
  resolved once into a frozenset at construction; a filtered kind
  costs one set-membership test and is neither counted nor written.
  Emit points that build expensive field dicts can hoist
  :meth:`Tracer.wants` out of their loops and skip even that.
* Sink lines are buffered and written in batches (and gzip sinks
  compress at level 1, not 9) -- the stream is consumed by offline
  tooling, so per-event write syscalls and maximum compression bought
  nothing but the 80% wall-clock overhead the benchmark suite used to
  record.  ``tracing()`` flushes on scope exit; direct users call
  :meth:`Tracer.flush` before reading the sink.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import IO, Iterable, Iterator, NamedTuple

#: Default ring capacity: enough for the tail of any short run while
#: bounding a full-length simulation to a few MB of event tuples.
DEFAULT_CAPACITY = 65_536

#: Sink lines buffered between writes.  Full traces run to millions of
#: events; batching turns per-event ``write`` calls (and, for ``.gz``
#: sinks, per-event deflate calls) into one call per batch.
SINK_BATCH_LINES = 1024


class TraceEvent(NamedTuple):
    """One captured event: when, what, and the emit point's fields."""

    cycle: int
    kind: str
    fields: dict

    def to_json(self) -> str:
        return json.dumps(
            {"cycle": self.cycle, "kind": self.kind, **self.fields},
            separators=(",", ":"),
            sort_keys=True,
        )


class Tracer:
    """Bounded capture of the simulator's event stream."""

    __slots__ = (
        "capacity",
        "emitted",
        "by_kind",
        "overflow_points",
        "enabled_kinds",
        "_ring",
        "_sink",
        "_buffer",
        "_dropped_marked",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: IO[str] | None = None,
        kinds: "Iterable[str] | None" = None,
    ):
        if capacity < 0:
            raise ValueError(f"ring capacity cannot be negative: {capacity}")
        self.capacity = capacity
        self.emitted = 0
        self.by_kind: dict[str, int] = {}
        #: Design points that overflowed the ring (see :meth:`note_point`).
        self.overflow_points = 0
        #: Kinds this tracer captures; ``None`` means every kind.
        self.enabled_kinds: frozenset[str] | None = (
            None if kinds is None else frozenset(kinds)
        )
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._sink = sink
        self._buffer: list[str] = []
        self._dropped_marked = 0

    def wants(self, kind: str) -> bool:
        """Whether :meth:`capture` would record ``kind``.

        Hot loops hoist this per kind so a filtered emit point skips
        even building its fields dict.
        """
        enabled = self.enabled_kinds
        return enabled is None or kind in enabled

    def capture(self, kind: str, cycle: int, fields: dict) -> None:
        """Record one event (ring + per-kind count + optional sink)."""
        enabled = self.enabled_kinds
        if enabled is not None and kind not in enabled:
            return
        self.emitted += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        event = TraceEvent(cycle, kind, fields)
        self._ring.append(event)
        if self._sink is not None:
            self._buffer.append(event.to_json())
            if len(self._buffer) >= SINK_BATCH_LINES:
                self._sink.write("\n".join(self._buffer) + "\n")
                self._buffer.clear()

    def flush(self) -> None:
        """Write buffered sink lines out.  ``tracing()`` calls this on
        scope exit; call it directly before reading a sink mid-run."""
        if self._sink is not None and self._buffer:
            self._sink.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (still counted in ``by_kind``)."""
        return self.emitted - len(self._ring)

    def note_point(self) -> int:
        """Mark a design-point boundary; returns drops since the last mark.

        A sweep shares one tracer across many simulations, so per-point
        consumers (the metrics snapshot) need the *delta* of dropped
        events, not the cumulative total -- and run-level consumers (the
        CLI's one-per-run overflow warning) need to know how many points
        overflowed, which :attr:`overflow_points` accumulates here.
        """
        drops = self.dropped - self._dropped_marked
        self._dropped_marked = self.dropped
        if drops:
            self.overflow_points += 1
        return drops

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Retained events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def count(self, kind: str) -> int:
        """Total emissions of ``kind`` (independent of ring retention)."""
        return self.by_kind.get(kind, 0)

    def clear(self) -> None:
        self._ring.clear()
        self.by_kind.clear()
        self.emitted = 0
        self.overflow_points = 0
        self._dropped_marked = 0

    def __len__(self) -> int:
        return len(self._ring)


def open_sink(path: str) -> IO[str]:
    """Open a JSONL sink for writing; ``*.gz`` paths are gzipped.

    Full-length traces run to hundreds of MB of JSON lines, and gzip
    shrinks the highly repetitive stream ~20x, so both ``REPRO_TRACE``
    and ``--trace-out`` accept a ``.gz`` suffix and route through here.
    Level 1 already captures most of that ratio on this stream; the
    default level 9 cost several times the deflate CPU of the whole
    simulation for a few percent smaller file.
    """
    if str(path).endswith(".gz"):
        import gzip

        return gzip.open(path, "wt", encoding="utf-8", compresslevel=1)
    return open(path, "w", encoding="utf-8")


#: The process-wide active tracer; ``None`` means tracing is disabled.
_ACTIVE: Tracer | None = None


def active() -> Tracer | None:
    """The currently installed tracer, or ``None`` when disabled."""
    return _ACTIVE


def activate(tracer: Tracer) -> None:
    """Install ``tracer`` as the process-wide event consumer."""
    global _ACTIVE
    _ACTIVE = tracer


def deactivate() -> None:
    """Disable tracing (the zero-overhead default)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(
    capacity: int = DEFAULT_CAPACITY,
    sink: IO[str] | None = None,
    kinds: Iterable[str] | None = None,
) -> Iterator[Tracer]:
    """Scope with tracing enabled; restores the prior state on exit::

        with tracing(capacity=10_000) as tracer:
            run_experiment(...)
        loads = tracer.count(events.MEM_LOAD)

    ``kinds`` restricts capture to those event kinds (``None`` = all).
    Buffered sink lines are flushed when the scope exits.
    """
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer(capacity, sink, kinds=kinds)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        tracer.flush()


def emit(kind: str, cycle: int, /, **fields) -> None:
    """Convenience emit for cold paths (engine lifecycle, CLI phases).

    Hot paths read :data:`_ACTIVE` once and call ``capture`` directly;
    this helper keeps occasional emit points to one line.
    """
    tracer = _ACTIVE
    if tracer is not None:
        tracer.capture(kind, cycle, fields)
