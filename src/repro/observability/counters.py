"""Interval-sampled microarchitectural counters (schema v4).

Every whole-run aggregate the simulator exports -- IPC, conflict
counts, line-buffer hit rates -- averages away exactly the dynamics the
paper argues about: bank conflicts and port contention *burst* with
program phases (Figures 4-7).  This module is the software analog of
hardware PMU sampling: every ``REPRO_COUNTER_INTERVAL`` committed
instructions, a :class:`CounterSampler` snapshots a curated set of
counters and emits one row of deltas, building a compact columnar time
series that rides ``SimulationResult.counters`` through the store and
across worker-process boundaries bit-identically.

Determinism contract: rows are taken at committed-instruction
boundaries, and both kernel backends commit every instruction at the
same cycle by construction, so the series is bit-identical across
``reference`` and ``fast`` (the parity suite pins this).  The fast
backend's idle-cycle jumps need no special handling: each row's
``cycles`` column is the delta between boundary-commit cycles, so
skipped idle stretches land in the enclosing interval automatically.

Interval semantics: a row covers ``(previous boundary, this boundary]``
in committed instructions.  The final partial interval -- the tail when
the measured window is not a multiple of the interval -- is emitted
with ``partial`` set to 1 rather than dropped, so per-interval rates
are never silently skewed by a truncated tail.

Sampling is off by default and costs the hot loop one hoisted
``is None`` test per committed instruction when off (the same
discipline as tracing/attribution).  Enable it per-scope with
:func:`sampling` or process-wide (pool workers included) with
``REPRO_COUNTER_INTERVAL=<instructions>``.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.result import PipelineStats
    from repro.memory.hierarchy import MemorySystem

#: Environment switch *and* interval: any integer value > 0 enables
#: sampling process-wide at that many committed instructions per row
#: (it propagates to ``ProcessPoolExecutor`` workers, unlike module
#: globals).  Unset / "" / "0" means off.
ENV_FLAG = "REPRO_COUNTER_INTERVAL"

#: In-process override (serial runs; workers need :data:`ENV_FLAG`).
_INTERVAL: int | None = None

#: Series layout version, carried inside the payload so offline readers
#: can tell layouts apart without consulting the store schema.
SERIES_VERSION = 1

#: Per-row bookkeeping columns, in emit order.
_ROW_COLUMNS = (
    "instructions",  #: committed instructions this interval
    "cycles",  #: cycles elapsed between the bounding commits
    "partial",  #: 1 for the trailing sub-interval row, else 0
    "mshr_occupancy_peak",  #: high-water pending-fill count this interval
)

#: Cumulative counters sampled as per-interval deltas, in emit order.
#: The set mirrors :func:`repro.observability.metrics
#: .snapshot_memory_system` but is deliberately curated: only the
#: signals the paper's phase arguments need, so rows stay compact.
_DELTA_COLUMNS = (
    "loads",
    "stores",
    "l1_load_hits",
    "l1_load_misses",
    "l1_store_hits",
    "l1_store_misses",
    "delayed_hits",
    "port_requests",
    "port_delayed",
    "port_wait_cycles",
    "bank_conflicts",
    "mshr_primary_misses",
    "mshr_merged_misses",
    "mshr_full_stall_cycles",
    "lb_load_lookups",
    "lb_load_hits",
    "chip_bus_busy_cycles",
    "chip_bus_queue_cycles",
    "chip_bus_transfers",
    "memory_bus_busy_cycles",
    "memory_bus_queue_cycles",
    "memory_bus_transfers",
    "window_full_stalls",
    "lsq_full_stalls",
    "mispredict_stall_cycles",
    "store_forwards",
)

#: Every column of one series row, in order.
COLUMNS = _ROW_COLUMNS + _DELTA_COLUMNS


def interval() -> int | None:
    """The active sampling interval in committed instructions, or None.

    The in-process override wins; otherwise :data:`ENV_FLAG` is parsed
    (garbage or non-positive values read as off -- sampling is an
    observer and must never fail a simulation over a bad knob).
    """
    if _INTERVAL is not None:
        return _INTERVAL
    raw = os.environ.get(ENV_FLAG)
    if not raw:
        return None
    try:
        every = int(raw)
    except ValueError:
        return None
    return every if every > 0 else None


def enabled() -> bool:
    """Whether new :class:`~repro.memory.hierarchy.MemorySystem`
    instances should carry a counter sampler."""
    return interval() is not None


@contextmanager
def sampling(every: int) -> Iterator[None]:
    """Scope with interval sampling enabled; restores the prior state::

        with sampling(1_000):
            result = run_experiment(org, "gcc", settings)
        result.counters["columns"]
    """
    global _INTERVAL
    if every < 1:
        raise ValueError(f"sampling interval must be >= 1, got {every}")
    previous = _INTERVAL
    _INTERVAL = every
    try:
        yield
    finally:
        _INTERVAL = previous


def _cumulative(memory: "MemorySystem", pipeline: "PipelineStats") -> tuple:
    """Current cumulative values of every delta column.

    Read FRESH from the live objects on every call: the core's
    ``_reset_stats`` *replaces* the stats dataclasses at measurement
    start, so holding references taken earlier would silently read
    orphaned objects.  Components a given organization lacks (line
    buffer, chip bus in DRAM mode) contribute fixed zeros so the column
    set -- and therefore the serialized shape -- is identical across
    design points.
    """
    stats = memory.stats
    ports = memory.arbiter.stats
    mshr = memory.mshrs.stats
    lb = memory.line_buffer.stats if memory.line_buffer is not None else None
    backside = memory.backside
    chip = getattr(backside, "chip_bus", None)
    membus = getattr(backside, "memory_bus", None)
    return (
        stats.loads,
        stats.stores,
        stats.l1_load_hits,
        stats.l1_load_misses,
        stats.l1_store_hits,
        stats.l1_store_misses,
        stats.delayed_hits,
        ports.requests,
        ports.delayed,
        ports.wait_cycles,
        ports.bank_conflicts,
        mshr.primary_misses,
        mshr.merged_misses,
        mshr.full_stall_cycles,
        lb.load_lookups if lb is not None else 0,
        lb.load_hits if lb is not None else 0,
        chip.stats.busy_cycles if chip is not None else 0,
        chip.stats.queue_cycles if chip is not None else 0,
        chip.stats.transfers if chip is not None else 0,
        membus.stats.busy_cycles if membus is not None else 0,
        membus.stats.queue_cycles if membus is not None else 0,
        membus.stats.transfers if membus is not None else 0,
        pipeline.window_full_stalls,
        pipeline.lsq_full_stalls,
        pipeline.mispredict_stall_cycles,
        pipeline.store_forwards,
    )


class CounterSampler:
    """Builds one columnar interval series for one simulation.

    The kernel loops call :meth:`begin` when measurement starts (it
    re-baselines, so warmup traffic never pollutes the first row),
    :meth:`take` at each interval boundary inside the commit loop, and
    :meth:`finish` once after the loop.  ``next_at`` is public so the
    hot-path boundary test is a single int comparison against a local.
    """

    __slots__ = (
        "memory",
        "every",
        "next_at",
        "rows",
        "_base",
        "_last_cycle",
        "_last_committed",
        "_began",
    )

    def __init__(self, memory: "MemorySystem", every: int):
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.memory = memory
        self.every = every
        #: Committed-instruction count of the next boundary; -1 until
        #: :meth:`begin` arms the sampler (no commit count matches it,
        #: so warmup commits never emit rows).
        self.next_at = -1
        self.rows: list[list[int]] = []
        self._base: tuple | None = None
        self._last_cycle = 0
        self._last_committed = 0
        self._began = False

    def begin(
        self, cycle: int, committed: int, pipeline: "PipelineStats"
    ) -> None:
        """(Re)baseline at the start of the measured region."""
        self.rows.clear()
        self.next_at = committed + self.every
        self._last_cycle = cycle
        self._last_committed = committed
        self._base = _cumulative(self.memory, pipeline)
        self.memory.mshrs.occupancy_peak = 0
        self._began = True

    def take(
        self, cycle: int, committed: int, pipeline: "PipelineStats"
    ) -> None:
        """Emit the row ending at this interval boundary."""
        self._emit(cycle, committed, pipeline, partial=0)
        self.next_at = committed + self.every

    def finish(
        self, cycle: int, committed: int, pipeline: "PipelineStats"
    ) -> None:
        """Emit the trailing partial row, if any instructions accrued."""
        if self._began and committed > self._last_committed:
            self._emit(cycle, committed, pipeline, partial=1)

    def _emit(
        self,
        cycle: int,
        committed: int,
        pipeline: "PipelineStats",
        partial: int,
    ) -> None:
        mshrs = self.memory.mshrs
        current = _cumulative(self.memory, pipeline)
        row = [
            committed - self._last_committed,
            cycle - self._last_cycle,
            partial,
            mshrs.occupancy_peak,
        ]
        base = self._base
        row.extend(now - then for now, then in zip(current, base))
        self.rows.append(row)
        self._base = current
        self._last_cycle = cycle
        self._last_committed = committed
        mshrs.occupancy_peak = 0
        # Live gauges: boundary-rate (cold path), so the hot loop never
        # sees the beacon.  The series itself is already complete here;
        # a dead or absent beacon changes nothing downstream.
        from repro.observability import telemetry

        beacon = telemetry._BEACON
        if beacon is not None:
            beacon.counters(
                len(self.rows) - 1, dict(zip(COLUMNS, row))
            )

    def series(self) -> dict:
        """The finished columnar payload for ``SimulationResult.counters``."""
        data = [
            [row[index] for row in self.rows]
            for index in range(len(COLUMNS))
        ]
        return {
            "version": SERIES_VERSION,
            "interval": self.every,
            "columns": list(COLUMNS),
            "data": data,
        }


# ---------------------------------------------------------------------------
# Series analysis: derived rates, alignment, divergence ranking
# ---------------------------------------------------------------------------


def columns_of(series: dict) -> dict[str, list[int]]:
    """``{column: values}`` view of one serialized series."""
    return {
        name: series["data"][index]
        for index, name in enumerate(series["columns"])
    }


def row_count(series: dict) -> int:
    return len(series["data"][0]) if series["data"] else 0


def series_digest(series: dict) -> str:
    """Stable content digest of one series (ledger summaries)."""
    canonical = json.dumps(series, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def series_summary(series: dict | None) -> dict | None:
    """The bounded digest/summary that rides ``runs.jsonl``.

    The full series stays in the store payload; the ledger gets a
    fixed-size record regardless of interval count, so ledger lines
    never balloon with fine-grained sampling.
    """
    if not series:
        return None
    cols = columns_of(series)
    return {
        "interval": series["interval"],
        "rows": row_count(series),
        "partial_rows": sum(cols["partial"]),
        "digest": series_digest(series)[:16],
    }


def _rate(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def derived_rates(series: dict) -> dict[str, list[float]]:
    """Per-interval derived rates, as parallel float lists.

    ``ipc`` is the headline; the rest are the pressure signals the
    paper's figures turn on: grant/conflict rates per port request,
    line-buffer locality, bus occupancy, and the stall-cycle mix
    normalized to interval cycles.
    """
    cols = columns_of(series)
    out: dict[str, list[float]] = {
        "ipc": [],
        "port_grant_rate": [],
        "bank_conflict_rate": [],
        "line_buffer_hit_rate": [],
        "chip_bus_occupancy": [],
        "memory_bus_occupancy": [],
        "mshr_stall_share": [],
        "window_stall_share": [],
        "lsq_stall_share": [],
        "mispredict_stall_share": [],
    }
    for index in range(row_count(series)):
        cycles = cols["cycles"][index]
        requests = cols["port_requests"][index]
        out["ipc"].append(_rate(cols["instructions"][index], cycles))
        out["port_grant_rate"].append(
            _rate(requests - cols["port_delayed"][index], requests)
        )
        out["bank_conflict_rate"].append(
            _rate(cols["bank_conflicts"][index], requests)
        )
        out["line_buffer_hit_rate"].append(
            _rate(cols["lb_load_hits"][index], cols["lb_load_lookups"][index])
        )
        out["chip_bus_occupancy"].append(
            _rate(cols["chip_bus_busy_cycles"][index], cycles)
        )
        out["memory_bus_occupancy"].append(
            _rate(cols["memory_bus_busy_cycles"][index], cycles)
        )
        out["mshr_stall_share"].append(
            _rate(cols["mshr_full_stall_cycles"][index], cycles)
        )
        out["window_stall_share"].append(
            _rate(cols["window_full_stalls"][index], cycles)
        )
        out["lsq_stall_share"].append(
            _rate(cols["lsq_full_stalls"][index], cycles)
        )
        out["mispredict_stall_share"].append(
            _rate(cols["mispredict_stall_cycles"][index], cycles)
        )
    return out

#: Pressure signals a divergent interval can be blamed on, with the
#: prose used in verdict sentences.  Ordered: earlier entries win ties.
PRESSURE_LABELS = (
    ("bank_conflict_rate", "bank-conflict rate"),
    ("mshr_stall_share", "MSHR-full stalls"),
    ("chip_bus_occupancy", "chip-bus occupancy"),
    ("memory_bus_occupancy", "memory-bus occupancy"),
    ("lsq_stall_share", "LSQ-full stalls"),
    ("window_stall_share", "window-full stalls"),
    ("mispredict_stall_share", "mispredict stalls"),
)


def dominant_pressure(
    rates: dict[str, list[float]], index: int
) -> tuple[str, str, float]:
    """(key, label, value) of the strongest pressure in one interval."""
    best = ("", "", -1.0)
    for key, label in PRESSURE_LABELS:
        value = rates[key][index]
        if value > best[2]:
            best = (key, label, value)
    return best


def align(series_a: dict, series_b: dict) -> int:
    """Rows comparable on the instruction axis; raises on mismatch.

    Both series must share the interval (rows then cover the same
    committed-instruction windows by construction); the comparable
    prefix is the shorter row count -- a run that ended early simply
    has fewer intervals.
    """
    if series_a["interval"] != series_b["interval"]:
        raise ValueError(
            f"cannot align series sampled at different intervals "
            f"({series_a['interval']} vs {series_b['interval']} instructions)"
        )
    return min(row_count(series_a), row_count(series_b))


def rank_divergent(series_a: dict, series_b: dict) -> list[dict]:
    """Aligned intervals ranked by absolute IPC gap, widest first.

    Each entry carries the instruction window, both sides' IPC and
    cycle spans, the signed gap (``ipc_a - ipc_b``), and the dominant
    pressure signal of whichever side was slower in that interval.
    """
    rates_a = derived_rates(series_a)
    rates_b = derived_rates(series_b)
    cols_a = columns_of(series_a)
    cols_b = columns_of(series_b)
    entries = []
    start = 0
    for index in range(align(series_a, series_b)):
        instructions = cols_a["instructions"][index]
        ipc_a = rates_a["ipc"][index]
        ipc_b = rates_b["ipc"][index]
        slower, faster = (
            (rates_a, rates_b) if ipc_a < ipc_b else (rates_b, rates_a)
        )
        # Differential blame: the pressure that most *separates* the two
        # designs in this interval.  An absolute maximum would name
        # symptoms both sides share (the window backing up), not the
        # structural cause that differs (say, bank conflicts).
        key, label, value = "", "", 0.0
        gap_best = -1.0
        for candidate, candidate_label in PRESSURE_LABELS:
            delta = slower[candidate][index] - faster[candidate][index]
            if delta > gap_best:
                gap_best = delta
                key, label, value = (
                    candidate,
                    candidate_label,
                    slower[candidate][index],
                )
        entries.append(
            {
                "index": index,
                "instructions": [start, start + instructions],
                "partial": bool(
                    cols_a["partial"][index] or cols_b["partial"][index]
                ),
                "ipc_a": ipc_a,
                "ipc_b": ipc_b,
                "gap": ipc_a - ipc_b,
                "cycles_a": cols_a["cycles"][index],
                "cycles_b": cols_b["cycles"][index],
                "pressure": key,
                "pressure_label": label,
                "pressure_value": value,
            }
        )
        start += instructions
    entries.sort(key=lambda entry: (-abs(entry["gap"]), entry["index"]))
    return entries


def verdict(
    label_a: str,
    label_b: str,
    series_a: dict,
    series_b: dict,
    figure: str = "",
    threshold: float = 0.05,
) -> str:
    """One paper-style sentence summarizing where and why A != B.

    A divergent interval is one whose absolute IPC gap exceeds
    ``threshold`` of the faster side's mean IPC; the sentence names the
    loser, the divergent-interval count, and the dominant pressure at
    its peak ("banked-2 loses to dual-ported in 3 bursty intervals
    where bank-conflict rate peaks at 43% -- cf. Fig. 5").
    """
    ranked = rank_divergent(series_a, series_b)
    if not ranked:
        return f"{label_a} and {label_b}: no comparable intervals"
    total_a = sum(entry["ipc_a"] * 1 for entry in ranked) / len(ranked)
    total_b = sum(entry["ipc_b"] * 1 for entry in ranked) / len(ranked)
    suffix = f" -- cf. {figure}" if figure else ""
    bar = threshold * max(total_a, total_b)
    divergent = [entry for entry in ranked if abs(entry["gap"]) > bar]
    if not divergent:
        return (
            f"{label_a} and {label_b} track each other: no interval "
            f"diverges by more than {threshold:.0%} of mean IPC "
            f"across {len(ranked)} interval(s){suffix}"
        )
    loser, winner = (
        (label_a, label_b) if total_a < total_b else (label_b, label_a)
    )
    # Blame the pressure that dominates the widest losing intervals.
    losing = [
        entry
        for entry in divergent
        if (entry["gap"] < 0) == (loser == label_a)
    ] or divergent
    label = losing[0]["pressure_label"]
    peak = max(entry["pressure_value"] for entry in losing)
    return (
        f"{loser} loses to {winner} in {len(losing)} of {len(ranked)} "
        f"interval(s) where {label} peaks at {peak:.0%}{suffix}"
    )


# ---------------------------------------------------------------------------
# Rendering: sparklines, tables, CSV
# ---------------------------------------------------------------------------

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Eight-level unicode sparkline, max-normalized; "" when empty."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    steps = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[min(steps, int(value / top * steps + 0.5))]
        for value in values
    )


def render_sparklines(series: dict) -> str:
    """The compact per-rate sparkline block under the counters table."""
    rates = derived_rates(series)
    lines = []
    for key in (
        "ipc",
        "bank_conflict_rate",
        "line_buffer_hit_rate",
        "memory_bus_occupancy",
        "mshr_stall_share",
    ):
        values = rates[key]
        if not values:
            continue
        lines.append(
            f"{key:22s} {sparkline(values)}  "
            f"min {min(values):.3f}  max {max(values):.3f}"
        )
    return "\n".join(lines)


def render_table(series: dict) -> str:
    """Per-interval table for ``repro counters`` (human format)."""
    from repro.core.reporting import format_table

    rates = derived_rates(series)
    cols = columns_of(series)
    rows = []
    start = 0
    for index in range(row_count(series)):
        instructions = cols["instructions"][index]
        rows.append(
            [
                f"{index}{'*' if cols['partial'][index] else ''}",
                f"{start}..{start + instructions}",
                f"{cols['cycles'][index]}",
                f"{rates['ipc'][index]:.3f}",
                f"{rates['bank_conflict_rate'][index]:.1%}",
                f"{rates['line_buffer_hit_rate'][index]:.1%}",
                f"{cols['mshr_occupancy_peak'][index]}",
                f"{rates['memory_bus_occupancy'][index]:.1%}",
            ]
        )
        start += instructions
    title = (
        f"Interval counters ({series['interval']} instructions/interval; "
        "* = partial tail)"
    )
    return format_table(
        [
            "interval",
            "instructions",
            "cycles",
            "IPC",
            "bank conf",
            "LB hit",
            "MSHR peak",
            "mem bus",
        ],
        rows,
        title,
    )


def render_csv(series: dict) -> str:
    """The full series as CSV, one row per interval, all raw columns."""
    lines = [",".join(("index",) + COLUMNS)]
    for index, row in enumerate(zip(*series["data"])):
        lines.append(",".join(str(value) for value in (index, *row)))
    return "\n".join(lines)


def counter_track_events(series: dict, label: str = "counters") -> list[dict]:
    """Perfetto counter-track ("ph": "C") events for one series.

    Timestamps follow the simulation convention (1 trace us == 1
    simulated cycle, cumulative from measurement start), so counter
    tracks line up under the existing slice tracks when merged into
    the ``repro trace --format chrome`` export.
    """
    from repro.observability.chrometrace import PID

    rates = derived_rates(series)
    cols = columns_of(series)
    events = []
    ts = 0
    for index in range(row_count(series)):
        for key in (
            "ipc",
            "bank_conflict_rate",
            "line_buffer_hit_rate",
            "memory_bus_occupancy",
        ):
            events.append(
                {
                    "ph": "C",
                    "pid": PID,
                    "ts": ts,
                    "name": f"{label}: {key}",
                    "args": {"value": round(rates[key][index], 6)},
                }
            )
        events.append(
            {
                "ph": "C",
                "pid": PID,
                "ts": ts,
                "name": f"{label}: mshr_occupancy_peak",
                "args": {"value": cols["mshr_occupancy_peak"][index]},
            }
        )
        ts += cols["cycles"][index]
    return events
