"""Sweep-scope hierarchical span tracing for the orchestration layer.

The cycle-level :mod:`~repro.observability.trace` answers "where did the
*simulated* time go"; this module answers the same question for the
*wall clock* of a sweep -- plan/dedup, cost-model pricing, chunk
packing, queue wait, per-point worker execution, absorption,
re-sequencing, store writes, checkpoint marks, and ledger appends each
become one span in a tree rooted at the ``sweep`` span that every
store-backed ``execute()`` opens.

Design mirrors the tracer's discipline:

* **Zero overhead when off.**  One module-level ``_ACTIVE`` recorder;
  the emit points test ``active() is None`` (or hold the shared
  :data:`NULL_SPAN`) and skip even building attribute dicts.
* **Cross-process propagation.**  Workers never see the recorder --
  the pool initializer installs a lightweight *emit* function that
  ships finished span dicts back over the same ``multiprocessing``
  queue the telemetry marks use; the parent re-records them verbatim,
  so one JSONL stream holds the whole tree.  ``span_context()`` /
  :func:`adopt` carry the (trace id, parent span id) pair across the
  pickle boundary.
* **Timestamps are epoch seconds** (``time.time()``), not monotonic --
  spans from different processes must land on one comparable axis.

Spans are flat JSON dicts (``trace``/``span``/``parent``/``name``/
``t0``/``dur``/``proc``/``attrs``), dumped to a JSONL(.gz) sink named
by ``REPRO_SPANS`` or ``--spans-out``, exported to Chrome trace-event
JSON through :mod:`~repro.observability.chrometrace`, and analyzed by
:func:`analyze`, which walks the span DAG for the critical path and
renders the paper-style verdict ``repro spans`` prints.
"""

from __future__ import annotations

import io
import json
import os
import time
from contextlib import contextmanager
from typing import IO, Callable, Iterator

from repro.observability import trace as obs_trace
from repro.observability.events import ENGINE_SPAN

#: Environment variable naming the JSONL(.gz) span sink.
SPANS_ENV = "REPRO_SPANS"

#: Sink lines buffered between writes (same batching rationale as the
#: cycle tracer: one write syscall per batch, not per span).
SINK_BATCH_LINES = 256


def _now() -> float:
    # Epoch time on purpose: spans from the coordinator and from pool
    # workers must share one axis, and monotonic clocks are per-process.
    return time.time()


class SpanScope:
    """One open span; a context manager that closes it on exit."""

    __slots__ = ("recorder", "name", "span_id", "parent", "attrs", "t0", "_closed")

    def __init__(self, recorder: "SpanRecorder", name: str, parent: str | None, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.span_id = recorder._next_span_id()
        self.parent = parent
        self.attrs = attrs
        self.t0 = _now()
        self._closed = False

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. ok/error)."""
        self.attrs.update(attrs)

    def close(self, end: float | None = None) -> None:
        """Finish the span; ``end`` (epoch seconds) overrides "now" when
        the true end time was observed elsewhere (a worker's clock)."""
        if self._closed:
            return
        self._closed = True
        self.recorder._finish(self, end=end)

    def __enter__(self) -> "SpanScope":
        self.recorder._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self.recorder._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # tolerate out-of-order closes
            stack.remove(self)
        self.close()


class _NullSpan:
    """Shared no-op stand-in so disabled call sites stay branch-free."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The one shared null span; truth-testing it is falsy by convention of
#: ``__enter__`` returning ``None`` inside ``with`` blocks.
NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects finished spans; optionally streams them to a sink.

    The coordinator process holds one recorder per collection scope.
    Worker processes hold one too, but constructed with ``emit`` -- a
    callable shipping each finished span dict to the parent -- and no
    sink; the parent funnels remote spans through :meth:`record` so
    dedup, counting, and the sink all live in one place.
    """

    def __init__(
        self,
        sink: IO[str] | None = None,
        emit: "Callable[[dict], None] | None" = None,
        proc: str | None = None,
        path: str | None = None,
    ):
        self.sink = sink
        self.emit = emit
        self.proc = proc if proc is not None else f"pid{os.getpid()}"
        self.path = path
        self.trace_id: str | None = None
        self.recorded = 0
        self.finished: list[dict] = []
        self._stack: list[SpanScope] = []
        self._base_parent: str | None = None
        self._counter = 0
        self._buffer: list[str] = []
        self._seen: set[str] = set()

    # -- span identity -------------------------------------------------

    def _next_span_id(self) -> str:
        self._counter += 1
        return f"{os.getpid():x}.{self._counter:x}"

    def current_parent(self) -> str | None:
        if self._stack:
            return self._stack[-1].span_id
        return self._base_parent

    def span_context(self) -> dict | None:
        """(trace, parent) pair to ship across a process boundary."""
        if self.trace_id is None:
            return None
        return {"trace": self.trace_id, "parent": self.current_parent()}

    # -- recording spans -----------------------------------------------

    def open(self, name: str, parent: str | None = None, **attrs) -> SpanScope:
        """Open a span *without* pushing it on the nesting stack.

        For overlapping lifetimes (per-chunk queue-wait spans that the
        coordinator closes out of order as workers pick chunks up).
        The caller closes it explicitly.  ``parent`` overrides the
        current nesting parent (a queue-wait span hangs off its chunk
        span, not off whatever the coordinator happens to be doing).
        """
        if parent is None:
            parent = self.current_parent()
        return SpanScope(self, name, parent, attrs)

    def span(self, name: str, **attrs) -> SpanScope:
        """Open a nested span; use as ``with recorder.span(...)``."""
        return SpanScope(self, name, self.current_parent(), attrs)

    def instant(self, name: str, **attrs) -> None:
        """A zero-duration marker (steal events, checkpoint marks)."""
        now = _now()
        self.record(
            {
                "trace": self.trace_id,
                "span": self._next_span_id(),
                "parent": self.current_parent(),
                "name": name,
                "t0": round(now, 6),
                "dur": 0.0,
                "proc": self.proc,
                "attrs": attrs,
            }
        )

    def _finish(self, scope: SpanScope, end: float | None = None) -> None:
        dur = (end if end is not None else _now()) - scope.t0
        self.record(
            {
                "trace": self.trace_id,
                "span": scope.span_id,
                "parent": scope.parent,
                "name": scope.name,
                "t0": round(scope.t0, 6),
                "dur": round(max(dur, 0.0), 6),
                "proc": self.proc,
                "attrs": scope.attrs,
            }
        )

    def record(self, data: dict | None) -> None:
        """Accept one finished span dict (local or shipped from a worker)."""
        if not isinstance(data, dict) or "span" not in data:
            return
        span_id = str(data["span"])
        if span_id in self._seen:
            return  # a worker retransmit or a double close
        self._seen.add(span_id)
        if data.get("trace") is None:
            data["trace"] = self.trace_id
        self.recorded += 1
        if self.emit is not None:
            self.emit(data)
            return
        self.finished.append(data)
        if self.sink is not None:
            self._buffer.append(json.dumps(data, separators=(",", ":"), sort_keys=True))
            if len(self._buffer) >= SINK_BATCH_LINES:
                self.flush()
        # Mirror onto the cold event channel so a REPRO_TRACE stream
        # interleaves orchestration spans with engine lifecycle events.
        obs_trace.emit(
            ENGINE_SPAN, 0, name=data.get("name"), dur=data.get("dur"), span=span_id
        )

    def flush(self) -> None:
        if self.sink is not None and self._buffer:
            self.sink.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            try:
                self.sink.flush()
            except (OSError, ValueError):  # closed or torn sink
                pass

    # -- root scope ----------------------------------------------------

    @contextmanager
    def trace(self, trace_id: str, name: str, **attrs) -> Iterator[SpanScope]:
        """Open the root span of a new trace (one sweep = one trace)."""
        previous = self.trace_id
        self.trace_id = trace_id
        scope = SpanScope(self, name, None, attrs)
        self._stack.append(scope)
        try:
            with_error = False
            try:
                yield scope
            except BaseException as exc:
                with_error = True
                scope.attrs.setdefault("error", type(exc).__name__)
                raise
            finally:
                if self._stack and self._stack[-1] is scope:
                    self._stack.pop()
                elif scope in self._stack:
                    self._stack.remove(scope)
                scope.close()
                del with_error
        finally:
            self.trace_id = previous
            self.flush()

    # -- summaries -----------------------------------------------------

    def summary(self, top: int = 5, trace_id: str | None = None) -> dict:
        """Aggregate view for the telemetry hub snapshot."""
        spans = self.finished
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace") == trace_id]
        by_name: dict[str, dict] = {}
        for span in spans:
            row = by_name.setdefault(str(span.get("name")), {"count": 0, "seconds": 0.0})
            row["count"] += 1
            row["seconds"] += float(span.get("dur") or 0.0)
        for row in by_name.values():
            row["seconds"] = round(row["seconds"], 6)
        ranked = sorted(by_name.items(), key=lambda kv: kv[1]["seconds"], reverse=True)
        return {
            "recorded": self.recorded,
            "by_name": dict(ranked),
            "top": [
                {"name": name, **row} for name, row in ranked[:top]
            ],
        }

    def run_info(self, top: int = 3, trace_id: str | None = None) -> dict:
        """Compact record for the run ledger: where the spans went."""
        if trace_id is None:
            trace_id = self.trace_id
        info: dict = {"recorded": self.recorded}
        if trace_id is not None:
            info["trace"] = trace_id
        if self.path is not None:
            info["path"] = self.path
        ranked = self.summary(top=top, trace_id=trace_id)["top"]
        if ranked:
            info["top"] = [
                {"name": row["name"], "seconds": row["seconds"]} for row in ranked
            ]
        return info


# --------------------------------------------------------------------------
# Module-level activation (mirrors trace._ACTIVE)
# --------------------------------------------------------------------------

_ACTIVE: SpanRecorder | None = None

#: Per-process counter disambiguating repeat runs of the same plan.
_TRACE_SEQ = 0


def active() -> SpanRecorder | None:
    """The installed recorder, or ``None`` when spans are off."""
    return _ACTIVE


def install(recorder: SpanRecorder) -> None:
    global _ACTIVE
    _ACTIVE = recorder


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def next_trace_id(plan_digest: str) -> str:
    """Trace ids are plan-digest-derived but unique per invocation."""
    global _TRACE_SEQ
    _TRACE_SEQ += 1
    return f"{plan_digest[:12]}-{_TRACE_SEQ:02d}"


def span(name: str, **attrs):
    """Module-level convenience for occasional emit points.

    Returns the shared :data:`NULL_SPAN` when recording is off, so the
    disabled path allocates nothing.
    """
    recorder = _ACTIVE
    if recorder is None or recorder.trace_id is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


def install_worker(send: "Callable[[dict], None]") -> None:
    """Install an emit-only recorder in a pool worker process."""
    install(SpanRecorder(emit=send, proc=f"worker-{os.getpid()}"))


@contextmanager
def adopt(span_ctx: dict | None) -> Iterator[None]:
    """Adopt a (trace, parent) context shipped from the coordinator.

    Inside the scope, spans opened in this process attach under the
    coordinator's parent span and carry its trace id.  A ``None``
    context (spans off) is a no-op, so worker call sites need no gate.
    """
    recorder = _ACTIVE
    if span_ctx is None or recorder is None:
        yield
        return
    prev_trace = recorder.trace_id
    prev_parent = recorder._base_parent
    recorder.trace_id = span_ctx.get("trace")
    recorder._base_parent = span_ctx.get("parent")
    try:
        yield
    finally:
        recorder.trace_id = prev_trace
        recorder._base_parent = prev_parent


def open_sink(path: str) -> IO[str]:
    """Open the span sink in *append* mode; ``*.gz`` paths are gzipped.

    Append, not truncate: one REPRO_SPANS path commonly collects several
    sweeps (``repro all``, resume loops), and concatenated gzip members
    are legal input to every reader here.
    """
    if str(path).endswith(".gz"):
        import gzip

        return gzip.open(path, "at", encoding="utf-8", compresslevel=1)
    return open(path, "a", encoding="utf-8")


@contextmanager
def collecting(path: str | None = None) -> Iterator[SpanRecorder]:
    """Scope with span recording installed; restores prior state on exit."""
    sink = open_sink(path) if path else None
    recorder = SpanRecorder(sink=sink, proc="coordinator", path=path)
    previous = _ACTIVE
    install(recorder)
    try:
        yield recorder
    finally:
        install(previous) if previous is not None else uninstall()
        recorder.flush()
        if sink is not None:
            sink.close()


# --------------------------------------------------------------------------
# Reading spans back
# --------------------------------------------------------------------------


def read_spans(path: str) -> list[dict]:
    """Load spans from a JSONL(.gz) sink, tolerating torn tails.

    A sweep killed mid-write leaves a torn last line (or a truncated
    gzip member); both are survivable -- every complete span before the
    tear is returned.
    """
    spans: list[dict] = []
    if str(path).endswith(".gz"):
        import gzip

        try:
            with gzip.open(path, "rb") as fh:
                raw = fh.read()
        except (OSError, EOFError):
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
                raw = gzip.decompress(blob)
            except Exception:
                raw = _salvage_gzip(path)
        text = raw.decode("utf-8", errors="replace")
    else:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn line
        if isinstance(data, dict) and "span" in data:
            spans.append(data)
    return spans


def _salvage_gzip(path: str) -> bytes:
    """Best-effort decompress of a truncated gzip stream."""
    import gzip

    out = io.BytesIO()
    try:
        with open(path, "rb") as fh, gzip.GzipFile(fileobj=fh) as gz:
            while True:
                chunk = gz.read(65536)
                if not chunk:
                    break
                out.write(chunk)
    except (OSError, EOFError):
        pass
    return out.getvalue()


# --------------------------------------------------------------------------
# Critical-path analysis
# --------------------------------------------------------------------------


class _Node:
    __slots__ = ("span", "children")

    def __init__(self, span: dict):
        self.span = span
        self.children: list["_Node"] = []

    @property
    def t0(self) -> float:
        return float(self.span.get("t0") or 0.0)

    @property
    def dur(self) -> float:
        return float(self.span.get("dur") or 0.0)

    @property
    def end(self) -> float:
        return self.t0 + self.dur

    @property
    def name(self) -> str:
        return str(self.span.get("name"))


def _build_tree(spans: list[dict]) -> "tuple[_Node | None, dict[str, _Node]]":
    nodes = {str(s["span"]): _Node(s) for s in spans if "span" in s}
    roots: list[_Node] = []
    for node in nodes.values():
        parent = node.span.get("parent")
        if parent is not None and str(parent) in nodes:
            nodes[str(parent)].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.t0)
    if not roots:
        return None, nodes
    named = [r for r in roots if r.name == "sweep"]
    root = named[0] if named else max(roots, key=lambda n: n.dur)
    return root, nodes


def _child_chain(node: _Node) -> list[_Node]:
    """The chain of children that gates ``node``'s completion.

    Walk backward from the latest-finishing child; each previous link is
    the latest-finishing child that ended at or before the current
    link's start.  This is the classic critical-path recurrence on an
    interval DAG where overlap means "did not wait on".
    """
    children = [c for c in node.children if c.dur >= 0]
    if not children:
        return []
    chain: list[_Node] = []
    current = max(children, key=lambda c: c.end)
    chain.append(current)
    while True:
        before = [c for c in children if c.end <= current.t0 + 1e-9 and c is not current]
        if not before:
            break
        current = max(before, key=lambda c: c.end)
        chain.append(current)
    chain.reverse()
    return chain


def path_segments(root: _Node) -> list[dict]:
    """Flatten the critical path into (name, self_seconds) segments.

    A node's *self time* is its duration minus the part covered by its
    chain children (clipped to the node's own interval), so segment
    self-times sum to ~the root's wall clock.
    """
    segments: list[dict] = []

    def visit(node: _Node) -> None:
        chain = _child_chain(node)
        covered = 0.0
        for child in chain:
            lo = max(child.t0, node.t0)
            hi = min(child.end, node.end)
            covered += max(hi - lo, 0.0)
        self_time = max(node.dur - covered, 0.0)
        segments.append(
            {
                "name": node.name,
                "span": node.span.get("span"),
                "proc": node.span.get("proc"),
                "self_seconds": round(self_time, 6),
                "seconds": round(node.dur, 6),
                "attrs": node.span.get("attrs") or {},
            }
        )
        for child in chain:
            visit(child)

    visit(root)
    return segments


def analyze(spans: list[dict], trace_id: str | None = None) -> dict | None:
    """Critical-path analysis of one trace; ``None`` when empty.

    When ``trace_id`` is ``None`` the last trace in the file is used
    (sinks append, so the last root span is the most recent sweep).
    """
    if trace_id is None:
        roots = [s for s in spans if s.get("parent") is None and s.get("trace")]
        if roots:
            trace_id = roots[-1].get("trace")
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace") == trace_id]
    if not spans:
        return None
    root, _nodes = _build_tree(spans)
    if root is None:
        return None

    wall = root.dur
    attrs = root.span.get("attrs") or {}
    jobs = int(attrs.get("jobs") or 1)

    by_name: dict[str, dict] = {}
    for s in spans:
        row = by_name.setdefault(str(s.get("name")), {"count": 0, "seconds": 0.0})
        row["count"] += 1
        row["seconds"] += float(s.get("dur") or 0.0)
    for row in by_name.values():
        row["seconds"] = round(row["seconds"], 6)

    points = [s for s in spans if s.get("name") == "point"]
    point_total = sum(float(s.get("dur") or 0.0) for s in points)
    max_point = max((float(s.get("dur") or 0.0) for s in points), default=0.0)

    waits = [s for s in spans if s.get("name") == "chunk.wait"]
    queue_wait = sum(float(s.get("dur") or 0.0) for s in waits)
    worst_wait = max(waits, key=lambda s: float(s.get("dur") or 0.0), default=None)
    # Queue wait is judged against total chunk *lifetime* (submit to
    # absorbed), not wall x jobs: a self-scheduling pool keeps several
    # chunks queued per worker by design, so cumulative wait routinely
    # exceeds worker-seconds without anything being wrong.
    chunk_total = sum(
        float(s.get("dur") or 0.0) for s in spans if s.get("name") == "chunk"
    )

    workers: dict[str, float] = {}
    for s in points:
        proc = str(s.get("proc"))
        workers[proc] = workers.get(proc, 0.0) + float(s.get("dur") or 0.0)

    segments = path_segments(root)
    path_seconds = sum(seg["self_seconds"] for seg in segments)

    # Which worker carries the most critical-path point time?  The
    # whole point family counts ("point" itself has near-zero self time
    # because its run/prepare/serialize children cover it).
    crit_by_proc: dict[str, float] = {}
    for seg in segments:
        if seg["name"].startswith("point"):
            proc = str(seg["proc"])
            crit_by_proc[proc] = crit_by_proc.get(proc, 0.0) + seg["self_seconds"]
    critical_worker = max(crit_by_proc, key=crit_by_proc.get) if crit_by_proc else None
    critical_worker_seconds = crit_by_proc.get(critical_worker, 0.0) if critical_worker else 0.0

    serial_estimate = point_total if point_total else wall
    achieved = serial_estimate / wall if wall > 0 else 0.0
    ideal = min(float(jobs), serial_estimate / max_point) if max_point > 0 else float(jobs)

    return {
        "trace": trace_id,
        "wall_seconds": round(wall, 6),
        "jobs": jobs,
        "points": int(attrs.get("points") or len(points)),
        "span_count": len(spans),
        "by_name": dict(sorted(by_name.items(), key=lambda kv: kv[1]["seconds"], reverse=True)),
        "workers": {k: round(v, 6) for k, v in sorted(workers.items())},
        "queue_wait_seconds": round(queue_wait, 6),
        "queue_wait_fraction": (
            round(queue_wait / chunk_total, 4) if chunk_total > 0 else 0.0
        ),
        "worst_wait": (
            {
                "seconds": round(float(worst_wait.get("dur") or 0.0), 6),
                "attrs": worst_wait.get("attrs") or {},
            }
            if worst_wait is not None
            else None
        ),
        "critical_path": segments,
        "critical_path_seconds": round(path_seconds, 6),
        "critical_worker": critical_worker,
        "critical_worker_seconds": round(critical_worker_seconds, 6),
        "serial_estimate_seconds": round(serial_estimate, 6),
        "achieved_speedup": round(achieved, 2),
        "ideal_speedup": round(ideal, 2),
    }


def render_analysis(analysis: dict) -> str:
    """The paper-style verdict ``repro spans`` prints."""
    lines: list[str] = []
    wall = analysis["wall_seconds"]
    jobs = analysis["jobs"]
    lines.append(
        f"trace {analysis['trace']}: {analysis['points']} point(s), "
        f"jobs {jobs}, wall {wall:.2f}s "
        f"({analysis['span_count']} spans recorded)"
    )

    verdict = [f"jobs {jobs}:"]
    if analysis["critical_worker"] is not None and wall > 0:
        fraction = 100.0 * analysis["critical_worker_seconds"] / wall
        verdict.append(
            f"{fraction:.0f}% of wall clock on the critical path of "
            f"{analysis['critical_worker']};"
        )
    qw = 100.0 * analysis.get("queue_wait_fraction", 0.0)
    if qw >= 0.5:
        clause = f"{qw:.0f}% of chunk lifetime queued"
        worst = analysis.get("worst_wait")
        if worst and worst["seconds"] > 0.5 * analysis["queue_wait_seconds"]:
            chunk = worst["attrs"].get("chunk")
            clause += f", dominated by one chunk (chunk {chunk})" if chunk is not None else ""
        verdict.append(clause + ";")
    verdict.append(
        f"ideal speedup {analysis['ideal_speedup']:.1f}x, "
        f"achieved {analysis['achieved_speedup']:.1f}x"
    )
    lines.append("  " + " ".join(verdict))

    lines.append("  critical path:")
    segments = analysis["critical_path"]
    shown = [seg for seg in segments if seg["self_seconds"] > 0.0005]
    if not shown:
        shown = segments[:3]
    for seg in shown[:12]:
        detail = ""
        attrs = seg.get("attrs") or {}
        if seg["name"] == "point" and attrs.get("digest"):
            detail = f" [{attrs.get('label', '')} {attrs['digest']}]"
        elif seg["name"] == "chunk" and attrs.get("chunk") is not None:
            detail = f" [chunk {attrs['chunk']}]"
        lines.append(
            f"    {seg['self_seconds']:8.3f}s  {seg['name']:<16s}"
            f" ({seg['proc']}){detail}"
        )
    lines.append(
        f"  path self-time {analysis['critical_path_seconds']:.2f}s"
        f" of {wall:.2f}s wall"
    )

    lines.append("  by span name:")
    for name, row in list(analysis["by_name"].items())[:8]:
        lines.append(f"    {row['seconds']:8.3f}s  {name:<16s} x{row['count']}")
    return "\n".join(lines)
