"""Profiling hooks: per-phase wall clock and event throughput.

The CLI's ``--profile`` flag wraps each experiment in a
:class:`PhaseProfiler` phase and prints the table at the end of the
run.  When tracing is active (``--profile`` installs a counting-only
tracer if none is), each phase also reports how many simulator events
it emitted and the resulting events/second -- a direct measure of where
simulated work is concentrated.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.observability import trace


class PhaseRecord:
    """Wall clock and event throughput for one named phase."""

    __slots__ = ("name", "seconds", "events")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.events = 0

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


class PhaseProfiler:
    """Accumulates named phases; render with :meth:`summary`."""

    def __init__(self) -> None:
        self._phases: dict[str, PhaseRecord] = {}
        self._order: list[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseRecord]:
        record = self._phases.get(name)
        if record is None:
            record = self._phases[name] = PhaseRecord(name)
            self._order.append(name)
        tracer = trace.active()
        emitted_before = tracer.emitted if tracer is not None else 0
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds += time.perf_counter() - started
            if tracer is not None:
                record.events += tracer.emitted - emitted_before

    def records(self) -> list[PhaseRecord]:
        return [self._phases[name] for name in self._order]

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records())

    def summary(self) -> str:
        """Fixed-width profile table (empty string when nothing ran)."""
        from repro.core.reporting import format_table

        records = self.records()
        if not records:
            return ""
        total = self.total_seconds or 1.0
        rows = [
            [
                record.name,
                f"{record.seconds:.2f}",
                f"{100 * record.seconds / total:.1f}%",
                f"{record.events}" if record.events else "-",
                f"{record.events_per_second:,.0f}" if record.events else "-",
            ]
            for record in records
        ]
        rows.append(
            [
                "total",
                f"{self.total_seconds:.2f}",
                "100.0%",
                f"{sum(r.events for r in records)}",
                "-",
            ]
        )
        return format_table(
            ["phase", "seconds", "share", "events", "events/s"],
            rows,
            "Profile: per-phase wall clock and event throughput",
        )
