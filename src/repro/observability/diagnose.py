"""Stall-source diagnosis: where do a design point's load cycles go?

``python -m repro diagnose <benchmark>`` re-simulates representative
design points from Figures 4-7 with latency attribution enabled and
ranks each point's stall sources, producing the paper-style narrative
("banked-4: 31% of load cycles lost to bank conflicts -- cf. Fig. 5")
plus the full per-component breakdown table.

Runs go through :func:`repro.core.experiment._simulate` directly
rather than the execution engine: a memoized or stored result from an
unattributed run would carry no attribution metrics, and diagnosis
must never pollute the shared result store with attribution-enabled
entries either.  Attribution does not perturb timing (the golden suite
pins that), so the IPCs printed here match the cached figures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import experiment
from repro.core.organizations import (
    KB,
    CacheOrganization,
    banked,
    dram_cache,
    duplicate,
    ideal_ports,
)
from repro.core.reporting import format_table
from repro.observability import attribution, counters
from repro.workloads.catalog import benchmark as benchmark_spec

#: Human labels for the narrative lines.
COMPONENT_LABELS = {
    "port_wait": "port contention",
    "bank_conflict": "bank conflicts",
    "l1_access": "L1 access",
    "line_buffer": "line-buffer hits",
    "mshr_wait": "MSHR exhaustion",
    "mshr_merge": "in-flight miss waits",
    "victim_swap": "victim-cache swaps",
    "l2_access": "L2 access",
    "bus_queue": "bus queueing",
    "bus_transfer": "bus transfers",
    "dram_bank_wait": "DRAM bank waits",
    "dram_access": "DRAM array access",
    "memory": "main-memory latency",
}


def _design_points() -> tuple[tuple[str, str, CacheOrganization], ...]:
    """(label, paper figure, organization) for the diagnosed points."""
    return (
        ("ideal-2p", "Fig. 4", ideal_ports(32 * KB, ports=2)),
        # The single-banked point makes Figure 5's serialization
        # argument vivid: every concurrent access conflicts.
        ("banked-1", "Fig. 5", banked(32 * KB, banks=1)),
        ("banked-4", "Fig. 5", banked(32 * KB, banks=4)),
        ("banked-8", "Fig. 5", banked(32 * KB, banks=8)),
        ("duplicate", "Fig. 6", duplicate(32 * KB)),
        ("duplicate+lb", "Fig. 6", duplicate(32 * KB, line_buffer=True)),
        ("dram+lb", "Fig. 7", dram_cache(line_buffer=True)),
    )


def compare_catalog() -> "dict[str, tuple[str, CacheOrganization]]":
    """label -> (figure, organization) accepted by ``repro compare``.

    The diagnosis design points plus the classic Figure 5 matchup pair:
    ``banked-2`` and ``dual-ported`` (the latter an alias of the ideal
    two-ported point, named the way the paper's comparison reads).
    """
    catalog = {
        label: (figure, organization)
        for label, figure, organization in _design_points()
    }
    catalog["banked-2"] = ("Fig. 5", banked(32 * KB, banks=2))
    catalog["dual-ported"] = ("Fig. 4", ideal_ports(32 * KB, ports=2))
    return catalog


@dataclass(frozen=True)
class PointDiagnosis:
    """Attribution summary of one design point on one benchmark."""

    label: str
    figure: str
    organization: str
    ipc: float
    loads: int
    load_cycles: int
    p50: float
    p95: float
    p99: float
    components: dict  #: component -> critical-path cycles
    outcomes: dict  #: outcome -> access count
    #: worst sampled interval (``--from-counters``): cycle range, IPC,
    #: and dominant pressure; ``None`` when sampling was off
    worst_interval: dict | None = None

    def stall_ranking(self) -> list[tuple[str, int]]:
        """Non-base components by cycles, heaviest first."""
        stalls = [
            (name, cycles)
            for name, cycles in self.components.items()
            if name not in attribution.BASE_COMPONENTS and cycles > 0
        ]
        return sorted(stalls, key=lambda item: (-item[1], item[0]))

    def dominant_stall(self) -> tuple[str, float] | None:
        """The heaviest stall source and its share of all load cycles."""
        ranking = self.stall_ranking()
        if not ranking or not self.load_cycles:
            return None
        name, cycles = ranking[0]
        return name, cycles / self.load_cycles


def _worst_interval(series: dict | None) -> dict | None:
    """The lowest-IPC sampled interval, with cycle range and blame."""
    if not series:
        return None
    rates = counters.derived_rates(series)
    if not rates["ipc"]:
        return None
    cols = counters.columns_of(series)
    index = min(range(len(rates["ipc"])), key=lambda i: (rates["ipc"][i], i))
    cycle_start = sum(cols["cycles"][:index])
    pressure_key, pressure_label, value = counters.dominant_pressure(
        rates, index
    )
    return {
        "index": index,
        "cycle_start": cycle_start,
        "cycle_end": cycle_start + cols["cycles"][index],
        "ipc": rates["ipc"][index],
        "partial": bool(cols["partial"][index]),
        "pressure": pressure_key,
        "pressure_label": pressure_label,
        "pressure_value": value,
    }


def diagnose_design_point(
    label: str,
    figure: str,
    organization: CacheOrganization,
    benchmark: str,
    settings: "experiment.ExperimentSettings",
    counter_interval: int | None = None,
) -> PointDiagnosis:
    """One attributed simulation, summarized.

    ``counter_interval`` additionally samples interval counters during
    the same run (``--from-counters``), so the narrative can cite the
    worst phase instead of only whole-run aggregates.
    """
    spec = benchmark_spec(benchmark)
    scaled = settings.scaled()
    if counter_interval is not None:
        with attribution.attributing(), counters.sampling(counter_interval):
            result = experiment._simulate(organization, spec, scaled)
    else:
        with attribution.attributing():
            result = experiment._simulate(organization, spec, scaled)
    metrics = result.metrics
    prefix = "attribution.component."
    components = {
        name[len(prefix):-len(".cycles")]: cycles
        for name, cycles in metrics.items()
        if name.startswith(prefix) and name.endswith(".cycles")
    }
    out_prefix = "attribution.outcome."
    outcomes = {
        name[len(out_prefix):-len(".loads")]: count
        for name, count in metrics.items()
        if name.startswith(out_prefix) and name.endswith(".loads")
    }
    return PointDiagnosis(
        label=label,
        figure=figure,
        organization=organization.label,
        ipc=result.ipc,
        loads=int(metrics.get("attribution.loads", 0)),
        load_cycles=int(metrics.get("attribution.latency.cycles", 0)),
        p50=float(metrics.get("attribution.latency.p50", 0.0)),
        p95=float(metrics.get("attribution.latency.p95", 0.0)),
        p99=float(metrics.get("attribution.latency.p99", 0.0)),
        components=components,
        outcomes=outcomes,
        worst_interval=_worst_interval(result.counters),
    )


def diagnose_benchmark(
    benchmark: str,
    settings: "experiment.ExperimentSettings | None" = None,
    points: "tuple[tuple[str, str, CacheOrganization], ...] | None" = None,
    counter_interval: int | None = None,
) -> list[PointDiagnosis]:
    """Diagnose every design point (Figures 4-7) on one benchmark."""
    if settings is None:
        settings = experiment.ExperimentSettings()
    if points is None:
        points = _design_points()
    return [
        diagnose_design_point(
            label,
            figure,
            organization,
            benchmark,
            settings,
            counter_interval=counter_interval,
        )
        for label, figure, organization in points
    ]


def narrative_line(diagnosis: PointDiagnosis) -> str:
    """One paper-style sentence naming the dominant stall source."""
    dominant = diagnosis.dominant_stall()
    if dominant is None:
        line = (
            f"{diagnosis.label}: no stall cycles beyond the base "
            f"access time -- cf. {diagnosis.figure}"
        )
    else:
        name, share = dominant
        line = (
            f"{diagnosis.label}: {share:.0%} of load cycles lost to "
            f"{COMPONENT_LABELS.get(name, name)} -- cf. {diagnosis.figure}"
        )
    worst = diagnosis.worst_interval
    if worst is not None:
        line += (
            f"; worst interval {worst['index']} (cycles "
            f"{worst['cycle_start']}-{worst['cycle_end']}) ran at "
            f"{worst['ipc']:.2f} IPC under {worst['pressure_label']} "
            f"of {worst['pressure_value']:.0%}"
        )
    return line


def render_diagnosis(diagnoses: list[PointDiagnosis], benchmark: str) -> str:
    """The full ``repro diagnose`` report for one benchmark."""
    summary_rows = []
    for diagnosis in diagnoses:
        dominant = diagnosis.dominant_stall()
        if dominant is None:
            dominant_text, share_text = "-", "-"
        else:
            dominant_text = COMPONENT_LABELS.get(dominant[0], dominant[0])
            share_text = f"{dominant[1]:.1%}"
        average = (
            diagnosis.load_cycles / diagnosis.loads if diagnosis.loads else 0.0
        )
        summary_rows.append(
            [
                diagnosis.label,
                diagnosis.figure,
                f"{diagnosis.ipc:.3f}",
                f"{average:.2f}",
                f"{diagnosis.p95:.1f}",
                dominant_text,
                share_text,
            ]
        )
    blocks = [
        format_table(
            ["design point", "figure", "IPC", "avg ld cyc", "p95", "dominant stall", "share"],
            summary_rows,
            f"Stall-source diagnosis: {benchmark}",
        ),
        "",
        "\n".join(narrative_line(diagnosis) for diagnosis in diagnoses),
    ]
    breakdown_rows = []
    for diagnosis in diagnoses:
        for name, cycles in diagnosis.stall_ranking():
            share = cycles / diagnosis.load_cycles if diagnosis.load_cycles else 0.0
            breakdown_rows.append(
                [
                    diagnosis.label,
                    COMPONENT_LABELS.get(name, name),
                    f"{cycles}",
                    f"{share:.1%}",
                ]
            )
    if breakdown_rows:
        blocks += [
            "",
            format_table(
                ["design point", "stall source", "cycles", "% of load cycles"],
                breakdown_rows,
                "Critical-path breakdown (stall components only)",
            ),
        ]
    return "\n".join(blocks)
