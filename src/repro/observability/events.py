"""The event taxonomy and the always-on emit channel.

Every instrumented point in the simulator emits one of the event kinds
below.  Names are hierarchical (``cpu.*``, ``mem.*``, ``engine.*``) so
consumers can filter by prefix; DESIGN.md section 9 documents the
fields each kind carries.

Two kinds of consumer see the stream:

* the optional :class:`~repro.observability.trace.Tracer` (ring buffer
  / JSONL sink), active only inside a ``tracing()`` scope;
* **invariant taps** -- always-on guard rails (the port grant ledger,
  bus causality) registered on an :class:`EventChannel`.  They observe
  exactly the emission the tracer would capture, so the robustness
  checks and the trace can never disagree about what happened.
"""

from __future__ import annotations

from typing import Callable

from repro.observability import trace

# --------------------------------------------------------------------------
# Event kinds
# --------------------------------------------------------------------------

#: CPU pipeline lifecycle (fields: seq, op; issue adds complete/fwd).
CPU_FETCH = "cpu.fetch"
CPU_ISSUE = "cpu.issue"
CPU_COMMIT = "cpu.commit"
#: Fetch redirected after a branch misprediction (fields: seq, resume).
CPU_FLUSH = "cpu.flush"

#: One data reference through the hierarchy frontend
#: (fields: line, outcome, served, done).
MEM_LOAD = "mem.load"
MEM_STORE = "mem.store"
#: A load satisfied by the level-zero line buffer (fields: line).
MEM_LB_HIT = "mem.lb.hit"
#: A cache port/bank granted a start cycle (fields: key; weight opt).
MEM_PORT_GRANT = "mem.port.grant"
#: A banked access delayed by its bank (fields: bank, wait).
MEM_BANK_CONFLICT = "mem.bank.conflict"
#: MSHR lifecycle (fields: line; alloc adds start, fill adds ready).
MEM_MSHR_ALLOC = "mem.mshr.alloc"
MEM_MSHR_MERGE = "mem.mshr.merge"
MEM_MSHR_FILL = "mem.mshr.fill"
#: A bus transfer window (fields: bus, start, done, bytes).
MEM_BUS_TRANSFER = "mem.bus.transfer"

#: Execution-engine lifecycle (cycle is always 0 -- wall-clock scoped).
ENGINE_PLAN = "engine.plan"
ENGINE_EXECUTE = "engine.execute"
ENGINE_CACHE_HIT = "engine.cache_hit"
#: A run record appended to the persistent ledger
#: (fields: run_id, plan_digest, points).
ENGINE_RUN_RECORD = "engine.run_record"
#: A batch resumed past work already completed by an earlier run
#: (fields: plan_digest, skipped, remaining).
ENGINE_RESUME = "engine.resume"
#: One parallel batch's dispatch summary (fields: points, chunks,
#: workers, reused, steals, fallback, utilization).
ENGINE_DISPATCH = "engine.dispatch"

#: An orchestration span closed by the sweep span recorder
#: (fields: name, dur, span).
ENGINE_SPAN = "engine.span"

#: A design point overran its wall-clock deadline and became a gap
#: (fields: label, workload, seconds).
POINT_TIMEOUT = "point.timeout"

#: A live-telemetry heartbeat reaching the parent-side hub
#: (fields: type, point, label).
TELEMETRY_HEARTBEAT = "telemetry.heartbeat"

#: Every kind above, for validation and reporting.
ALL_KINDS = (
    CPU_FETCH,
    CPU_ISSUE,
    CPU_COMMIT,
    CPU_FLUSH,
    MEM_LOAD,
    MEM_STORE,
    MEM_LB_HIT,
    MEM_PORT_GRANT,
    MEM_BANK_CONFLICT,
    MEM_MSHR_ALLOC,
    MEM_MSHR_MERGE,
    MEM_MSHR_FILL,
    MEM_BUS_TRANSFER,
    ENGINE_PLAN,
    ENGINE_EXECUTE,
    ENGINE_CACHE_HIT,
    ENGINE_RUN_RECORD,
    ENGINE_RESUME,
    ENGINE_DISPATCH,
    ENGINE_SPAN,
    POINT_TIMEOUT,
    TELEMETRY_HEARTBEAT,
)


class EventChannel:
    """A named emit point with always-on invariant taps.

    ``emit`` dispatches the event to every registered tap (guard rails
    that must see the stream whether or not tracing is enabled) and then
    to the active tracer, if any.  A tap is any callable taking
    ``(cycle, fields)``; it may raise a structured invariant error,
    which propagates to the emitting hot path exactly as the old
    privately-bookkept checks did.
    """

    __slots__ = ("kind", "_taps")

    def __init__(
        self,
        kind: str,
        taps: "tuple[Callable[[int, dict], None], ...]" = (),
    ):
        self.kind = kind
        self._taps = list(taps)

    def add_tap(self, tap: "Callable[[int, dict], None]") -> None:
        self._taps.append(tap)

    def emit(self, cycle: int, /, **fields) -> None:
        for tap in self._taps:
            tap(cycle, fields)
        tracer = trace._ACTIVE
        if tracer is not None:
            tracer.capture(self.kind, cycle, fields)
