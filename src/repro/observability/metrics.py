"""Hierarchical counter/timer registry and the simulation snapshot.

The simulator's components keep their statistics in small dataclasses
(:class:`~repro.memory.stats.MemoryStats`, ``PortStats``, ``MshrStats``,
``BusStats``, ...).  Historically most of those never left the live
objects -- port contention, MSHR pressure, and bus occupancy were
discarded when the :class:`~repro.memory.hierarchy.MemorySystem` was
garbage collected, and only the ``MemoryStats`` aggregate rode the
:class:`~repro.cpu.result.SimulationResult`.

This module gives every counter a stable dotted name and exports the
whole hierarchy into ``SimulationResult.metrics``, which serializes
through :mod:`repro.engine.serialize` and therefore rides the result
store, crosses worker-process boundaries bit-identically, and is
queryable after the fact with ``python -m repro metrics``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.observability import trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpu.result import SimulationResult
    from repro.memory.hierarchy import MemorySystem


class Counter:
    """A named monotonic counter: it can only ever grow."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot go backwards (add {amount})"
            )
        self.value += amount

    def set(self, value: int) -> None:
        """Snapshot-style assignment; still rejects negative values."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot be negative: {value}")
        self.value = value


class Timer:
    """A named wall-clock accumulator (``with timer: ...``)."""

    __slots__ = ("name", "seconds", "entries", "_started")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.entries = 0
        self._started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None, "timer exited without entering"
        self.seconds += time.perf_counter() - self._started
        self.entries += 1
        self._started = None


class MetricsRegistry:
    """Named counters and timers under one hierarchical namespace.

    Names are dot-separated paths (``memory.mshr.merged_misses``); the
    hierarchy is purely lexical, so exporting, filtering by prefix, and
    merging are all plain dict operations.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter at ``name``."""
        found = self._counters.get(name)
        if found is None:
            _validate_name(name)
            found = self._counters[name] = Counter(name)
        return found

    def timer(self, name: str) -> Timer:
        """Get or create the timer at ``name``."""
        found = self._timers.get(name)
        if found is None:
            _validate_name(name)
            found = self._timers[name] = Timer(name)
        return found

    def to_dict(self) -> dict[str, int | float]:
        """Flat ``{name: value}`` export, sorted by name.

        Counters export their integer value; timers export accumulated
        seconds under ``<name>.seconds`` (and entry counts under
        ``<name>.calls`` when nonzero), so the export is pure JSON
        scalars.
        """
        out: dict[str, int | float] = {
            name: counter.value for name, counter in self._counters.items()
        }
        for name, timer in self._timers.items():
            out[f"{name}.seconds"] = timer.seconds
            if timer.entries:
                out[f"{name}.calls"] = timer.entries
        return dict(sorted(out.items()))

    def subtree(self, prefix: str) -> dict[str, int | float]:
        """Exported metrics under ``prefix.`` (or the exact name)."""
        dotted = prefix + "."
        return {
            name: value
            for name, value in self.to_dict().items()
            if name == prefix or name.startswith(dotted)
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._timers)


def _validate_name(name: str) -> None:
    if not name or name.startswith(".") or name.endswith(".") or ".." in name:
        raise ValueError(f"bad metric name {name!r}: use dotted non-empty parts")


# ---------------------------------------------------------------------------
# Snapshot: component stat dataclasses -> one named hierarchy
# ---------------------------------------------------------------------------


def _snap(registry: MetricsRegistry, prefix: str, **values: int) -> None:
    for leaf, value in values.items():
        registry.counter(f"{prefix}.{leaf}").set(value)


def snapshot_memory_system(
    memory: "MemorySystem", registry: MetricsRegistry, prefix: str = "memory"
) -> None:
    """Export every live counter of a memory system into ``registry``."""
    from repro.memory.dram_cache import DramCacheBackside

    stats = memory.stats
    _snap(
        registry,
        prefix,
        loads=stats.loads,
        stores=stats.stores,
        delayed_hits=stats.delayed_hits,
        prefetches_issued=stats.prefetches_issued,
        load_latency_total=stats.load_latency_total,
    )
    _snap(
        registry,
        f"{prefix}.l1",
        load_hits=stats.l1_load_hits,
        load_misses=stats.l1_load_misses,
        store_hits=stats.l1_store_hits,
        store_misses=stats.l1_store_misses,
    )
    for level, count in stats.served_by.items():
        registry.counter(f"{prefix}.served_by.{level.name.lower()}").set(count)

    ports = memory.arbiter.stats
    _snap(
        registry,
        f"{prefix}.ports",
        requests=ports.requests,
        delayed=ports.delayed,
        wait_cycles=ports.wait_cycles,
        bank_conflicts=ports.bank_conflicts,
    )
    mshr = memory.mshrs.stats
    _snap(
        registry,
        f"{prefix}.mshr",
        primary_misses=mshr.primary_misses,
        merged_misses=mshr.merged_misses,
        full_stall_cycles=mshr.full_stall_cycles,
    )
    if memory.line_buffer is not None:
        lb = memory.line_buffer.stats
        _snap(
            registry,
            f"{prefix}.line_buffer",
            load_lookups=lb.load_lookups,
            load_hits=lb.load_hits,
            fills=lb.fills,
            store_updates=lb.store_updates,
            invalidations=lb.invalidations,
        )
    if memory.victim_cache is not None:
        victim = memory.victim_cache.stats
        _snap(
            registry,
            f"{prefix}.victim",
            probes=victim.probes,
            swap_hits=victim.swap_hits,
            fills=victim.fills,
        )

    backside = memory.backside
    if isinstance(backside, DramCacheBackside):
        dram = backside.stats
        _snap(
            registry,
            f"{prefix}.dram",
            hits=dram.dram_hits,
            misses=dram.dram_misses,
            bank_wait_cycles=dram.bank_wait_cycles,
        )
        _snap_bus(registry, f"{prefix}.bus.memory", backside.memory_bus)
    else:
        l2 = backside.stats
        _snap(
            registry,
            f"{prefix}.l2",
            line_requests=l2.l1_line_requests,
            hits=l2.l2_hits,
            misses=l2.l2_misses,
            writebacks_in=l2.writebacks,
            writebacks_out=l2.l2_writebacks,
        )
        _snap_bus(registry, f"{prefix}.bus.chip", backside.chip_bus)
        _snap_bus(registry, f"{prefix}.bus.memory", backside.memory_bus)


def _snap_bus(registry: MetricsRegistry, prefix: str, bus) -> None:
    _snap(
        registry,
        prefix,
        transfers=bus.stats.transfers,
        bytes_moved=bus.stats.bytes_moved,
        busy_cycles=bus.stats.busy_cycles,
        queue_cycles=bus.stats.queue_cycles,
    )


def snapshot_simulation(
    result: "SimulationResult", memory: "MemorySystem"
) -> dict[str, int | float]:
    """The full metrics export for one finished simulation.

    Called by the core at the end of ``run``; the returned flat dict is
    what lands in ``SimulationResult.metrics`` and is serialized by
    :func:`repro.engine.serialize.result_to_dict`.
    """
    registry = MetricsRegistry()
    _snap(
        registry,
        "cpu",
        instructions=result.instructions,
        cycles=result.cycles,
    )
    pipeline = result.pipeline
    _snap(
        registry,
        "cpu.pipeline",
        window_full_stalls=pipeline.window_full_stalls,
        lsq_full_stalls=pipeline.lsq_full_stalls,
        mispredict_stall_cycles=pipeline.mispredict_stall_cycles,
        store_forwards=pipeline.store_forwards,
    )
    _snap(
        registry,
        "cpu.branch",
        branches=result.branches.branches,
        mispredictions=result.branches.mispredictions,
    )
    snapshot_memory_system(memory, registry)
    out = registry.to_dict()
    if memory.attribution is not None:
        out.update(memory.attribution.to_metrics())
    tracer = trace._ACTIVE
    if tracer is not None and tracer.capacity > 0:
        # Recorded only when events were actually lost, so results are
        # serialization-identical with and without (non-overflowing)
        # tracing -- but a truncated trace is never silently truncated.
        # The per-point delta (not the sweep-cumulative total) is what
        # belongs on this point's metrics; capacity-0 counting tracers
        # retain nothing by design and are excluded.
        point_drops = tracer.note_point()
        if point_drops:
            out["trace.dropped_events"] = point_drops
    return dict(sorted(out.items()))
