"""The fast simulation backend: event-driven, result-identical.

Same machine, different bookkeeping.  Where the reference loop rescans
the whole 64-entry window every iteration (issue) and again on every
idle cycle (skip), this loop tracks readiness incrementally:

* **dependency counting** -- each fetched slot knows how many of its
  producers are still unissued (``pending``) and the latest completion
  among those already issued (``ready``); producers keep per-slot
  waiter lists, so an issue touches exactly its consumers;
* **ready heap / eligible list** -- dep-satisfied slots wait in a
  min-heap keyed by ready cycle; once ready they move to a seq-sorted
  eligible list, so the issue stage walks only genuinely issuable
  slots (in the same oldest-first order the reference scan produces);
* **completion heap** -- issued slots' completion cycles, lazily
  pruned at commit, make the idle-cycle jump O(log n) instead of a
  window scan, and generalize it: memory-wait, fetch-starved, and
  mispredict-stall states all resolve through the same three sources
  (completions, ready times, branch resume);
* **slot freelist** -- committed slots are reused instead of
  reallocated (guarding the one case where a committed slot is still
  referenced: a mispredicted branch whose redirect penalty is still
  counting down);
* **precomputed workload artifacts** -- the functional-warmup stream
  and the timing trace come from :mod:`repro.kernel.tracecache`, so
  thirty organizations of one benchmark generate them once.

Every architectural decision -- which slots issue on which cycle, in
which order memory is accessed, when stats reset, when the watchdog
and audits run, which trace events fire -- is made identically to
:mod:`repro.kernel.reference`.  The stall counters even preserve the
reference loop's *iteration* semantics (they count loop iterations,
not cycles), which is why the advance/skip structure mirrors it
exactly.  ``tests/engine/test_backends.py`` and the golden suite hold
the two backends bit-identical.

When the chaos harness has patched the core's ``_skip_to_next_event``
or ``_issue`` (per-instance monkeypatching), this backend defers to
the reference loop, which routes through those hooks.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Iterator

from repro.cpu.isa import (
    ADDRESS_CALC_CYCLES,
    FU_CLASS,
    R10000_LATENCY,
    MicroOp,
    Op,
)
from repro.cpu.result import PipelineStats, SimulationResult
from repro.kernel import reference, tracecache
from repro.memory.dram_cache import DramCacheBackside
from repro.observability import events as obs
from repro.observability import telemetry as obs_telemetry
from repro.observability import trace as obs_trace
from repro.observability.metrics import snapshot_simulation
from repro.robustness import deadline as rb_deadline
from repro.robustness.dump import dump_window
from repro.robustness.errors import SimulationInvariantError
from repro.robustness.watchdog import CommitWatchdog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.experiment import ExperimentSettings
    from repro.cpu.core import OutOfOrderCore
    from repro.memory.hierarchy import MemorySystem
    from repro.workloads.generator import WorkloadSpec


# Enum members resolved once: ``Op.X`` at a call site goes through the
# enum class descriptor protocol, which profiles at millions of calls
# per sweep inside the cycle loop.
_LOAD = Op.LOAD
_STORE = Op.STORE
_BRANCH = Op.BRANCH

#: ``member.name`` resolves through a DynamicClassAttribute descriptor
#: (a Python-level call); the commit stage needs it once per
#: instruction, so read it from a plain dict instead.
_OP_NAMES = {op: op.name for op in Op}


class _FastSlot:
    """One instruction in flight, plus incremental readiness state."""

    __slots__ = ("seq", "mop", "complete", "issued", "pending", "ready")

    def __init__(self, seq: int, mop: MicroOp):
        self.seq = seq
        self.mop = mop
        self.complete = 0  # valid only when issued
        self.issued = False
        self.pending = 0  # unissued producers
        self.ready = 0  # max completion among issued producers


class FastBackend:
    """Event-driven loop + precomputed workload artifacts."""

    name = "fast"

    def prepare(
        self,
        spec: "WorkloadSpec",
        memory: "MemorySystem",
        settings: "ExperimentSettings",
    ) -> Iterator[MicroOp]:
        artifacts = tracecache.artifacts_for(
            spec, settings.seed, settings.functional_warmup
        )
        if settings.functional_warmup > 0:
            # Warm-up state is a pure function of (stream, functional
            # geometry): organizations differing only in timing
            # parameters share it, so restore a snapshot when one
            # exists.  Only a cold memory system may use the memo --
            # warming replays *into* existing state, so a reused system
            # takes the replay path, same as reference.
            key = _functional_key(memory)
            state = None if key is None else artifacts.warm_states.get(key)
            if state is not None:
                _restore_warm_state(memory, state)
            else:
                memory.prefill_backside(
                    artifacts.footprint_lines(memory.line_bytes)
                )
                warm_memory(memory, artifacts.warm_references())
                if key is not None:
                    artifacts.warm_states[key] = _snapshot_warm_state(memory)
        return artifacts.timing_stream()

    def run(
        self,
        core: "OutOfOrderCore",
        trace: Iterator[MicroOp],
        max_instructions: int,
        *,
        warmup_instructions: int = 0,
    ) -> SimulationResult:
        # Per-instance hooks (chaos directives, tests) only exist on the
        # reference path; honor them by taking it.
        instance = core.__dict__
        if "_skip_to_next_event" in instance or "_issue" in instance:
            result = reference.run_loop(
                core,
                trace,
                max_instructions,
                warmup_instructions=warmup_instructions,
            )
            result.backend = self.name
            return result
        result = run_loop(
            core,
            trace,
            max_instructions,
            warmup_instructions=warmup_instructions,
        )
        result.backend = self.name
        return result


def _back_cache(memory: "MemorySystem"):
    """The backside structure functional warm-up fills (L2 or DRAM array)."""
    backside = memory.backside
    if isinstance(backside, DramCacheBackside):
        return backside.dram
    return backside.l2


def _functional_key(memory: "MemorySystem") -> tuple | None:
    """Geometry fingerprint of everything warm-up state depends on.

    Warm-up (:meth:`MemorySystem.prefill_backside` plus
    :func:`warm_memory`) mutates exactly three structures -- the L1,
    the line buffer, and the backside cache -- and its decisions read
    only their geometries, never timing parameters.  Two memory systems
    with equal keys therefore warm to identical state.  Returns
    ``None`` when the system is not cold (the memo would hide whatever
    state is already there).
    """
    l1 = memory.l1
    back = _back_cache(memory)
    if len(l1) or len(back):
        return None
    line_buffer = memory.line_buffer
    return (
        l1.size_bytes,
        l1.associativity,
        l1.line_bytes,
        None if line_buffer is None else line_buffer._cache.entries,
        isinstance(memory.backside, DramCacheBackside),
        back.size_bytes,
        back.associativity,
        back.line_bytes,
    )


def _snapshot_warm_state(memory: "MemorySystem") -> tuple:
    line_buffer = memory.line_buffer
    return (
        memory.l1.snapshot_state(),
        None if line_buffer is None else line_buffer._cache.snapshot_state(),
        _back_cache(memory).snapshot_state(),
    )


def _restore_warm_state(memory: "MemorySystem", state: tuple) -> None:
    l1_state, lb_state, back_state = state
    memory.l1.restore_state(l1_state)
    if lb_state is not None:
        memory.line_buffer._cache.restore_state(lb_state)
    _back_cache(memory).restore_state(back_state)


def warm_memory(memory: "MemorySystem", packed_refs) -> None:
    """Replay a packed reference stream into the cache state.

    State-identical to :meth:`MemorySystem.warm` over the equivalent
    ``(is_store, address)`` list, with two mechanical speedups: bound
    methods hoisted out of the loop, and same-line runs collapsed.  A
    repeat reference to the line just touched can only change state
    through the first store of the run (the L1 dirty bit) and, when a
    line buffer exists, the first load of the run (the buffered copy);
    every other repeat is an MRU touch of an already-MRU entry in both
    structures, so skipping it leaves identical state.
    """
    l1 = memory.l1
    lookup = l1.lookup
    l1_fill = l1.fill
    line_buffer = memory.line_buffer
    lb_fill = None if line_buffer is None else line_buffer._cache.fill
    lb_invalidate = (
        None if line_buffer is None else line_buffer._cache.invalidate
    )
    backside = memory.backside
    if isinstance(backside, DramCacheBackside):
        back_fill = backside.dram.fill
        back_shift = 0
    else:
        back_fill = backside.l2.fill
        back_shift = backside._line_shift
    line_shift = memory._line_shift + 1  # bit 0 of a packed ref = is_store
    prev_line = -1
    run_loaded = False  # a load of prev_line already refreshed the LB
    run_stored = False  # a store of prev_line already marked it dirty
    for packed in packed_refs:
        line = packed >> line_shift
        is_store = packed & 1
        if line == prev_line:
            if is_store:
                if not run_stored:
                    lookup(line, write=True)
                    run_stored = True
            elif not run_loaded and lb_fill is not None:
                lb_fill(line)
                run_loaded = True
            continue
        prev_line = line
        if is_store:
            run_stored = True
            run_loaded = False
            if lookup(line, write=True):
                continue
        else:
            run_stored = False
            run_loaded = lb_fill is not None
            if lb_fill is not None:
                lb_fill(line)
            if lookup(line):
                continue
        back_fill(line >> back_shift)
        victim = l1_fill(line, dirty=bool(is_store))
        if victim is not None and lb_invalidate is not None:
            lb_invalidate(victim.line)


def run_loop(
    core: "OutOfOrderCore",
    trace: Iterator[MicroOp],
    max_instructions: int,
    *,
    warmup_instructions: int = 0,
) -> SimulationResult:
    """The event-driven cycle loop (see module docstring)."""
    from repro.cpu.core import _NOT_ISSUED, _RING, _RING_MASK

    if max_instructions <= 0:
        raise ValueError("max_instructions must be positive")
    cfg = core.config
    memory = core.memory
    mshrs = memory.mshrs
    predictor_observe = core.predictor.observe
    # Safe to bypass the ``core._issue`` indirection: the caller already
    # verified no per-instance patch exists (FastBackend.run falls back
    # to the reference loop in that case).
    issue_one = reference.issue_slot
    commit_width = cfg.commit_width
    issue_width = cfg.issue_width
    fetch_width = cfg.fetch_width
    window_size = cfg.window_size
    lsq_size = cfg.lsq_size
    redirect_penalty = cfg.mispredict_redirect_penalty
    audit_interval = cfg.audit_interval_commits
    fu_limits = cfg.fu_limits
    store_forwarding = cfg.store_forwarding
    line_of = memory.line_of
    memory_load = memory.load
    memory_store = memory.store
    alu_latency = R10000_LATENCY
    op_names = _OP_NAMES

    # A TapeReplay exposes its tape for direct indexing: one list access
    # per fetched micro-op instead of a generator-frame resume.  The
    # cursor is written back on exit so the iterator stays resumable.
    tape = tape_extend = None
    tape_index = 0
    if type(trace) is tracecache.TapeReplay:
        tape = trace.tape
        tape_extend = trace.extend
        tape_index = trace.index

    window: "deque[_FastSlot]" = deque()
    comp = [0] * _RING  # completion cycle by seq; pre-trace state is ready
    consumers: "list[list[_FastSlot] | None]" = [None] * _RING
    ready_heap: list = []  # (ready, seq, slot): deps met, waiting on time
    eligible: list = []  # [(seq, slot)] issuable now, oldest first
    completion_heap: list = []  # (complete, seq) of issued, uncommitted
    freelist: "list[_FastSlot]" = []
    pipeline = PipelineStats()
    op_counts: dict[str, int] = {}
    store_lines: dict[int, tuple[int, int]] = {}  # line -> (seq, ready)

    cycle = 0
    fetched = 0
    committed = 0
    expected_seq = 0
    commits_since_audit = 0
    lsq_used = 0
    wd_limit = cfg.watchdog_stall_cycles
    wd_last = 0  # mirrors watchdog._last_progress_cycle, loop-locally
    watchdog = CommitWatchdog(wd_limit) if wd_limit else None
    held: MicroOp | None = None  # fetched but blocked on a full LSQ
    blocking_branch: "_FastSlot | None" = None
    trace_done = False
    measuring = warmup_instructions == 0
    measure_start_cycle = 0
    measure_start_committed = 0
    target = warmup_instructions + max_instructions

    # Hoisted per run; tracing/telemetry cannot toggle mid-simulation.
    # Per-kind flags skip even the event-dict construction for kinds
    # the active tracer filters out.
    tracer = obs_trace._ACTIVE
    beacon = obs_telemetry._BEACON
    deadline = rb_deadline._DEADLINE
    trace_commit = tracer is not None and tracer.wants(obs.CPU_COMMIT)
    trace_fetch = tracer is not None and tracer.wants(obs.CPU_FETCH)
    trace_flush = tracer is not None and tracer.wants(obs.CPU_FLUSH)
    sampler = memory.counters
    if sampler is not None and measuring:
        # No warmup: the measured region starts at cycle 0.  Sampling
        # happens at committed-instruction boundaries, so the series is
        # bit-identical to the reference loop's; idle-cycle jumps below
        # land inside the enclosing interval's cycle delta for free.
        sampler.begin(cycle, committed, pipeline)

    while committed < target and not (trace_done and not window):
        if deadline is not None:
            deadline.tick(cycle)
        # Inlined CommitWatchdog.check guard: the mirror ``wd_last``
        # tracks its ``_last_progress_cycle`` exactly, so ``check``
        # (which then raises) is only entered when it would raise.
        if wd_limit and window and cycle - wd_last > wd_limit:
            watchdog.check(cycle, window, mshrs)

        # ---------------- commit ----------------
        n_commit = 0
        while window and n_commit < commit_width:
            slot = window[0]
            if not slot.issued or slot.complete > cycle:
                break
            window.popleft()
            if slot.seq != expected_seq:
                raise SimulationInvariantError(
                    f"out-of-order commit: window head has seq {slot.seq}, "
                    f"expected {expected_seq} at cycle {cycle}",
                    {"instruction window": dump_window(window, cycle)},
                )
            expected_seq += 1
            mop = slot.mop
            op = mop.op
            if trace_commit:
                tracer.capture(
                    obs.CPU_COMMIT, cycle, {"seq": slot.seq, "op": op.name}
                )
            if op is _LOAD or op is _STORE:
                lsq_used -= 1
                if lsq_used < 0:
                    raise SimulationInvariantError(
                        f"load/store queue underflow committing seq "
                        f"{slot.seq} at cycle {cycle}",
                        {"instruction window": dump_window(window, cycle)},
                    )
                if op is _STORE:
                    # Drain after commit, lowest priority (next cycle).
                    memory_store(mop.address, cycle + 1)
                    line = line_of(mop.address)
                    entry = store_lines.get(line)
                    if entry is not None and entry[0] == slot.seq:
                        del store_lines[line]
            if measuring:
                name = op_names[op]
                op_counts[name] = op_counts.get(name, 0) + 1
            committed += 1
            n_commit += 1
            if slot is not blocking_branch:
                # A mispredicted branch can commit while its redirect
                # penalty is still stalling fetch; its slot stays live
                # until the resume check below releases it.
                freelist.append(slot)
            if committed == warmup_instructions and not measuring:
                measuring = True
                measure_start_cycle = cycle
                measure_start_committed = committed
                core._reset_stats()
                pipeline = PipelineStats()
                if sampler is not None:
                    sampler.begin(cycle, committed, pipeline)
            if sampler is not None and committed == sampler.next_at:
                sampler.take(cycle, committed, pipeline)
            if committed >= target:
                break
        if n_commit:
            if watchdog is not None:
                watchdog.progress(cycle)
                wd_last = cycle
            if beacon is not None:
                beacon.progress(committed, cycle)
            commits_since_audit += n_commit
            if audit_interval and commits_since_audit >= audit_interval:
                commits_since_audit = 0
                memory.audit(cycle)

        # ---------------- issue ----------------
        while ready_heap and ready_heap[0][0] <= cycle:
            entry = heappop(ready_heap)
            insort(eligible, (entry[1], entry[2]))
        n_issue = 0
        if eligible:
            if fu_limits is None:
                take = len(eligible)
                if take > issue_width:
                    take = issue_width
                for index in range(take):
                    seq, slot = eligible[index]
                    if tracer is not None:
                        issue_one(
                            core, slot, cycle, store_lines, pipeline, tracer
                        )
                        when = slot.complete
                    else:
                        # Inline of reference.issue_slot (the canonical
                        # version) minus its tracer branches; the
                        # parity suite and golden snapshots pin the two
                        # paths identical.
                        mop = slot.mop
                        op = mop.op
                        if op is _LOAD:
                            address_ready = cycle + ADDRESS_CALC_CYCLES
                            entry = (
                                store_lines.get(line_of(mop.address))
                                if store_forwarding
                                else None
                            )
                            if entry is not None:
                                pipeline.store_forwards += 1
                                when = address_ready + 1
                                forwarded = entry[1] + 1
                                if forwarded > when:
                                    when = forwarded
                            else:
                                when = memory_load(
                                    mop.address, address_ready
                                ).completion_cycle
                        elif op is _STORE:
                            when = cycle + ADDRESS_CALC_CYCLES
                            if store_forwarding:
                                store_lines[line_of(mop.address)] = (seq, when)
                        else:
                            when = cycle + alu_latency[op]
                        slot.complete = when
                        slot.issued = True
                    masked = seq & _RING_MASK
                    comp[masked] = when
                    heappush(completion_heap, (when, seq))
                    waiters = consumers[masked]
                    if waiters is not None:
                        consumers[masked] = None
                        for waiter in waiters:
                            if when > waiter.ready:
                                waiter.ready = when
                            waiter.pending -= 1
                            if not waiter.pending:
                                heappush(
                                    ready_heap,
                                    (waiter.ready, waiter.seq, waiter),
                                )
                del eligible[:take]
                n_issue = take
            else:
                # Structural hazards: same skip-but-stay-eligible
                # behavior as the reference scan, oldest first.
                fu_free = dict(fu_limits)
                remaining: list = []
                for entry in eligible:
                    if n_issue >= issue_width:
                        remaining.append(entry)
                        continue
                    seq, slot = entry
                    unit = FU_CLASS[slot.mop.op]
                    if fu_free.get(unit, 0) <= 0:
                        remaining.append(entry)
                        continue
                    issue_one(core, slot, cycle, store_lines, pipeline, tracer)
                    when = slot.complete
                    masked = seq & _RING_MASK
                    comp[masked] = when
                    heappush(completion_heap, (when, seq))
                    waiters = consumers[masked]
                    if waiters is not None:
                        consumers[masked] = None
                        for waiter in waiters:
                            if when > waiter.ready:
                                waiter.ready = when
                            waiter.pending -= 1
                            if not waiter.pending:
                                heappush(
                                    ready_heap,
                                    (waiter.ready, waiter.seq, waiter),
                                )
                    fu_free[unit] -= 1
                    n_issue += 1
                eligible = remaining

        # ---------------- fetch ----------------
        n_fetch = 0
        if blocking_branch is not None:
            if blocking_branch.issued:
                resume = blocking_branch.complete + redirect_penalty
                if cycle >= resume:
                    if trace_flush:
                        tracer.capture(
                            obs.CPU_FLUSH,
                            cycle,
                            {"seq": blocking_branch.seq, "resume": resume},
                        )
                    if blocking_branch.seq < expected_seq:
                        # Already committed; recyclable now that the
                        # redirect stall is over.
                        freelist.append(blocking_branch)
                    blocking_branch = None
            if blocking_branch is not None and measuring:
                pipeline.mispredict_stall_cycles += 1
        if blocking_branch is None and not trace_done:
            while n_fetch < fetch_width:
                if len(window) >= window_size:
                    if measuring:
                        pipeline.window_full_stalls += 1
                    break
                if held is not None:
                    mop, held = held, None
                elif tape is not None:
                    if tape_index < len(tape) or tape_extend():
                        mop = tape[tape_index]
                        tape_index += 1
                    else:
                        mop = None
                else:
                    mop = next(trace, None)
                if mop is None:
                    trace_done = True
                    break
                op = mop.op
                is_mem = op is _LOAD or op is _STORE
                if is_mem and lsq_used >= lsq_size:
                    if measuring:
                        pipeline.lsq_full_stalls += 1
                    held = mop  # retry next cycle
                    break
                seq = fetched
                if freelist:
                    slot = freelist.pop()
                    slot.seq = seq
                    slot.mop = mop
                    slot.complete = 0
                    slot.issued = False
                else:
                    slot = _FastSlot(seq, mop)
                masked = seq & _RING_MASK
                comp[masked] = _NOT_ISSUED
                consumers[masked] = None
                window.append(slot)
                fetched += 1
                n_fetch += 1
                if trace_fetch:
                    tracer.capture(
                        obs.CPU_FETCH, cycle, {"seq": seq, "op": op.name}
                    )
                if is_mem:
                    lsq_used += 1
                    if lsq_used > lsq_size:
                        raise SimulationInvariantError(
                            f"load/store queue overflow ({lsq_used} > "
                            f"{lsq_size}) fetching seq {slot.seq} "
                            f"at cycle {cycle}",
                            {"instruction window": dump_window(window, cycle)},
                        )
                # Register dependencies: count unissued producers, take
                # the max completion among issued ones.
                pending = 0
                ready = 0
                for distance in mop.srcs:
                    producer = seq - distance
                    if producer >= 0:
                        pmasked = producer & _RING_MASK
                        when = comp[pmasked]
                        if when < 0:
                            pending += 1
                            waiters = consumers[pmasked]
                            if waiters is None:
                                consumers[pmasked] = [slot]
                            else:
                                waiters.append(slot)
                        elif when > ready:
                            ready = when
                slot.pending = pending
                slot.ready = ready
                if not pending:
                    if ready <= cycle:
                        # Already issuable at the next issue stage; the
                        # ready heap would pop it straight back out, and
                        # a fresh fetch always carries the highest seq,
                        # so appending keeps ``eligible`` seq-sorted.
                        eligible.append((seq, slot))
                    else:
                        heappush(ready_heap, (ready, seq, slot))
                if op is _BRANCH:
                    if not predictor_observe(mop.pc, mop.taken):
                        blocking_branch = slot
                        break

        # ---------------- advance time ----------------
        if n_commit or n_issue or n_fetch:
            cycle += 1
        else:
            # Identical horizon to the reference window scan, from three
            # incremental sources: the earliest in-flight completion,
            # the earliest dep-satisfied ready time (eligible slots are
            # ready *now*, so they pin the horizon to cycle + 1), and
            # the mispredicted branch's fetch-resume cycle.
            while completion_heap and completion_heap[0][1] < expected_seq:
                heappop(completion_heap)
            horizon = completion_heap[0][0] if completion_heap else None
            if eligible and (horizon is None or cycle + 1 < horizon):
                horizon = cycle + 1
            if ready_heap:
                candidate = ready_heap[0][0]
                if horizon is None or candidate < horizon:
                    horizon = candidate
            if blocking_branch is not None and blocking_branch.issued:
                resume = blocking_branch.complete + redirect_penalty
                if horizon is None or resume < horizon:
                    horizon = resume
            cycle = cycle + 1 if horizon is None or horizon <= cycle else horizon

    if tape is not None:
        trace.index = tape_index

    # Final structural audit: catches corruption that accumulated
    # after the last periodic check (or any at all on short runs).
    memory.audit(cycle)

    counters_series = None
    if sampler is not None:
        sampler.finish(cycle, committed, pipeline)
        counters_series = sampler.series()

    result = SimulationResult(
        instructions=committed - measure_start_committed,
        cycles=max(1, cycle - measure_start_cycle),
        op_counts=op_counts,
        pipeline=pipeline,
        branches=core.predictor.stats,
        memory=memory.stats,
        backend=FastBackend.name,
        counters=counters_series,
    )
    result.metrics = snapshot_simulation(result, memory)
    return result
