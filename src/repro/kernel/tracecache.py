"""Precomputed workload artifacts shared across design points.

Profiling the headline sweep shows ~70% of every design point's wall
clock is spent *regenerating the same instruction stream*: all 30
organizations of one benchmark consume an identical warm-up reference
stream and an identical timing trace, because neither depends on the
cache organization -- only on ``(spec, seed, functional_warmup)``.

The fast backend therefore generates each stream once and replays it:

* ``footprint_lines`` per line size (pure function of the spec/seed);
* the functional-warmup reference stream, packed two-per-word into an
  ``array('Q')`` (address << 1 | is_store) -- ~10x smaller than the
  equivalent list of tuples;
* the timing-phase micro-op stream as a lazily extended *tape*: each
  replay iterator walks the shared list and only the first (longest)
  consumer actually runs the generator.

Bit-identity with the reference backend is by construction: the cached
artifacts are produced by the exact same generator calls, in the exact
same order (``footprint_lines`` draws no randomness; the warm-up
stream is consumed before the timing stream starts, advancing the RNG
exactly as :meth:`ReferenceBackend.prepare` does), and replays reuse
the very same :class:`~repro.cpu.isa.MicroOp` objects.

The cache is per-process (workers build their own) and LRU-bounded:
figure plans group design points by benchmark, so a handful of entries
covers a whole sweep without holding every benchmark's streams alive.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Iterator

from repro.cpu.isa import MicroOp
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

#: LRU capacity.  Figure sweeps iterate *organization*-major, so every
#: benchmark in the suite is revisited once per organization; capacity
#: below the benchmark catalog size (nine) thrashes -- the headline
#: sweep regenerated every stream ~4x at the old size of six.
CACHE_ENTRIES = 12


class WorkloadArtifacts:
    """Replayable streams of one ``(spec, seed, functional_warmup)``."""

    def __init__(self, spec: WorkloadSpec, seed: int, functional_warmup: int):
        self.spec = spec
        self.seed = seed
        self.functional_warmup = functional_warmup
        self._generator = WorkloadGenerator(spec, seed)
        self._footprints: dict[int, list[int]] = {}
        self._warm_refs: array | None = None
        self._tape: list[MicroOp] = []
        self._timing_source: Iterator[MicroOp] | None = None
        self._timing_done = False
        #: Post-warm-up memory snapshots keyed by functional geometry
        #: (:func:`repro.kernel.fast._functional_key`): organizations
        #: that differ only in timing parameters (ports, banks, hit
        #: cycles) share one warmed state, restored by copy instead of
        #: replaying the reference stream.
        self.warm_states: dict[tuple, tuple] = {}

    def footprint_lines(self, line_bytes: int) -> list[int]:
        """Cached :meth:`WorkloadGenerator.footprint_lines` (no RNG)."""
        lines = self._footprints.get(line_bytes)
        if lines is None:
            lines = self._generator.footprint_lines(line_bytes)
            self._footprints[line_bytes] = lines
        return lines

    def warm_references(self) -> array:
        """The packed functional-warmup reference stream."""
        if self._warm_refs is None:
            if self._timing_source is not None:
                raise RuntimeError(
                    "timing stream already started; the warm-up stream "
                    "must be generated first to keep RNG order identical"
                )
            self._warm_refs = self._generator.packed_references(
                self.functional_warmup
            )
        return self._warm_refs

    def timing_stream(self) -> "TapeReplay":
        """A fresh iterator over the (shared, lazily grown) timing tape."""
        return TapeReplay(self)

    def _extend(self) -> bool:
        """Pull one more micro-op from the live generator onto the tape."""
        if self._timing_done:
            return False
        if self._timing_source is None:
            if self.functional_warmup > 0:
                # Consume the warm-up prefix first so the timing stream
                # starts from the same RNG state as the reference path.
                self.warm_references()
            self._timing_source = self._generator.instructions()
        try:
            self._tape.append(next(self._timing_source))
        except StopIteration:  # pragma: no cover - streams are infinite
            self._timing_done = True
            return False
        return True


class TapeReplay:
    """Iterator over one artifacts tape, with direct-index access.

    A generator resume costs a full frame switch per micro-op; the fast
    loop instead reads ``tape``/``extend``/``index`` directly (one list
    index per fetch) and writes ``index`` back when it stops.
    ``__next__`` keeps this a plain iterator for every other consumer.
    """

    __slots__ = ("tape", "extend", "index")

    def __init__(self, artifacts: WorkloadArtifacts):
        self.tape = artifacts._tape
        self.extend = artifacts._extend
        self.index = 0

    def __iter__(self) -> "TapeReplay":
        return self

    def __next__(self) -> MicroOp:
        tape = self.tape
        index = self.index
        if index == len(tape) and not self.extend():
            raise StopIteration
        self.index = index + 1
        return tape[index]


_CACHE: "OrderedDict[tuple, WorkloadArtifacts]" = OrderedDict()


def artifacts_for(
    spec: WorkloadSpec, seed: int, functional_warmup: int
) -> WorkloadArtifacts:
    """The process-wide cached artifacts for one stream identity."""
    key = (spec, seed, functional_warmup)
    artifacts = _CACHE.get(key)
    if artifacts is None:
        artifacts = WorkloadArtifacts(spec, seed, functional_warmup)
        _CACHE[key] = artifacts
    else:
        _CACHE.move_to_end(key)
    while len(_CACHE) > CACHE_ENTRIES:
        _CACHE.popitem(last=False)
    return artifacts


def clear() -> None:
    """Drop every cached artifact (tests and memory-pressure hooks)."""
    _CACHE.clear()
