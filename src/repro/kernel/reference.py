"""The reference simulation backend: the original cycle loop, verbatim.

This module is the old body of :meth:`OutOfOrderCore.run` (plus its
``_issue`` / ``_skip_to_next_event`` helpers) moved behind the
:class:`~repro.kernel.SimulationBackend` seam.  It is deliberately
*not* optimized: the golden suite pins its output, and the fast
backend's correctness bar is bit-identical agreement with this code.

The loop calls ``core._issue`` and ``core._skip_to_next_event`` through
the core instance, so per-instance patches (the chaos harness's "hang"
directive replaces ``_skip_to_next_event``) keep working unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator

from repro.cpu.isa import ADDRESS_CALC_CYCLES, FU_CLASS, MicroOp, Op
from repro.cpu.result import PipelineStats, SimulationResult
from repro.observability import events as obs
from repro.observability import telemetry as obs_telemetry
from repro.observability import trace as obs_trace
from repro.observability.metrics import snapshot_simulation
from repro.robustness import deadline as rb_deadline
from repro.robustness.dump import dump_window
from repro.robustness.errors import SimulationInvariantError
from repro.robustness.watchdog import CommitWatchdog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.experiment import ExperimentSettings
    from repro.cpu.core import OutOfOrderCore, _Slot
    from repro.memory.hierarchy import MemorySystem
    from repro.workloads.generator import WorkloadSpec


class ReferenceBackend:
    """The original pure-Python simulation path."""

    name = "reference"

    def prepare(
        self,
        spec: "WorkloadSpec",
        memory: "MemorySystem",
        settings: "ExperimentSettings",
    ) -> Iterator[MicroOp]:
        """Functional warm-up exactly as ``_simulate`` always did it."""
        from repro.workloads.generator import WorkloadGenerator

        generator = WorkloadGenerator(spec, settings.seed)
        if settings.functional_warmup > 0:
            # Steady state of a 100M+ instruction run: the second level
            # holds the footprint, the first level reflects recent
            # traffic.
            memory.prefill_backside(generator.footprint_lines(memory.line_bytes))
            memory.warm(generator.memory_references(settings.functional_warmup))
        return generator.instructions()

    def run(
        self,
        core: "OutOfOrderCore",
        trace: Iterator[MicroOp],
        max_instructions: int,
        *,
        warmup_instructions: int = 0,
    ) -> SimulationResult:
        return run_loop(
            core,
            trace,
            max_instructions,
            warmup_instructions=warmup_instructions,
        )


def run_loop(
    core: "OutOfOrderCore",
    trace: Iterator[MicroOp],
    max_instructions: int,
    *,
    warmup_instructions: int = 0,
) -> SimulationResult:
    """Simulate until ``max_instructions`` commit (post-warmup).

    ``warmup_instructions`` are executed first to warm the caches and
    predictor; statistics are reset when they have committed, so the
    reported IPC covers only the measured region (the paper likewise
    simulates "an interesting portion" of each benchmark).
    """
    from repro.cpu.core import _NOT_ISSUED, _RING, _RING_MASK, _Slot

    if max_instructions <= 0:
        raise ValueError("max_instructions must be positive")
    cfg = core.config
    window: "deque[_Slot]" = deque()
    comp = [0] * _RING  # completion cycle by seq; pre-trace state is ready
    pipeline = PipelineStats()
    op_counts: dict[str, int] = {}
    store_lines: dict[int, tuple[int, int]] = {}  # line -> (seq, ready)

    cycle = 0
    fetched = 0
    committed = 0
    expected_seq = 0
    commits_since_audit = 0
    lsq_used = 0
    watchdog = (
        CommitWatchdog(cfg.watchdog_stall_cycles)
        if cfg.watchdog_stall_cycles
        else None
    )
    held: MicroOp | None = None  # fetched but blocked on a full LSQ
    blocking_branch: "_Slot | None" = None
    trace_done = False
    measuring = warmup_instructions == 0
    measure_start_cycle = 0
    measure_start_committed = 0
    target = warmup_instructions + max_instructions
    # Hoisted once per run: tracing/telemetry cannot toggle
    # mid-simulation, so the hot loops below pay a single local
    # ``is None`` test.
    tracer = obs_trace._ACTIVE
    beacon = obs_telemetry._BEACON
    deadline = rb_deadline._DEADLINE
    sampler = core.memory.counters
    if sampler is not None and measuring:
        # No warmup: the measured region starts at cycle 0.
        sampler.begin(cycle, committed, pipeline)

    while committed < target and not (trace_done and not window):
        # Wall-clock budget first: even a loop the cycle-domain
        # watchdog considers "making progress" must end when the
        # point's deadline expires.  Off by default; ``tick`` masks
        # the clock read when on.
        if deadline is not None:
            deadline.tick(cycle)
        # Check for deadlock *before* commit: a stuck completion at a
        # far-future cycle would otherwise be reached by the
        # time-jump below and "commit" via time travel.
        if watchdog is not None and window:
            watchdog.check(cycle, window, core.memory.mshrs)

        # ---------------- commit ----------------
        n_commit = 0
        while (
            window
            and n_commit < cfg.commit_width
            and window[0].issued
            and window[0].complete <= cycle
        ):
            slot = window.popleft()
            if slot.seq != expected_seq:
                raise SimulationInvariantError(
                    f"out-of-order commit: window head has seq {slot.seq}, "
                    f"expected {expected_seq} at cycle {cycle}",
                    {"instruction window": dump_window(window, cycle)},
                )
            expected_seq += 1
            mop = slot.mop
            if tracer is not None:
                tracer.capture(
                    obs.CPU_COMMIT, cycle, {"seq": slot.seq, "op": mop.op.name}
                )
            if mop.is_memory:
                lsq_used -= 1
                if lsq_used < 0:
                    raise SimulationInvariantError(
                        f"load/store queue underflow committing seq "
                        f"{slot.seq} at cycle {cycle}",
                        {"instruction window": dump_window(window, cycle)},
                    )
                if mop.op is Op.STORE:
                    # Drain after commit, lowest priority (next cycle).
                    core.memory.store(mop.address, cycle + 1)
                    entry = store_lines.get(core.memory.line_of(mop.address))
                    if entry is not None and entry[0] == slot.seq:
                        del store_lines[core.memory.line_of(mop.address)]
            if measuring:
                name = mop.op.name
                op_counts[name] = op_counts.get(name, 0) + 1
            committed += 1
            n_commit += 1
            if committed == warmup_instructions and not measuring:
                measuring = True
                measure_start_cycle = cycle
                measure_start_committed = committed
                core._reset_stats()
                pipeline = PipelineStats()
                if sampler is not None:
                    sampler.begin(cycle, committed, pipeline)
            if sampler is not None and committed == sampler.next_at:
                sampler.take(cycle, committed, pipeline)
            if committed >= target:
                break
        if n_commit:
            if watchdog is not None:
                watchdog.progress(cycle)
            if beacon is not None:
                beacon.progress(committed, cycle)
            commits_since_audit += n_commit
            if (
                cfg.audit_interval_commits
                and commits_since_audit >= cfg.audit_interval_commits
            ):
                commits_since_audit = 0
                core.memory.audit(cycle)

        # ---------------- issue ----------------
        n_issue = 0
        fu_free = dict(cfg.fu_limits) if cfg.fu_limits is not None else None
        for slot in window:
            if n_issue >= cfg.issue_width:
                break
            if slot.issued:
                continue
            if fu_free is not None:
                unit = FU_CLASS[slot.mop.op]
                if fu_free.get(unit, 0) <= 0:
                    continue  # structural hazard: no unit this cycle
            srcs = slot.mop.srcs
            ready = 0
            ok = True
            seq = slot.seq
            for distance in srcs:
                producer = seq - distance
                if producer >= 0:
                    when = comp[producer & _RING_MASK]
                    if when < 0:
                        ok = False
                        break
                    if when > ready:
                        ready = when
            if not ok or ready > cycle:
                continue
            core._issue(slot, cycle, store_lines, pipeline, tracer)
            comp[seq & _RING_MASK] = slot.complete
            n_issue += 1
            if fu_free is not None:
                fu_free[FU_CLASS[slot.mop.op]] -= 1

        # ---------------- fetch ----------------
        n_fetch = 0
        if blocking_branch is not None:
            if blocking_branch.issued:
                resume = (
                    blocking_branch.complete + cfg.mispredict_redirect_penalty
                )
                if cycle >= resume:
                    if tracer is not None:
                        tracer.capture(
                            obs.CPU_FLUSH,
                            cycle,
                            {"seq": blocking_branch.seq, "resume": resume},
                        )
                    blocking_branch = None
            if blocking_branch is not None and measuring:
                pipeline.mispredict_stall_cycles += 1
        if blocking_branch is None and not trace_done:
            while n_fetch < cfg.fetch_width:
                if len(window) >= cfg.window_size:
                    if measuring:
                        pipeline.window_full_stalls += 1
                    break
                if held is not None:
                    mop, held = held, None
                else:
                    mop = next(trace, None)
                if mop is None:
                    trace_done = True
                    break
                if mop.is_memory and lsq_used >= cfg.lsq_size:
                    if measuring:
                        pipeline.lsq_full_stalls += 1
                    held = mop  # retry next cycle
                    break
                slot = _Slot(fetched, mop)
                comp[fetched & _RING_MASK] = _NOT_ISSUED
                window.append(slot)
                fetched += 1
                n_fetch += 1
                if tracer is not None:
                    tracer.capture(
                        obs.CPU_FETCH, cycle, {"seq": slot.seq, "op": mop.op.name}
                    )
                if mop.is_memory:
                    lsq_used += 1
                    if lsq_used > cfg.lsq_size:
                        raise SimulationInvariantError(
                            f"load/store queue overflow ({lsq_used} > "
                            f"{cfg.lsq_size}) fetching seq {slot.seq} "
                            f"at cycle {cycle}",
                            {"instruction window": dump_window(window, cycle)},
                        )
                if mop.op is Op.BRANCH:
                    if not core.predictor.observe(mop.pc, mop.taken):
                        blocking_branch = slot
                        break

        # ---------------- advance time ----------------
        if n_commit or n_issue or n_fetch:
            cycle += 1
        else:
            cycle = core._skip_to_next_event(cycle, window, comp, blocking_branch)

    # Final structural audit: catches corruption that accumulated
    # after the last periodic check (or any at all on short runs).
    core.memory.audit(cycle)

    counters_series = None
    if sampler is not None:
        sampler.finish(cycle, committed, pipeline)
        counters_series = sampler.series()

    result = SimulationResult(
        instructions=committed - measure_start_committed,
        cycles=max(1, cycle - measure_start_cycle),
        op_counts=op_counts,
        pipeline=pipeline,
        branches=core.predictor.stats,
        memory=core.memory.stats,
        backend=ReferenceBackend.name,
        counters=counters_series,
    )
    result.metrics = snapshot_simulation(result, core.memory)
    return result


def issue_slot(
    core: "OutOfOrderCore",
    slot: "_Slot",
    cycle: int,
    store_lines: dict[int, tuple[int, int]],
    pipeline: PipelineStats,
    tracer: "obs_trace.Tracer | None" = None,
) -> None:
    """Issue one ready slot (shared verbatim by both backends)."""
    mop = slot.mop
    op = mop.op
    if op is Op.LOAD:
        address_ready = cycle + ADDRESS_CALC_CYCLES
        if core.config.store_forwarding:
            line = core.memory.line_of(mop.address)
            entry = store_lines.get(line)
            if entry is not None:
                pipeline.store_forwards += 1
                slot.complete = max(address_ready + 1, entry[1] + 1)
                slot.issued = True
                if tracer is not None:
                    tracer.capture(
                        obs.CPU_ISSUE,
                        cycle,
                        {
                            "seq": slot.seq,
                            "op": op.name,
                            "complete": slot.complete,
                            "fwd": True,
                        },
                    )
                return
        result = core.memory.load(mop.address, address_ready)
        slot.complete = result.completion_cycle
    elif op is Op.STORE:
        slot.complete = cycle + ADDRESS_CALC_CYCLES
        if core.config.store_forwarding:
            line = core.memory.line_of(mop.address)
            store_lines[line] = (slot.seq, slot.complete)
    else:
        slot.complete = cycle + mop.latency
    slot.issued = True
    if tracer is not None:
        tracer.capture(
            obs.CPU_ISSUE,
            cycle,
            {"seq": slot.seq, "op": op.name, "complete": slot.complete},
        )


def skip_to_next_event(
    core: "OutOfOrderCore",
    cycle: int,
    window: "deque[_Slot]",
    comp: list[int],
    blocking_branch: "_Slot | None",
) -> int:
    """Nothing happened this cycle: jump to the next interesting one."""
    from repro.cpu.core import _RING_MASK

    horizon: int | None = None
    for slot in window:
        if slot.issued:
            candidate = slot.complete
        else:
            candidate = None
            ready = 0
            for distance in slot.mop.srcs:
                producer = slot.seq - distance
                if producer >= 0:
                    when = comp[producer & _RING_MASK]
                    if when < 0:
                        ready = -1
                        break
                    ready = max(ready, when)
            if ready >= 0:
                candidate = max(cycle + 1, ready)
        if candidate is not None and (horizon is None or candidate < horizon):
            horizon = candidate
    if blocking_branch is not None and blocking_branch.issued:
        resume = blocking_branch.complete + core.config.mispredict_redirect_penalty
        if horizon is None or resume < horizon:
            horizon = resume
    if horizon is None or horizon <= cycle:
        return cycle + 1
    return horizon
