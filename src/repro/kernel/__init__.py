"""Swappable simulation kernels behind one ``SimulationBackend`` seam.

The cycle loop used to live inline in :mod:`repro.cpu.core`; it is now
a *backend* chosen per run, with two implementations:

* ``reference`` -- the original pure-Python loop, moved here verbatim
  (:mod:`repro.kernel.reference`).  The golden suite pins its output.
* ``fast`` -- an event-driven loop with dependency counting, ready
  heaps, and precomputed workload artifacts
  (:mod:`repro.kernel.fast`).  It must produce **bit-identical
  results** to ``reference``: same stats, same metrics, same trace
  events.  The parity suite (``tests/engine/test_backends.py``) and a
  CI job enforce that invariant, which is also why the backend name is
  excluded from :class:`~repro.engine.key.ExperimentKey` digests --
  cache entries are shared between backends.

Selection, in priority order:

1. an explicit :func:`use_backend` scope (tests, library callers);
2. the ``REPRO_BACKEND`` environment variable (inherited by pool
   workers, which is how ``--backend`` reaches parallel runs);
3. the default, ``reference``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.experiment import ExperimentSettings
    from repro.cpu.core import OutOfOrderCore
    from repro.cpu.isa import MicroOp
    from repro.cpu.result import SimulationResult
    from repro.memory.hierarchy import MemorySystem
    from repro.workloads.generator import WorkloadSpec

#: Environment variable naming the backend for this process and any
#: pool workers it spawns.
BACKEND_ENV = "REPRO_BACKEND"

#: The default backend; also what an empty/unset environment means.
DEFAULT_BACKEND = "reference"

#: Names accepted by :func:`get_backend`, in documentation order.
BACKEND_NAMES = ("reference", "fast")


@runtime_checkable
class SimulationBackend(Protocol):
    """One complete simulation strategy for a design point.

    ``prepare`` performs functional warm-up on ``memory`` and returns
    the timing-phase micro-op stream; ``run`` executes the cycle loop.
    Backends may differ in *how* (caching, event-driven scheduling) but
    never in *what*: every observable output -- statistics, metrics,
    trace events, invariant failures -- must be identical across
    backends for the same inputs.
    """

    name: str

    def prepare(
        self,
        spec: "WorkloadSpec",
        memory: "MemorySystem",
        settings: "ExperimentSettings",
    ) -> Iterator["MicroOp"]: ...

    def run(
        self,
        core: "OutOfOrderCore",
        trace: Iterator["MicroOp"],
        max_instructions: int,
        *,
        warmup_instructions: int = 0,
    ) -> "SimulationResult": ...


_INSTANCES: dict[str, SimulationBackend] = {}
_SELECTED: str | None = None  # in-process override; beats the environment


def get_backend(name: str) -> SimulationBackend:
    """The backend registered under ``name`` (instantiated lazily).

    Lazy import keeps ``repro.kernel`` import-cycle-free: the CPU core
    imports this package, and the backend modules import the core.
    """
    normalized = name.strip().lower()
    backend = _INSTANCES.get(normalized)
    if backend is not None:
        return backend
    if normalized == "reference":
        from repro.kernel.reference import ReferenceBackend

        backend = ReferenceBackend()
    elif normalized == "fast":
        from repro.kernel.fast import FastBackend

        backend = FastBackend()
    else:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"choose from: {', '.join(BACKEND_NAMES)}"
        )
    _INSTANCES[normalized] = backend
    return backend


def selected_name() -> str:
    """The backend name the next simulation will use."""
    if _SELECTED is not None:
        return _SELECTED
    raw = os.environ.get(BACKEND_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_BACKEND
    return raw.strip().lower()


def active_backend() -> SimulationBackend:
    """Resolve the selected backend (validating the environment value)."""
    return get_backend(selected_name())


def select_backend(name: str | None) -> str | None:
    """Set (or with ``None`` clear) the in-process backend override.

    Returns the previous override so callers can restore it.  Unknown
    names fail immediately rather than at first simulation.
    """
    global _SELECTED
    previous = _SELECTED
    if name is None:
        _SELECTED = None
    else:
        get_backend(name)  # validate
        _SELECTED = name.strip().lower()
    return previous


@contextmanager
def use_backend(name: str):
    """Scope with ``name`` selected; restores the prior choice on exit.

    Also exports ``REPRO_BACKEND`` for the scope so worker processes
    spawned inside it inherit the same backend.
    """
    previous = select_backend(name)
    previous_env = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = selected_name()
    try:
        yield get_backend(selected_name())
    finally:
        select_backend(previous)
        if previous_env is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = previous_env
