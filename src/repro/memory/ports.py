"""Cache-port arbitration models (section 2.1).

Three ways of providing load/store bandwidth are modeled, all as
timestamped resources (a request at cycle ``t`` is granted the earliest
cycle at which a suitable port is free):

* **ideal ports** -- ``n`` ports, each accepting one access per cycle to
  any address ("an ideal cache port operates independently of any other
  cache port [and] is accessible every cycle");
* **banked ports** -- one port per external bank; an access must use the
  bank its line maps to, so two same-bank accesses in one cycle conflict;
* **duplicate ports** -- two copies of the cache (DEC Alpha 21164 style).
  Loads use either copy; stores must write both copies to keep them
  consistent, but are buffered and drained at lowest priority so they
  rarely steal load bandwidth (the paper's stated assumption).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability.events import MEM_BANK_CONFLICT, MEM_PORT_GRANT, EventChannel
from repro.robustness.invariants import GrantLedger


@dataclass
class PortStats:
    """Contention counters maintained by every arbiter."""

    requests: int = 0
    delayed: int = 0  #: granted later than requested
    wait_cycles: int = 0  #: total grant - request cycles
    bank_conflicts: int = 0  #: delays attributable to bank mapping


class PortArbiter:
    """Base interface: grant a start cycle for an access.

    Every grant is emitted on the shared ``mem.port.grant`` event
    channel.  A :class:`~repro.robustness.invariants.GrantLedger` taps
    that channel (always on, tracing or not) to guard the hardware
    contract that each port (or bank) starts at most one access per
    cycle -- broken reservation bookkeeping (a lost port release)
    surfaces as a structured invariant error instead of a silently
    over-subscribed cache.
    """

    def __init__(self, name: str = "ports") -> None:
        self.stats = PortStats()
        self.events = EventChannel(MEM_PORT_GRANT, (GrantLedger(1, name).tap,))

    def reserve(self, line: int, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which the access may start."""
        raise NotImplementedError

    def reserve_store(self, line: int, cycle: int) -> int:
        """Like :meth:`reserve` but for a buffered store drain."""
        return self.reserve(line, cycle)

    def _account(self, requested: int, granted: int) -> int:
        self.stats.requests += 1
        if granted > requested:
            self.stats.delayed += 1
            self.stats.wait_cycles += granted - requested
        return granted


class IdealPorts(PortArbiter):
    """``n`` fully pipelined ports, each usable by any address."""

    def __init__(self, ports: int):
        if ports < 1:
            raise ValueError(f"need at least one port, got {ports}")
        super().__init__("ideal ports")
        self.ports = ports
        self._next_free = [0] * ports

    def reserve(self, line: int, cycle: int) -> int:
        best = min(range(self.ports), key=self._next_free.__getitem__)
        start = max(cycle, self._next_free[best])
        self._next_free[best] = start + 1
        self.events.emit(start, key=best)
        return self._account(cycle, start)


class BankedPorts(PortArbiter):
    """One port per external bank; lines are interleaved across banks.

    The bank of an access is ``line mod banks`` (consecutive lines hit
    consecutive banks, the usual interleaving).  A busy bank delays the
    access even if other banks are idle -- the bank-conflict penalty of
    section 2.1.
    """

    #: lines per bank stretch under "page" interleaving (32 lines = 1 KB)
    PAGE_LINES_SHIFT = 5

    def __init__(self, banks: int, interleave: str = "line"):
        if banks < 1:
            raise ValueError(f"need at least one bank, got {banks}")
        if interleave not in ("line", "page"):
            raise ValueError(f"unknown interleaving {interleave!r}")
        super().__init__("banked ports")
        self.banks = banks
        self.interleave = interleave
        self.conflicts = EventChannel(MEM_BANK_CONFLICT)
        self._next_free = [0] * banks

    def bank_of(self, line: int) -> int:
        """Bank selection: "line" interleaving spreads consecutive lines
        across banks (the usual choice -- sequential streams hit all
        banks); "page" interleaving keeps 1 KB stretches in one bank
        (cheaper wiring, worse for streams).  The ablation bench
        quantifies the difference."""
        if self.interleave == "line":
            return line % self.banks
        return (line >> self.PAGE_LINES_SHIFT) % self.banks

    def reserve(self, line: int, cycle: int) -> int:
        bank = self.bank_of(line)
        start = max(cycle, self._next_free[bank])
        if start > cycle:
            self.stats.bank_conflicts += 1
            self.conflicts.emit(cycle, bank=bank, wait=start - cycle)
        self._next_free[bank] = start + 1
        self.events.emit(start, key=bank)
        return self._account(cycle, start)


class DuplicatePorts(PortArbiter):
    """Two mirrored copies of the cache: loads pick either, stores use both."""

    def __init__(self) -> None:
        super().__init__("duplicate ports")
        self._next_free = [0, 0]

    @property
    def ports(self) -> int:
        return 2

    def reserve(self, line: int, cycle: int) -> int:
        best = 0 if self._next_free[0] <= self._next_free[1] else 1
        start = max(cycle, self._next_free[best])
        self._next_free[best] = start + 1
        self.events.emit(start, key=best)
        return self._account(cycle, start)

    def reserve_store(self, line: int, cycle: int) -> int:
        """A store writes both copies in the same cycle to stay coherent."""
        start = max(cycle, *self._next_free)
        self._next_free[0] = start + 1
        self._next_free[1] = start + 1
        self.events.emit(start, key=0)
        self.events.emit(start, key=1)
        return self._account(cycle, start)


def make_arbiter(
    policy: str, *, ports: int = 2, banks: int = 8, interleave: str = "line"
) -> PortArbiter:
    """Factory used by the hierarchy configuration layer."""
    if policy == "ideal":
        return IdealPorts(ports)
    if policy == "banked":
        return BankedPorts(banks, interleave)
    if policy == "duplicate":
        return DuplicatePorts()
    raise ValueError(f"unknown port policy: {policy!r}")
