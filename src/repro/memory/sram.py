"""Functional set-associative cache state with true LRU replacement.

This models *contents* only (hits, misses, evictions, dirty lines); all
timing -- ports, banks, pipelining, MSHRs, buses -- lives in the other
modules of :mod:`repro.memory`.  The paper's primary data cache is
two-way set-associative with 32-byte lines and write-back/write-allocate
semantics (stores allocate through the MSHRs like loads).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of the cache by a fill."""

    line: int
    dirty: bool


class SetAssociativeCache:
    """LRU set-associative cache over *line addresses*.

    All methods take line addresses (byte address divided by the line
    size); callers convert with :func:`repro.memory.common.line_address`.
    """

    def __init__(self, size_bytes: int, associativity: int, line_bytes: int):
        if size_bytes <= 0 or size_bytes % (associativity * line_bytes):
            raise ValueError(
                f"cache size {size_bytes} not divisible into "
                f"{associativity}-way sets of {line_bytes}B lines"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (associativity * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"number of sets must be a power of two: {self.num_sets}")
        self._set_mask = self.num_sets - 1
        self._tag_shift = self.num_sets.bit_length() - 1
        # Per set: list of tags in MRU-first order.  Dirty lines live in
        # one flat set of line addresses (cheap to snapshot and to probe;
        # after warm-up only a small fraction of lines is dirty).
        self._ways: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: set[int] = set()
        self._count = 0  # resident lines, maintained for O(1) __len__

    def _locate(self, line: int) -> tuple[int, int]:
        return line & self._set_mask, line >> self._tag_shift

    def lookup(self, line: int, *, write: bool = False) -> bool:
        """Reference a line; returns hit/miss and updates LRU (and dirty)."""
        ways = self._ways[line & self._set_mask]
        tag = line >> self._tag_shift
        try:
            pos = ways.index(tag)
        except ValueError:
            return False
        if pos:
            ways.insert(0, ways.pop(pos))
        if write:
            self._dirty.add(line)
        return True

    def probe(self, line: int) -> bool:
        """Check presence without touching LRU state."""
        return line >> self._tag_shift in self._ways[line & self._set_mask]

    def fill(self, line: int, *, dirty: bool = False) -> Eviction | None:
        """Install a line (MRU position); returns the victim, if any.

        Filling a line that is already present refreshes its LRU position
        (this happens when a merged MSHR response races a prefetch-like
        refill) and returns ``None``.
        """
        index = line & self._set_mask
        tag = line >> self._tag_shift
        ways = self._ways[index]
        if tag in ways:
            self.lookup(line, write=dirty)
            return None
        evicted: Eviction | None = None
        if len(ways) >= self.associativity:
            victim_line = (ways.pop() << self._tag_shift) | index
            victim_dirty = victim_line in self._dirty
            self._dirty.discard(victim_line)
            evicted = Eviction(victim_line, victim_dirty)
        else:
            self._count += 1
        ways.insert(0, tag)
        if dirty:
            self._dirty.add(line)
        return evicted

    def invalidate(self, line: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        ways = self._ways[line & self._set_mask]
        tag = line >> self._tag_shift
        if tag not in ways:
            return False
        ways.remove(tag)
        self._dirty.discard(line)
        self._count -= 1
        return True

    def snapshot_state(self) -> tuple:
        """An immutable-by-convention copy of contents, LRU, and dirty
        bits -- pair with :meth:`restore_state` to clone warmed caches."""
        return (
            [list(ways) for ways in self._ways],
            set(self._dirty),
            self._count,
        )

    def restore_state(self, state: tuple) -> None:
        """Replace all contents with a copy of a snapshot's."""
        ways, dirty, count = state
        if len(ways) != self.num_sets:
            raise ValueError(
                f"snapshot has {len(ways)} sets, cache has {self.num_sets}"
            )
        self._ways = list(map(list, ways))
        self._dirty = set(dirty)
        self._count = count

    def is_dirty(self, line: int) -> bool:
        return line in self._dirty

    def resident_lines(self) -> list[int]:
        """All currently valid line addresses (testing/inspection aid)."""
        shift = self.num_sets.bit_length() - 1
        return [
            (tag << shift) | index
            for index, ways in enumerate(self._ways)
            for tag in ways
        ]

    def audit(self, name: str = "cache") -> list[str]:
        """Structural self-check; returns a list of problem descriptions.

        Guards the replacement bookkeeping the timing model relies on:
        no set may exceed its associativity, hold a duplicated way, or
        carry dirty bits for tags that are not resident.
        """
        problems: list[str] = []
        resident = 0
        for index, ways in enumerate(self._ways):
            resident += len(ways)
            if len(ways) > self.associativity:
                problems.append(
                    f"{name} set {index}: {len(ways)} ways exceed "
                    f"associativity {self.associativity}"
                )
            if len(set(ways)) != len(ways):
                problems.append(f"{name} set {index}: duplicate tag in LRU order")
        phantom = self._dirty - set(self.resident_lines())
        if phantom:
            problems.append(
                f"{name}: dirty bits for absent lines {sorted(phantom)}"
            )
        if resident != self._count:
            problems.append(
                f"{name}: resident count {self._count} does not match "
                f"{resident} lines in LRU state"
            )
        return problems

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.size_bytes}B, "
            f"{self.associativity}-way, {self.line_bytes}B lines)"
        )


class FullyAssociativeCache:
    """Small fully-associative LRU cache (line buffer, victim-style uses)."""

    def __init__(self, entries: int, line_bytes: int):
        if entries <= 0:
            raise ValueError(f"entries must be positive: {entries}")
        self.entries = entries
        self.line_bytes = line_bytes
        self._lines: list[int] = []  # MRU first

    def lookup(self, line: int) -> bool:
        try:
            pos = self._lines.index(line)
        except ValueError:
            return False
        if pos:
            self._lines.insert(0, self._lines.pop(pos))
        return True

    def probe(self, line: int) -> bool:
        return line in self._lines

    def fill(self, line: int) -> int | None:
        """Install a line; returns the evicted line address, if any."""
        if self.lookup(line):
            return None
        evicted = None
        if len(self._lines) >= self.entries:
            evicted = self._lines.pop()
        self._lines.insert(0, line)
        return evicted

    def invalidate(self, line: int) -> bool:
        if line in self._lines:
            self._lines.remove(line)
            return True
        return False

    def snapshot_state(self) -> list[int]:
        """Copy of the contents in LRU order (see
        :meth:`SetAssociativeCache.snapshot_state`)."""
        return list(self._lines)

    def restore_state(self, state: list[int]) -> None:
        """Replace all contents with a copy of a snapshot's."""
        self._lines = list(state)

    def clear(self) -> None:
        self._lines.clear()

    def resident_lines(self) -> list[int]:
        """All currently held line addresses, MRU first."""
        return list(self._lines)

    def audit(self, name: str = "buffer") -> list[str]:
        """Structural self-check; returns a list of problem descriptions."""
        problems: list[str] = []
        if len(self._lines) > self.entries:
            problems.append(
                f"{name}: {len(self._lines)} lines exceed capacity {self.entries}"
            )
        if len(set(self._lines)) != len(self._lines):
            problems.append(f"{name}: duplicate line in LRU order")
        return problems

    def __len__(self) -> int:
        return len(self._lines)
