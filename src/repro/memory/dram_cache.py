"""On-chip DRAM cache with a row-buffer first-level cache (section 2.4).

Models the [Saul96]-style organization the paper evaluates in Figure 7:

* a 4 MB on-chip DRAM array used as the only cache level (the large DRAM
  cache replaces the off-chip L2 entirely);
* the DRAM banks' row buffers are combined into a 16 KB two-way
  set-associative first-level data cache with **512-byte lines** (each
  row buffer holds one 512 B row) and a one-cycle hit time;
* a row-buffer miss pays the DRAM array hit time, varied 6-8 cycles;
* a DRAM cache miss goes to main memory.

The DRAM array is eight-way banked ("the DRAM's row buffers act as
banks") and a bank is busy for the whole DRAM access (DRAM arrays are
not pipelined the way SRAM is).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.bus import Bus
from repro.memory.common import ServedBy
from repro.memory.sram import SetAssociativeCache
from repro.observability.attribution import critical_path
from repro.observability.events import MEM_BUS_TRANSFER, EventChannel
from repro.robustness.invariants import bus_causality_tap


@dataclass(frozen=True)
class DramCacheConfig:
    dram_size: int = 4 * 1024 * 1024
    dram_assoc: int = 2
    row_bytes: int = 512  #: DRAM row == row-buffer cache line
    dram_hit_cycles: int = 6  #: varied 6-8 in Figure 7
    dram_banks: int = 8
    row_cache_size: int = 16 * 1024
    row_cache_assoc: int = 2
    row_cache_hit_cycles: int = 1
    memory_cycles: int = 60
    memory_bus_bytes_per_cycle: float = 8.0


@dataclass
class DramStats:
    row_cache_hits: int = 0
    row_cache_misses: int = 0
    dram_hits: int = 0
    dram_misses: int = 0
    bank_wait_cycles: int = 0

    @property
    def row_cache_miss_rate(self) -> float:
        total = self.row_cache_hits + self.row_cache_misses
        return self.row_cache_misses / total if total else 0.0


@dataclass(frozen=True)
class DramFill:
    ready_cycle: int
    served_by: ServedBy
    #: Critical-path decomposition of ``ready_cycle - request_cycle``
    #: (same contract as :class:`repro.memory.backside.FillResponse`).
    path: tuple[tuple[str, int], ...] = ()


class DramCacheBackside:
    """The DRAM array + main memory behind the row-buffer cache.

    The row-buffer cache itself lives in the hierarchy frontend (it is
    the primary data cache in DRAM mode); this class serves its misses.
    """

    def __init__(self, config: DramCacheConfig):
        self.config = config
        self.dram = SetAssociativeCache(
            config.dram_size, config.dram_assoc, config.row_bytes
        )
        self.memory_bus = Bus(config.memory_bus_bytes_per_cycle, "DRAM<->memory")
        self.bus_events = EventChannel(MEM_BUS_TRANSFER, (bus_causality_tap,))
        self.stats = DramStats()
        self._bank_free = [0] * config.dram_banks

    def fetch_row(self, row_line: int, cycle: int) -> DramFill:
        """Fetch a 512 B row into a row buffer; returns arrival timing."""
        bank = row_line % self.config.dram_banks
        start = max(cycle, self._bank_free[bank])
        self.stats.bank_wait_cycles += start - cycle
        done = start + self.config.dram_hit_cycles
        self._bank_free[bank] = done  # bank busy for the full access
        if self.dram.lookup(row_line):
            self.stats.dram_hits += 1
            path = critical_path(
                dram_bank_wait=start - cycle,
                dram_access=self.config.dram_hit_cycles,
            )
            return DramFill(done, ServedBy.DRAM_CACHE, path)
        self.stats.dram_misses += 1
        mem_ready = done + self.config.memory_cycles
        transfer = self.memory_bus.transfer(mem_ready, self.config.row_bytes)
        self.bus_events.emit(
            mem_ready,
            bus=self.memory_bus.name,
            start=transfer.start_cycle,
            done=transfer.done_cycle,
            bytes=self.config.row_bytes,
        )
        victim = self.dram.fill(row_line)
        if victim is not None and victim.dirty:
            self.memory_bus.transfer(transfer.done_cycle, self.config.row_bytes)
        self._bank_free[bank] = max(self._bank_free[bank], transfer.done_cycle)
        path = critical_path(
            dram_bank_wait=start - cycle,
            dram_access=self.config.dram_hit_cycles,
            memory=self.config.memory_cycles,
            bus_queue=transfer.start_cycle - mem_ready,
            bus_transfer=transfer.done_cycle - transfer.start_cycle,
        )
        return DramFill(transfer.done_cycle, ServedBy.MEMORY, path)

    def fetch_line(self, line: int, cycle: int) -> DramFill:
        """Hierarchy-facing alias: in DRAM mode an L1 line *is* a row."""
        return self.fetch_row(line, cycle)

    def writeback_line(self, line: int, cycle: int) -> None:
        """Hierarchy-facing alias for dirty row-buffer victims."""
        self.writeback_row(line, cycle)

    def writeback_row(self, row_line: int, cycle: int) -> None:
        """A dirty row-buffer victim is written back into the DRAM array."""
        bank = row_line % self.config.dram_banks
        start = max(cycle, self._bank_free[bank])
        self._bank_free[bank] = start + self.config.dram_hit_cycles
        if self.dram.probe(row_line):
            self.dram.lookup(row_line, write=True)
        else:
            victim = self.dram.fill(row_line, dirty=True)
            if victim is not None and victim.dirty:
                self.memory_bus.transfer(start, self.config.row_bytes)
