"""The off-L1 memory path: unified L2 cache, buses, and main memory.

Section 3.1: the second level cache is 4 MB, two-way set-associative
with 64-byte lines and a ten cycle (50 ns) access time; main memory has
a sixty cycle (300 ns) access time; the chip-to-L2 bus peaks at
2.5 GB/s and the L2-to-memory bus at 1.6 GB/s.

A primary-cache miss for line ``L`` proceeds: request crosses to the
L2 -> L2 lookup (hit time) -> on hit, the L1 line crosses the chip bus
back; on miss, the L2 line is fetched from memory over the memory bus
(memory latency + transfer), installed in the L2 (possibly writing back
a dirty victim), and the L1 line then crosses the chip bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.bus import Bus, Transfer
from repro.memory.common import ServedBy
from repro.memory.sram import SetAssociativeCache
from repro.observability.attribution import critical_path
from repro.observability.events import MEM_BUS_TRANSFER, EventChannel
from repro.robustness.invariants import bus_causality_tap


@dataclass
class BacksideStats:
    l1_line_requests: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    writebacks: int = 0  #: dirty L1 victims written to the L2
    l2_writebacks: int = 0  #: dirty L2 victims written to memory

    @property
    def l2_miss_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_misses / total if total else 0.0


@dataclass(frozen=True)
class FillResponse:
    """Timing of a line fill delivered to the primary cache."""

    ready_cycle: int  #: cycle the full L1 line has arrived on chip
    served_by: ServedBy
    #: Critical-path decomposition of ``ready_cycle - request_cycle``
    #: as ``((component, cycles), ...)``; components sum exactly to the
    #: fill latency (the attribution invariant).
    path: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class BacksideConfig:
    l2_size: int = 4 * 1024 * 1024
    l2_assoc: int = 2
    l2_line: int = 64
    l2_hit_cycles: int = 10
    memory_cycles: int = 60
    chip_bus_bytes_per_cycle: float = 12.5  #: 2.5 GB/s at 200 MHz
    memory_bus_bytes_per_cycle: float = 8.0  #: 1.6 GB/s at 200 MHz


class BacksideMemory:
    """L2 + main memory serving primary-cache line fills."""

    def __init__(self, config: BacksideConfig, l1_line_bytes: int):
        self.config = config
        self.l1_line_bytes = l1_line_bytes
        if l1_line_bytes > config.l2_line:
            raise ValueError(
                f"L1 line ({l1_line_bytes}B) larger than L2 line ({config.l2_line}B)"
            )
        self.l2 = SetAssociativeCache(config.l2_size, config.l2_assoc, config.l2_line)
        self.chip_bus = Bus(config.chip_bus_bytes_per_cycle, "chip<->L2")
        self.memory_bus = Bus(config.memory_bus_bytes_per_cycle, "L2<->memory")
        self.bus_events = EventChannel(MEM_BUS_TRANSFER, (bus_causality_tap,))
        self.stats = BacksideStats()
        self._line_shift = (config.l2_line // l1_line_bytes).bit_length() - 1

    def _l2_line(self, l1_line: int) -> int:
        return l1_line >> self._line_shift

    def _checked_transfer(self, bus: Bus, cycle: int, nbytes: int) -> Transfer:
        """Schedule a transfer and emit it on the bus-event channel.

        The channel's causality tap verifies the grant window: a dropped
        or mis-accounted bus grant surfaces here as data "arriving" at
        or before the cycle it was requested.
        """
        transfer = bus.transfer(cycle, nbytes)
        self.bus_events.emit(
            cycle,
            bus=bus.name,
            start=transfer.start_cycle,
            done=transfer.done_cycle,
            bytes=nbytes,
        )
        return transfer

    def fetch_line(self, l1_line: int, cycle: int) -> FillResponse:
        """Fetch an L1 line requested at ``cycle``; returns arrival timing."""
        self.stats.l1_line_requests += 1
        l2_line = self._l2_line(l1_line)
        lookup_done = cycle + self.config.l2_hit_cycles
        if self.l2.lookup(l2_line):
            self.stats.l2_hits += 1
            transfer = self._checked_transfer(
                self.chip_bus, lookup_done, self.l1_line_bytes
            )
            path = critical_path(
                l2_access=self.config.l2_hit_cycles,
                bus_queue=transfer.start_cycle - lookup_done,
                bus_transfer=transfer.done_cycle - transfer.start_cycle,
            )
            return FillResponse(transfer.done_cycle, ServedBy.L2, path)
        self.stats.l2_misses += 1
        # Miss determined after the L2 lookup; go to main memory.
        mem_ready = lookup_done + self.config.memory_cycles
        mem_xfer = self._checked_transfer(
            self.memory_bus, mem_ready, self.config.l2_line
        )
        victim = self.l2.fill(l2_line)
        if victim is not None and victim.dirty:
            self.stats.l2_writebacks += 1
            # Writeback occupies the memory bus but is off the critical path.
            self.memory_bus.transfer(mem_xfer.done_cycle, self.config.l2_line)
        transfer = self._checked_transfer(
            self.chip_bus, mem_xfer.done_cycle, self.l1_line_bytes
        )
        path = critical_path(
            l2_access=self.config.l2_hit_cycles,
            memory=self.config.memory_cycles,
            bus_queue=(mem_xfer.start_cycle - mem_ready)
            + (transfer.start_cycle - mem_xfer.done_cycle),
            bus_transfer=(mem_xfer.done_cycle - mem_xfer.start_cycle)
            + (transfer.done_cycle - transfer.start_cycle),
        )
        return FillResponse(transfer.done_cycle, ServedBy.MEMORY, path)

    def write_word_through(self, l1_line: int, cycle: int) -> int:
        """A write-through store word crosses the chip bus into the L2.

        Returns the cycle the write has retired at the L2.  If the line
        is absent from the L2 it is allocated dirty (the fetch from
        memory is off the store's critical path and not modeled).
        """
        transfer = self._checked_transfer(self.chip_bus, cycle, 8)
        l2_line = self._l2_line(l1_line)
        if self.l2.probe(l2_line):
            self.l2.lookup(l2_line, write=True)
        else:
            victim = self.l2.fill(l2_line, dirty=True)
            if victim is not None and victim.dirty:
                self.stats.l2_writebacks += 1
                self.memory_bus.transfer(transfer.done_cycle, self.config.l2_line)
        return transfer.done_cycle

    def writeback_line(self, l1_line: int, cycle: int) -> None:
        """A dirty L1 victim crosses the chip bus and updates the L2."""
        self.stats.writebacks += 1
        self.chip_bus.transfer(cycle, self.l1_line_bytes)
        l2_line = self._l2_line(l1_line)
        if self.l2.probe(l2_line):
            self.l2.lookup(l2_line, write=True)
        else:
            # Victim no longer in L2 (evicted meanwhile): allocate dirty.
            victim = self.l2.fill(l2_line, dirty=True)
            if victim is not None and victim.dirty:
                self.stats.l2_writebacks += 1
                self.memory_bus.transfer(cycle, self.config.l2_line)
