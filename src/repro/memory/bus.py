"""Bandwidth-limited transfer buses (section 3.1).

The memory organization supports 2.5 GB/s peak between the processor
chip and the L2, and 1.6 GB/s peak between the L2 and main memory.  At
the reference 200 MHz clock that is 12.5 and 8 bytes per cycle.  A bus
is a serially reusable resource: each line transfer occupies it for
``ceil(bytes / bytes_per_cycle)`` cycles, and later transfers queue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.robustness.errors import SimulationInvariantError


@dataclass
class BusStats:
    transfers: int = 0
    bytes_moved: int = 0
    busy_cycles: int = 0
    queue_cycles: int = 0  #: total cycles transfers waited for the bus


@dataclass(frozen=True)
class Transfer:
    start_cycle: int
    done_cycle: int


class Bus:
    """A single bus with a fixed peak bandwidth in bytes/cycle."""

    def __init__(self, bytes_per_cycle: float, name: str = "bus"):
        if bytes_per_cycle <= 0:
            raise ValueError(f"bandwidth must be positive: {bytes_per_cycle}")
        self.bytes_per_cycle = bytes_per_cycle
        self.name = name
        self.stats = BusStats()
        self._next_free = 0

    def occupancy(self, nbytes: int) -> int:
        """Cycles the bus is held by a transfer of ``nbytes``."""
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive: {nbytes}")
        return max(1, math.ceil(nbytes / self.bytes_per_cycle))

    def transfer(self, cycle: int, nbytes: int) -> Transfer:
        """Schedule a transfer requested at ``cycle``; returns its window."""
        busy = self.occupancy(nbytes)
        start = max(cycle, self._next_free)
        self._next_free = start + busy
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        self.stats.busy_cycles += busy
        self.stats.queue_cycles += start - cycle
        # Bandwidth accounting: a serially reusable bus can never have
        # spent more busy cycles than its occupancy rules allow for the
        # bytes it moved.  Broken occupancy math surfaces here.
        if self.stats.busy_cycles < self.stats.bytes_moved / self.bytes_per_cycle:
            raise SimulationInvariantError(
                f"{self.name}: {self.stats.busy_cycles} busy cycles cannot "
                f"have moved {self.stats.bytes_moved} bytes at "
                f"{self.bytes_per_cycle} bytes/cycle"
            )
        return Transfer(start_cycle=start, done_cycle=start + busy)

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the bus spent busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / total_cycles)


def bytes_per_cycle(bandwidth_bytes_per_s: float, cycle_time_fo4: float) -> float:
    """Convert a physical bandwidth to bytes/cycle for a given clock.

    Figure 9 varies the processor cycle time; the physical bus bandwidth
    stays fixed, so faster clocks see fewer bytes per cycle.
    """
    from repro.timing.process import fo4_to_ns

    if bandwidth_bytes_per_s <= 0 or cycle_time_fo4 <= 0:
        raise ValueError("bandwidth and cycle time must be positive")
    return bandwidth_bytes_per_s * fo4_to_ns(cycle_time_fo4) * 1e-9
