"""Victim cache [Joup90], an optional companion to the primary cache.

The paper's related work (Jouppi's miss caches / victim caches) is the
classic alternative to the line buffer for recovering conflict misses:
a small fully-associative buffer next to the L1 holds recently evicted
lines; an L1 miss that hits the victim cache swaps the two lines and
costs one extra cycle instead of an L2 round trip.

Where the line buffer sits *inside the load/store unit* and saves port
bandwidth, the victim cache sits *behind the ports* and saves miss
latency -- the ablation bench compares the two directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.sram import FullyAssociativeCache


@dataclass
class VictimCacheStats:
    probes: int = 0
    swap_hits: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        return self.swap_hits / self.probes if self.probes else 0.0


class VictimCache:
    """Small fully-associative buffer of recently evicted L1 lines."""

    #: Extra cycles an L1 miss pays when satisfied by a victim swap.
    SWAP_PENALTY_CYCLES = 1

    def __init__(self, entries: int, line_bytes: int = 32):
        if entries <= 0:
            raise ValueError(f"victim cache needs entries > 0, got {entries}")
        self.entries = entries
        self._cache = FullyAssociativeCache(entries, line_bytes)
        # dirty status travels with the line through the swap
        self._dirty: set[int] = set()
        self.stats = VictimCacheStats()

    def probe_and_take(self, line: int) -> tuple[bool, bool]:
        """On an L1 miss: ``(hit, was_dirty)``; a hit removes the line
        (it is being swapped back into the L1)."""
        self.stats.probes += 1
        if self._cache.invalidate(line):
            self.stats.swap_hits += 1
            dirty = line in self._dirty
            self._dirty.discard(line)
            return True, dirty
        return False, False

    def insert(self, line: int, dirty: bool) -> tuple[int, bool] | None:
        """Install an L1 victim; returns a displaced (line, dirty) pair
        that must now be written back / dropped, if any."""
        self.stats.fills += 1
        displaced = self._cache.fill(line)
        if dirty:
            self._dirty.add(line)
        if displaced is None:
            return None
        displaced_dirty = displaced in self._dirty
        self._dirty.discard(displaced)
        return displaced, displaced_dirty

    def probe(self, line: int) -> bool:
        """Check presence without disturbing LRU or dirty state."""
        return self._cache.probe(line)

    def resident_lines(self) -> list[int]:
        """Lines currently held, MRU first (audit/inspection aid)."""
        return self._cache.resident_lines()

    def audit(self) -> list[str]:
        """Structural self-check; returns a list of problem descriptions."""
        problems = self._cache.audit("victim cache")
        phantom = self._dirty - set(self._cache.resident_lines())
        if phantom:
            problems.append(
                f"victim cache: dirty bits for absent lines {sorted(phantom)[:4]}"
            )
        return problems

    def __len__(self) -> int:
        return len(self._cache)
