"""The complete on-chip memory system seen by the processor core.

``MemorySystem`` wires together one of the paper's cache organizations:

* an optional line buffer in the load/store unit (section 2.3);
* the primary data cache -- a set-associative SRAM with ideal, banked,
  or duplicate ports and a 1-3 cycle pipelined hit time (sections
  2.1-2.2), **or** a DRAM row-buffer cache (section 2.4);
* four MSHRs making the cache lockup-free;
* behind it, either the 4 MB L2 + main memory (SRAM mode) or the 4 MB
  on-chip DRAM array + main memory (DRAM mode).

Timing contract with the CPU core: ``load``/``store`` are called with
the cycle at which the reference's address is ready; they return an
:class:`~repro.memory.common.AccessResult` whose ``completion_cycle``
is when the data is available.  Contention (ports, banks, MSHRs, buses)
is folded in by the timestamped-resource models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.memory.backside import BacksideConfig, BacksideMemory
from repro.memory.common import AccessResult, ConfigurationError, ServedBy
from repro.memory.dram_cache import DramCacheBackside, DramCacheConfig
from repro.memory.line_buffer import LineBuffer
from repro.memory.mshr import MshrFile
from repro.memory.ports import make_arbiter
from repro.memory.sram import SetAssociativeCache
from repro.memory.stats import MemoryStats
from repro.memory.victim import VictimCache
from repro.observability import attribution, counters, events, trace
from repro.observability.attribution import AttributionAccumulator
from repro.observability.counters import CounterSampler
from repro.robustness.errors import SimulationInvariantError
from repro.robustness.invariants import audit_memory

PORT_POLICIES = ("ideal", "banked", "duplicate")
WRITE_POLICIES = ("write-back", "write-through")


@dataclass(frozen=True)
class MemoryConfig:
    """Configuration of one cache organization from the design space."""

    l1_size: int = 32 * 1024
    l1_assoc: int = 2
    l1_line: int = 32
    l1_hit_cycles: int = 1  #: 1-3; >1 means a pipelined multi-cycle cache
    port_policy: str = "ideal"
    ports: int = 2  #: number of ideal ports (port_policy == "ideal")
    banks: int = 8  #: number of external banks (port_policy == "banked")
    bank_interleave: str = "line"  #: "line" or "page" bank mapping
    line_buffer: bool = False
    line_buffer_entries: int = 32
    mshrs: int = 4
    write_policy: str = "write-back"  #: or "write-through" [Joup93]
    write_allocate: bool = True  #: allocate L1 lines on store misses
    victim_entries: int = 0  #: >0 adds a victim cache [Joup90]
    #: fetch line+1 on every demand miss (stream-buffer-style [Joup90]);
    #: shares MSHRs and buses, so it can also hurt.
    next_line_prefetch: bool = False
    backside: BacksideConfig = field(default_factory=BacksideConfig)
    dram: DramCacheConfig | None = None  #: set => DRAM-cache mode

    def validated(self) -> "MemoryConfig":
        if self.port_policy not in PORT_POLICIES:
            raise ConfigurationError(f"unknown port policy {self.port_policy!r}")
        if not 1 <= self.l1_hit_cycles:
            raise ConfigurationError(f"bad hit time {self.l1_hit_cycles}")
        if self.l1_line & (self.l1_line - 1):
            raise ConfigurationError(f"line size not a power of two: {self.l1_line}")
        if self.write_policy not in WRITE_POLICIES:
            raise ConfigurationError(f"unknown write policy {self.write_policy!r}")
        if self.victim_entries < 0:
            raise ConfigurationError("victim_entries cannot be negative")
        if self.dram is not None and self.write_policy != "write-back":
            raise ConfigurationError("DRAM-cache mode supports write-back only")
        if self.dram is not None:
            # In DRAM mode the primary cache *is* the row-buffer cache.
            return replace(
                self,
                l1_size=self.dram.row_cache_size,
                l1_assoc=self.dram.row_cache_assoc,
                l1_line=self.dram.row_bytes,
                l1_hit_cycles=self.dram.row_cache_hit_cycles,
            )
        return self


class MemorySystem:
    """Facade over the full data-memory hierarchy for one simulation."""

    def __init__(self, config: MemoryConfig):
        config = config.validated()
        self.config = config
        self.l1 = SetAssociativeCache(config.l1_size, config.l1_assoc, config.l1_line)
        self._line_shift = config.l1_line.bit_length() - 1
        self.arbiter = make_arbiter(
            config.port_policy,
            ports=config.ports,
            banks=config.banks,
            interleave=config.bank_interleave,
        )
        self.mshrs = MshrFile(config.mshrs)
        self.line_buffer = (
            LineBuffer(config.line_buffer_entries, config.l1_line)
            if config.line_buffer
            else None
        )
        self.victim_cache = (
            VictimCache(config.victim_entries, config.l1_line)
            if config.victim_entries
            else None
        )
        self.backside: BacksideMemory | DramCacheBackside
        if config.dram is not None:
            self.backside = DramCacheBackside(config.dram)
            self._l1_served = ServedBy.ROW_BUFFER
        else:
            self.backside = BacksideMemory(config.backside, config.l1_line)
            self._l1_served = ServedBy.L1
        self.stats = MemoryStats()
        self._pending_served: dict[int, ServedBy] = {}
        # Port-wait cycles are bank conflicts in banked organizations;
        # resolved once here so the load path stays branch-free.
        self._port_component = (
            "bank_conflict" if config.port_policy == "banked" else "port_wait"
        )
        #: Per-access critical-path accounting; ``None`` (the default)
        #: keeps the load path identical to the unattributed one.
        self.attribution: AttributionAccumulator | None = (
            AttributionAccumulator() if attribution.enabled() else None
        )
        #: Interval counter sampler; ``None`` (the default) keeps the
        #: kernel commit loops' per-commit cost at one ``is None`` test.
        self.counters: CounterSampler | None = (
            CounterSampler(self, counters.interval())
            if counters.enabled()
            else None
        )

    @property
    def line_bytes(self) -> int:
        return self.config.l1_line

    def line_of(self, address: int) -> int:
        return address >> self._line_shift

    def audit(self, cycle: int) -> None:
        """Structural self-check of every cross-structure invariant.

        Cheap enough for the core to run periodically (it walks the
        small buffers and the L1 set metadata, not the address space);
        raises :class:`~repro.robustness.errors.SimulationInvariantError`
        with a rendered state dump on any breach.
        """
        audit_memory(self, cycle)

    # ------------------------------------------------------------------
    # Functional warm-up
    # ------------------------------------------------------------------

    def prefill_backside(self, l1_lines: "list[int] | tuple[int, ...]") -> None:
        """Install lines into the L2 (or DRAM array) state, no timing.

        Models the steady state of a long run: after the paper's 100M+
        instructions, the 4 MB second level holds (as much as fits of)
        the workload's entire footprint, so compulsory misses are
        negligible in the measured region.  Lines are given in L1-line
        units; capacity and LRU behavior of the second level still apply.
        """
        backside = self.backside
        if isinstance(backside, DramCacheBackside):
            for line in l1_lines:
                backside.dram.fill(line)
        else:
            shift = backside._line_shift
            previous = None
            for line in l1_lines:
                l2_line = line >> shift
                if l2_line != previous:
                    backside.l2.fill(l2_line)
                    previous = l2_line

    def warm(self, references: list[tuple[bool, int]]) -> None:
        """Warm cache *state* from (is_store, address) pairs, no timing.

        Used before timing simulations so that working sets larger than
        the measured instruction window still exhibit steady-state hit
        rates (the paper simulates 100M+ instructions; we warm
        functionally and then measure a shorter timing window).  No
        statistics are recorded and no cycles pass.
        """
        l1 = self.l1
        line_buffer = self.line_buffer
        backside = self.backside
        is_dram = isinstance(backside, DramCacheBackside)
        for is_store, address in references:
            line = address >> self._line_shift
            if line_buffer is not None and not is_store:
                line_buffer._cache.fill(line)
            if l1.lookup(line, write=is_store):
                continue
            if is_dram:
                backside.dram.fill(line)
            else:
                backside.l2.fill(line >> backside._line_shift)
            victim = l1.fill(line, dirty=is_store)
            if victim is not None and line_buffer is not None:
                line_buffer._cache.invalidate(victim.line)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def load(self, address: int, cycle: int) -> AccessResult:
        """A load whose address is ready at ``cycle``."""
        self.stats.loads += 1
        line = self.line_of(address)
        tracer = trace._ACTIVE
        attr = self.attribution
        if self.line_buffer is not None and self.line_buffer.load_lookup(line):
            # If the line's fill is still in flight the buffered copy is
            # not valid yet; data is forwarded when the fill arrives.
            done = self.mshrs.pending_ready(line, cycle + 1) or cycle + 1
            result = AccessResult(done, ServedBy.LINE_BUFFER, cycle)
            self._finish_load(result, cycle)
            path = None
            if attr is not None:
                path = [("line_buffer", 1)]
                fill_wait = done - cycle - 1
                if fill_wait:
                    path.append(("mshr_merge", fill_wait))
                attr.record("lb_hit", done - cycle, path)
            if tracer is not None:
                tracer.capture(events.MEM_LB_HIT, cycle, {"line": line})
                self._capture_access(
                    tracer, events.MEM_LOAD, cycle, line, "lb_hit", result, path
                )
            return result
        start = self.arbiter.reserve(line, cycle)
        if self.l1.lookup(line):
            done = start + self.config.l1_hit_cycles
            in_flight = self.mshrs.pending_ready(line, done)
            if in_flight is not None:
                # Delayed hit: the line is being filled; wait for it.
                # Counted as a hit (no new miss traffic), tracked apart.
                self.stats.l1_load_hits += 1
                self.stats.delayed_hits += 1
                self.mshrs.stats.merged_misses += 1
                served = self._pending_served.get(line, ServedBy.L2)
                result = AccessResult(in_flight, served, start)
                outcome = "delayed_hit"
                tail = (("mshr_merge", in_flight - done),)
            else:
                self.stats.l1_load_hits += 1
                result = AccessResult(done, self._l1_served, start)
                outcome = "l1_hit"
                tail = ()
        else:
            self.stats.l1_load_misses += 1
            result, outcome, tail = self._miss(line, start, dirty=False)
        if self.line_buffer is not None:
            self.line_buffer.fill(line)
        self._finish_load(result, cycle)
        path = None
        if attr is not None:
            path = []
            if start > cycle:
                path.append((self._port_component, start - cycle))
            path.append(("l1_access", self.config.l1_hit_cycles))
            path.extend(tail)
            attr.record(outcome, result.completion_cycle - cycle, path)
        if tracer is not None:
            self._capture_access(
                tracer, events.MEM_LOAD, cycle, line, outcome, result, path
            )
        return result

    @staticmethod
    def _capture_access(
        tracer, kind, cycle, line, outcome, result, path=None
    ) -> None:
        fields = {
            "line": line,
            "outcome": outcome,
            "served": result.served_by.name.lower(),
            "done": result.completion_cycle,
        }
        if path is not None:
            # Attribution active: the event carries the critical-path
            # split so offline trace analyses see the same exact sums.
            fields["path"] = dict(path)
        tracer.capture(kind, cycle, fields)

    def _finish_load(self, result: AccessResult, issue_cycle: int) -> None:
        self.stats.served_by[result.served_by] += 1
        self.stats.load_latency_total += result.completion_cycle - issue_cycle

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def store(self, address: int, cycle: int) -> AccessResult:
        """A buffered store draining to the cache at ``cycle``.

        Write-back, write-allocate.  Duplicate caches write both copies
        (handled by the arbiter's ``reserve_store``).
        """
        self.stats.stores += 1
        line = self.line_of(address)
        tracer = trace._ACTIVE
        if self.line_buffer is not None:
            self.line_buffer.store_update(line)
        start = self.arbiter.reserve_store(line, cycle)
        if self.config.write_policy == "write-through":
            return self._store_through(line, start)
        if self.l1.lookup(line, write=True):
            done = start + self.config.l1_hit_cycles
            in_flight = self.mshrs.pending_ready(line, done)
            if in_flight is not None:
                self.stats.l1_store_hits += 1
                self.stats.delayed_hits += 1
                self.mshrs.stats.merged_misses += 1
                served = self._pending_served.get(line, ServedBy.L2)
                result = AccessResult(in_flight, served, start)
                outcome = "delayed_hit"
            else:
                self.stats.l1_store_hits += 1
                result = AccessResult(done, self._l1_served, start)
                outcome = "l1_hit"
        else:
            self.stats.l1_store_misses += 1
            result, outcome, _ = self._miss(line, start, dirty=True)
        self.stats.served_by[result.served_by] += 1
        if tracer is not None:
            self._capture_access(tracer, events.MEM_STORE, cycle, line, outcome, result)
        return result

    def _store_through(self, line: int, start: int) -> AccessResult:
        """Write-through store: update L1 if present (clean), always send
        the word to the L2 over the chip bus [Joup93].

        With ``write_allocate`` off, a store miss does not disturb the
        L1 at all -- the classic write-through/no-allocate pairing.
        """
        assert isinstance(self.backside, BacksideMemory)
        done = start + self.config.l1_hit_cycles
        if self.l1.lookup(line):
            self.stats.l1_store_hits += 1
            served = self._l1_served
        else:
            self.stats.l1_store_misses += 1
            served = ServedBy.L2
            if self.config.write_allocate:
                response = self.backside.fetch_line(line, done)
                done = response.ready_cycle
                served = response.served_by
                victim = self.l1.fill(line)
                if victim is not None and self.line_buffer is not None:
                    self.line_buffer.invalidate(victim.line)
        transfer = self.backside.write_word_through(line, done)
        result = AccessResult(max(done, transfer), served, start)
        self.stats.served_by[result.served_by] += 1
        tracer = trace._ACTIVE
        if tracer is not None:
            outcome = "wt_hit" if served is self._l1_served else "wt_miss"
            self._capture_access(tracer, events.MEM_STORE, start, line, outcome, result)
        return result

    # ------------------------------------------------------------------
    # Miss handling
    # ------------------------------------------------------------------

    def _miss(
        self, line: int, port_start: int, *, dirty: bool
    ) -> tuple[AccessResult, str, tuple[tuple[str, int], ...]]:
        """Common lockup-free miss path for loads and stores.

        Returns the access result, the miss outcome tag (``victim_hit``
        / ``miss_merged`` / ``miss_alloc``) the caller's trace emission
        carries, and the critical-path components *beyond miss
        detection* -- they sum exactly to ``completion_cycle - detect``,
        so the caller can prepend the port wait and L1 access to get
        the access's full attribution.
        """
        detect = port_start + self.config.l1_hit_cycles
        if self.victim_cache is not None:
            swap_hit, was_dirty = self.victim_cache.probe_and_take(line)
            if swap_hit:
                done = detect + VictimCache.SWAP_PENALTY_CYCLES
                self._install(line, done, dirty=dirty or was_dirty)
                return (
                    AccessResult(done, ServedBy.VICTIM_CACHE, port_start),
                    "victim_hit",
                    (("victim_swap", VictimCache.SWAP_PENALTY_CYCLES),),
                )
        grant = self.mshrs.request(line, detect)
        if grant.merged:
            assert grant.pending_ready is not None
            served = self._pending_served.get(line, ServedBy.L2)
            if dirty:
                self.l1.lookup(line, write=True)  # mark dirty once filled
            result = AccessResult(max(grant.pending_ready, detect), served, port_start)
            if not self.l1.probe(line):
                # The allocating miss installed this line, but it was
                # evicted again while its fill is still in flight.  The
                # arriving fill lands in the L1 regardless, so model
                # that -- it is also what keeps the line-buffer
                # coherence invariant (LB lines reside in the L1): a
                # load caller buffers this line right after this return.
                self._install(line, result.completion_cycle, dirty=dirty)
            merge_wait = result.completion_cycle - detect
            tail = (("mshr_merge", merge_wait),) if merge_wait else ()
            return result, "miss_merged", tail
        response = self.backside.fetch_line(line, grant.start_cycle)
        if response.ready_cycle < grant.start_cycle:
            raise SimulationInvariantError(
                f"fill for line {line:#x} ready at cycle {response.ready_cycle}, "
                f"before its request at cycle {grant.start_cycle}"
            )
        self.mshrs.complete(line, response.ready_cycle, alloc_cycle=grant.start_cycle)
        self._pending_served[line] = response.served_by
        if len(self._pending_served) > 4 * self.config.mshrs:
            self._trim_pending()
        self._install(line, response.ready_cycle, dirty=dirty)
        if self.config.next_line_prefetch:
            self._prefetch(line + 1, response.ready_cycle)
        tail = response.path
        if grant.start_cycle > detect:
            # The miss waited for a free MSHR register before issuing.
            tail = (("mshr_wait", grant.start_cycle - detect),) + tail
        return (
            AccessResult(response.ready_cycle, response.served_by, port_start),
            "miss_alloc",
            tail,
        )

    def _prefetch(self, line: int, cycle: int) -> None:
        """Next-line prefetch into the L1, if a free MSHR allows it.

        The prefetch consumes real resources (an MSHR and bus occupancy)
        but never delays the demand miss that triggered it.  Early
        touches to the prefetched line become delayed hits until its
        fill arrives, via the normal MSHR bookkeeping.
        """
        if self.l1.probe(line) or self.mshrs.pending_ready(line, cycle):
            return
        if self.victim_cache is not None and self.victim_cache.probe(line):
            # Prefetching a line the victim cache holds would leave the
            # same line resident in both structures; a demand miss will
            # recover it with a one-cycle swap anyway.
            return
        if self.mshrs.outstanding(cycle) >= self.mshrs.entries:
            return  # never steal the last MSHR from demand traffic
        self.stats.prefetches_issued += 1
        response = self.backside.fetch_line(line, cycle)
        self.mshrs.complete(line, response.ready_cycle, alloc_cycle=cycle)
        self._pending_served[line] = response.served_by
        self._install(line, response.ready_cycle, dirty=False)

    def _install(self, line: int, ready_cycle: int, *, dirty: bool) -> None:
        """Fill a line into the L1, routing the victim appropriately."""
        victim = self.l1.fill(line, dirty=dirty)
        if victim is None:
            return
        if self.line_buffer is not None:
            self.line_buffer.invalidate(victim.line)
        if self.victim_cache is not None:
            displaced = self.victim_cache.insert(victim.line, victim.dirty)
            if displaced is not None and displaced[1]:
                self.backside.writeback_line(displaced[0], ready_cycle)
        elif victim.dirty:
            self.backside.writeback_line(victim.line, ready_cycle)

    def _trim_pending(self) -> None:
        """Bound the merged-miss bookkeeping map (keep most recent entries).

        Lines the MSHR file still tracks are exempt: a delayed hit on an
        in-flight line reads its entry, and evicting it would fall back
        to the ``ServedBy.L2`` default even for a fill coming from DRAM.
        """
        in_flight = self.mshrs.tracked_lines()
        evictable = [
            line for line in self._pending_served if line not in in_flight
        ]
        surplus = len(evictable) - 2 * self.config.mshrs
        if surplus <= 0:
            return
        drop = set(evictable[:surplus])
        self._pending_served = {
            line: served
            for line, served in self._pending_served.items()
            if line not in drop
        }
