"""The level-zero line buffer (section 2.3) [Wils96].

A small fully-set-associative multi-ported buffer inside the processor's
load/store execution unit.  It holds recently accessed primary-cache
lines so that loads with spatial or temporal locality are satisfied in a
single cycle *without occupying a cache port*, which both raises port
bandwidth and hides the extra latency of pipelined caches.

The paper uses a 32-entry buffer.  It is multi-ported, so any number of
loads may hit it in the same cycle; coherence with the cache is kept by
updating on store hits and invalidating entries whose line leaves the
primary cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.sram import FullyAssociativeCache

DEFAULT_ENTRIES = 32


@dataclass
class LineBufferStats:
    load_lookups: int = 0
    load_hits: int = 0
    fills: int = 0
    store_updates: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        if not self.load_lookups:
            return 0.0
        return self.load_hits / self.load_lookups


class LineBuffer:
    """Fully associative, LRU, one-cycle, port-free level-zero cache."""

    def __init__(self, entries: int = DEFAULT_ENTRIES, line_bytes: int = 32):
        self._cache = FullyAssociativeCache(entries, line_bytes)
        self.entries = entries
        self.line_bytes = line_bytes
        self.stats = LineBufferStats()

    def load_lookup(self, line: int) -> bool:
        """True if a load to ``line`` is satisfied by the buffer."""
        self.stats.load_lookups += 1
        hit = self._cache.lookup(line)
        if hit:
            self.stats.load_hits += 1
        return hit

    def fill(self, line: int) -> None:
        """Install the line returned by a completed cache load."""
        self.stats.fills += 1
        self._cache.fill(line)

    def store_update(self, line: int) -> None:
        """A store writes through: refresh the copy if present (no allocate)."""
        if self._cache.lookup(line):
            self.stats.store_updates += 1

    def invalidate(self, line: int) -> None:
        """The line left the primary cache; drop any stale copy."""
        if self._cache.invalidate(line):
            self.stats.invalidations += 1

    def resident_lines(self) -> list[int]:
        """Lines currently buffered, MRU first (audit/inspection aid)."""
        return self._cache.resident_lines()

    def audit(self) -> list[str]:
        """Structural self-check; returns a list of problem descriptions."""
        return self._cache.audit("line buffer")

    def __len__(self) -> int:
        return len(self._cache)
