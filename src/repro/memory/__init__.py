"""On-chip memory system substrate.

Everything the paper's section 2 and 3 describe on the data side:
set-associative SRAM state, multi-port/banked/duplicate arbitration,
pipelined multi-cycle hits, the level-zero line buffer, MSHRs, the
L2 + main-memory backside with finite buses, and the on-chip DRAM cache
with its row-buffer first-level cache.
"""

from repro.memory.backside import (
    BacksideConfig,
    BacksideMemory,
    BacksideStats,
    FillResponse,
)
from repro.memory.bus import Bus, BusStats, Transfer, bytes_per_cycle
from repro.memory.common import (
    AccessKind,
    AccessResult,
    ConfigurationError,
    ServedBy,
    line_address,
)
from repro.memory.dram_cache import (
    DramCacheBackside,
    DramCacheConfig,
    DramFill,
    DramStats,
)
from repro.memory.hierarchy import (
    PORT_POLICIES,
    WRITE_POLICIES,
    MemoryConfig,
    MemorySystem,
)
from repro.memory.line_buffer import DEFAULT_ENTRIES, LineBuffer, LineBufferStats
from repro.memory.mshr import MshrFile, MshrGrant, MshrStats
from repro.memory.ports import (
    BankedPorts,
    DuplicatePorts,
    IdealPorts,
    PortArbiter,
    PortStats,
    make_arbiter,
)
from repro.memory.sram import Eviction, FullyAssociativeCache, SetAssociativeCache
from repro.memory.stats import MemoryStats
from repro.memory.victim import VictimCache, VictimCacheStats

__all__ = [
    "BacksideConfig",
    "BacksideMemory",
    "BacksideStats",
    "FillResponse",
    "Bus",
    "BusStats",
    "Transfer",
    "bytes_per_cycle",
    "AccessKind",
    "AccessResult",
    "ConfigurationError",
    "ServedBy",
    "line_address",
    "DramCacheBackside",
    "DramCacheConfig",
    "DramFill",
    "DramStats",
    "PORT_POLICIES",
    "WRITE_POLICIES",
    "MemoryConfig",
    "MemorySystem",
    "DEFAULT_ENTRIES",
    "LineBuffer",
    "LineBufferStats",
    "MshrFile",
    "MshrGrant",
    "MshrStats",
    "BankedPorts",
    "DuplicatePorts",
    "IdealPorts",
    "PortArbiter",
    "PortStats",
    "make_arbiter",
    "Eviction",
    "FullyAssociativeCache",
    "SetAssociativeCache",
    "MemoryStats",
    "VictimCache",
    "VictimCacheStats",
]
