"""Aggregate statistics for a memory-system run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.common import ServedBy


@dataclass
class MemoryStats:
    """Counters kept by :class:`repro.memory.hierarchy.MemorySystem`."""

    loads: int = 0
    stores: int = 0
    l1_load_hits: int = 0
    l1_load_misses: int = 0
    l1_store_hits: int = 0
    l1_store_misses: int = 0
    #: references that found their line still in flight (MSHR merge /
    #: delayed hit).  They wait for the outstanding fill but are *not*
    #: new misses -- the paper's miss counts are primary misses.
    delayed_hits: int = 0
    prefetches_issued: int = 0  #: next-line prefetches sent to the L2
    served_by: dict[ServedBy, int] = field(
        default_factory=lambda: {level: 0 for level in ServedBy}
    )
    load_latency_total: int = 0  #: sum over loads of completion - issue

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def l1_misses(self) -> int:
        return self.l1_load_misses + self.l1_store_misses

    @property
    def l1_hits(self) -> int:
        return self.l1_load_hits + self.l1_store_hits

    @property
    def l1_load_miss_rate(self) -> float:
        """Misses per load that reached the cache (line-buffer hits excluded)."""
        reached = self.l1_load_hits + self.l1_load_misses
        return self.l1_load_misses / reached if reached else 0.0

    @property
    def l1_miss_rate(self) -> float:
        reached = self.l1_hits + self.l1_misses
        return self.l1_misses / reached if reached else 0.0

    @property
    def average_load_latency(self) -> float:
        return self.load_latency_total / self.loads if self.loads else 0.0

    def misses_per_instruction(self, instructions: int) -> float:
        """The paper's Figure 3 metric: data-cache misses / instruction."""
        if instructions <= 0:
            raise ValueError(f"instructions must be positive: {instructions}")
        return self.l1_misses / instructions
