"""Shared types for the on-chip memory system models."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessKind(enum.IntEnum):
    """Kind of a data-memory reference."""

    LOAD = 0
    STORE = 1


class ServedBy(enum.IntEnum):
    """The level of the hierarchy that supplied a reference's data."""

    LINE_BUFFER = 0
    L1 = 1
    L2 = 2
    MEMORY = 3
    DRAM_CACHE = 4  #: the on-chip DRAM array behind a row-buffer cache
    ROW_BUFFER = 5  #: the DRAM row-buffer first-level cache
    VICTIM_CACHE = 6  #: a victim-cache swap satisfied the miss [Joup90]


@dataclass(frozen=True)
class AccessResult:
    """Timing outcome of a single data reference.

    ``completion_cycle`` is when the data is available to dependents (for
    loads) or when the write has retired into the cache (for stores).
    ``port_start_cycle`` is when the reference actually won a cache port
    (equal to the issue cycle unless it waited for a port, bank, or
    MSHR); line-buffer hits never occupy a port and report the issue
    cycle.
    """

    completion_cycle: int
    served_by: ServedBy
    port_start_cycle: int

    @property
    def latency(self) -> int:
        """Convenience: completion relative to port start."""
        return self.completion_cycle - self.port_start_cycle


def line_address(byte_address: int, line_bytes: int) -> int:
    """The cache-line index containing ``byte_address``."""
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ValueError(f"line size must be a power of two: {line_bytes}")
    return byte_address >> line_bytes.bit_length() - 1


class ConfigurationError(ValueError):
    """Raised when a memory-system configuration is internally inconsistent."""
