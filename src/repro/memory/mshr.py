"""Miss status handling registers (lockup-free cache support) [Fark94].

The paper's primary data cache has four MSHRs: up to four distinct lines
may be outstanding to the L2/memory at once, and further references to a
pending line merge into its MSHR (secondary misses) instead of issuing a
new request.  When all four registers hold distinct pending lines, a new
primary miss must wait for the earliest register to retire.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability import events, trace


@dataclass
class MshrStats:
    primary_misses: int = 0
    merged_misses: int = 0  #: secondary misses absorbed by a pending entry
    full_stall_cycles: int = 0  #: cycles a primary miss waited for a register


@dataclass
class MshrGrant:
    """Outcome of asking the MSHR file to track a missing line."""

    start_cycle: int  #: when the miss request may go to the next level
    merged: bool  #: True if an existing entry for the line was joined
    pending_ready: int | None  #: for merged grants, the existing fill time


class MshrFile:
    """A fixed-size file of miss status handling registers."""

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError(f"need at least one MSHR, got {entries}")
        self.entries = entries
        self.stats = MshrStats()
        # line -> cycle at which its fill completes and the register frees
        self._pending: dict[int, int] = {}
        #: High-water pending-fill count; read-and-reset by the interval
        #: counter sampler at each boundary (and by ``_reset_stats``).
        self.occupancy_peak = 0

    def outstanding(self, cycle: int) -> int:
        """Number of registers still busy at ``cycle``."""
        return sum(1 for ready in self._pending.values() if ready > cycle)

    def request(self, line: int, cycle: int) -> MshrGrant:
        """Ask to track a miss on ``line`` observed at ``cycle``."""
        self._expire(cycle)
        tracer = trace._ACTIVE
        ready = self._pending.get(line)
        if ready is not None:
            self.stats.merged_misses += 1
            if tracer is not None:
                tracer.capture(events.MEM_MSHR_MERGE, cycle, {"line": line})
            return MshrGrant(start_cycle=cycle, merged=True, pending_ready=ready)
        self.stats.primary_misses += 1
        start = cycle
        if len(self._pending) >= self.entries:
            # Wait for the earliest outstanding fill to retire its register.
            earliest_line = min(self._pending, key=self._pending.__getitem__)
            start = max(cycle, self._pending[earliest_line])
            del self._pending[earliest_line]
            self.stats.full_stall_cycles += start - cycle
        if tracer is not None:
            tracer.capture(events.MEM_MSHR_ALLOC, cycle, {"line": line, "start": start})
        return MshrGrant(start_cycle=start, merged=False, pending_ready=None)

    def pending_ready(self, line: int, cycle: int) -> int | None:
        """If ``line``'s fill is still in flight at ``cycle``, its ready time.

        Used to model *delayed hits*: the functional cache state is
        updated as soon as a miss is processed, so a later reference can
        find the line present even though its data has not physically
        arrived; such a reference must wait for the outstanding fill.
        """
        ready = self._pending.get(line)
        if ready is not None and ready > cycle:
            return ready
        return None

    def complete(
        self, line: int, fill_cycle: int, alloc_cycle: int | None = None
    ) -> None:
        """Record when the fill for ``line`` will arrive (frees the MSHR).

        ``alloc_cycle`` (the grant's start cycle) rides the fill event
        as an allocation->fill pair, so trace consumers (the Chrome
        exporter's async arrows) get the whole in-flight window from
        one event even when the alloc event has fallen off the ring.
        """
        self._pending[line] = fill_cycle
        if len(self._pending) > self.occupancy_peak:
            self.occupancy_peak = len(self._pending)
        tracer = trace._ACTIVE
        if tracer is not None:
            fields = {"line": line, "ready": fill_cycle}
            if alloc_cycle is not None:
                fields["alloc"] = alloc_cycle
            tracer.capture(events.MEM_MSHR_FILL, fill_cycle, fields)

    def tracked_lines(self) -> frozenset[int]:
        """Lines whose fills this file still tracks (possibly in flight)."""
        return frozenset(self._pending)

    def _expire(self, cycle: int) -> None:
        done = [line for line, ready in self._pending.items() if ready <= cycle]
        for line in done:
            del self._pending[line]
