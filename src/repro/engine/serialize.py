"""To/from-dict serialization for design points and their results.

Everything that crosses a process boundary (parallel workers) or lands
on disk (the persistent result store) goes through these converters:
configuration dataclasses on the way out to workers, and
:class:`~repro.cpu.result.SimulationResult` trees on the way back.

The dict forms are plain JSON types only (str/int/float/bool/None,
lists, string-keyed dicts) and the round trip is bit-identical: ints
stay ints, floats survive via JSON's shortest-repr encoding, enum keys
become their names, and tuples are restored as tuples.  Schema changes
here must bump :data:`repro.engine.store.SCHEMA_VERSION` so stale
on-disk entries are ignored rather than misread.

Schema v3: ``SimulationResult.metrics`` may carry the attribution
export -- integer component/outcome/bucket counters plus float
``attribution.latency.p50/p95/p99`` percentiles -- and, when a trace
ring overflowed during the run, ``trace.dropped_events``.  All are
plain JSON scalars in the existing flat metrics dict, so the
converters below need no shape change; the version bump exists to
retire v2 entries whose metrics predate those keys' semantics.

Schema v4: ``SimulationResult.counters`` may carry the interval-sampled
counter series (:mod:`repro.observability.counters`) -- a columnar dict
of an ``interval``, a ``columns`` name list, and parallel per-column
int lists -- or ``None`` when sampling was off.  It serializes as-is
(already plain JSON types) with a tolerant read, and lives only in the
store payload; the run ledger records a bounded digest instead.
"""

from __future__ import annotations

from repro.core.organizations import CacheOrganization
from repro.cpu.branch import BranchStats
from repro.cpu.config import ProcessorConfig
from repro.cpu.result import PipelineStats, SimulationResult
from repro.memory.backside import BacksideConfig
from repro.memory.common import ServedBy
from repro.memory.dram_cache import DramCacheConfig
from repro.memory.stats import MemoryStats


class SerializationError(ValueError):
    """A dict form does not match the schema these converters emit."""


def _require(mapping: dict, *names: str) -> None:
    missing = [name for name in names if name not in mapping]
    if missing:
        raise SerializationError(f"missing fields: {', '.join(missing)}")


# ---------------------------------------------------------------------------
# Configuration side: what a worker needs to rebuild a design point
# ---------------------------------------------------------------------------


def processor_config_to_dict(config: ProcessorConfig) -> dict:
    return {
        "fetch_width": config.fetch_width,
        "issue_width": config.issue_width,
        "commit_width": config.commit_width,
        "window_size": config.window_size,
        "lsq_size": config.lsq_size,
        "branch_predictor": config.branch_predictor,
        "predictor_entries": config.predictor_entries,
        "mispredict_redirect_penalty": config.mispredict_redirect_penalty,
        "store_forwarding": config.store_forwarding,
        "fu_limits": (
            None
            if config.fu_limits is None
            else [[unit, count] for unit, count in config.fu_limits]
        ),
        "watchdog_stall_cycles": config.watchdog_stall_cycles,
        "audit_interval_commits": config.audit_interval_commits,
    }


def processor_config_from_dict(data: dict) -> ProcessorConfig:
    _require(data, "fetch_width", "window_size", "lsq_size")
    fu_limits = data.get("fu_limits")
    return ProcessorConfig(
        fetch_width=data["fetch_width"],
        issue_width=data["issue_width"],
        commit_width=data["commit_width"],
        window_size=data["window_size"],
        lsq_size=data["lsq_size"],
        branch_predictor=data["branch_predictor"],
        predictor_entries=data["predictor_entries"],
        mispredict_redirect_penalty=data["mispredict_redirect_penalty"],
        store_forwarding=data["store_forwarding"],
        fu_limits=(
            None
            if fu_limits is None
            else tuple((unit, count) for unit, count in fu_limits)
        ),
        watchdog_stall_cycles=data["watchdog_stall_cycles"],
        audit_interval_commits=data["audit_interval_commits"],
    )


def backside_config_to_dict(config: BacksideConfig) -> dict:
    return {
        "l2_size": config.l2_size,
        "l2_assoc": config.l2_assoc,
        "l2_line": config.l2_line,
        "l2_hit_cycles": config.l2_hit_cycles,
        "memory_cycles": config.memory_cycles,
        "chip_bus_bytes_per_cycle": config.chip_bus_bytes_per_cycle,
        "memory_bus_bytes_per_cycle": config.memory_bus_bytes_per_cycle,
    }


def backside_config_from_dict(data: dict) -> BacksideConfig:
    _require(data, "l2_size", "memory_cycles")
    return BacksideConfig(**data)


def dram_config_to_dict(config: DramCacheConfig) -> dict:
    return {
        "dram_size": config.dram_size,
        "dram_assoc": config.dram_assoc,
        "row_bytes": config.row_bytes,
        "dram_hit_cycles": config.dram_hit_cycles,
        "dram_banks": config.dram_banks,
        "row_cache_size": config.row_cache_size,
        "row_cache_assoc": config.row_cache_assoc,
        "row_cache_hit_cycles": config.row_cache_hit_cycles,
        "memory_cycles": config.memory_cycles,
        "memory_bus_bytes_per_cycle": config.memory_bus_bytes_per_cycle,
    }


def dram_config_from_dict(data: dict) -> DramCacheConfig:
    _require(data, "dram_size", "dram_hit_cycles")
    return DramCacheConfig(**data)


def organization_to_dict(organization: CacheOrganization) -> dict:
    return {
        "size_bytes": organization.size_bytes,
        "hit_cycles": organization.hit_cycles,
        "port_policy": organization.port_policy,
        "ports": organization.ports,
        "banks": organization.banks,
        "bank_interleave": organization.bank_interleave,
        "line_buffer": organization.line_buffer,
        "line_buffer_entries": organization.line_buffer_entries,
        "dram": (
            None if organization.dram is None else dram_config_to_dict(organization.dram)
        ),
        "associativity": organization.associativity,
        "line_bytes": organization.line_bytes,
        "mshrs": organization.mshrs,
        "write_policy": organization.write_policy,
        "write_allocate": organization.write_allocate,
        "victim_entries": organization.victim_entries,
        "next_line_prefetch": organization.next_line_prefetch,
    }


def organization_from_dict(data: dict) -> CacheOrganization:
    _require(data, "size_bytes", "port_policy")
    dram = data.get("dram")
    fields = dict(data)
    fields["dram"] = None if dram is None else dram_config_from_dict(dram)
    return CacheOrganization(**fields)


def settings_to_dict(settings) -> dict:
    """Serialize :class:`~repro.core.experiment.ExperimentSettings`.

    Typed loosely to dodge the experiment<->engine import cycle; the
    object shape is what matters.
    """
    return {
        "instructions": settings.instructions,
        "timing_warmup": settings.timing_warmup,
        "functional_warmup": settings.functional_warmup,
        "seed": settings.seed,
        "cpu": processor_config_to_dict(settings.cpu),
        "backside": backside_config_to_dict(settings.backside),
    }


def settings_from_dict(data: dict):
    from repro.core.experiment import ExperimentSettings

    _require(data, "instructions", "cpu", "backside")
    return ExperimentSettings(
        instructions=data["instructions"],
        timing_warmup=data["timing_warmup"],
        functional_warmup=data["functional_warmup"],
        seed=data["seed"],
        cpu=processor_config_from_dict(data["cpu"]),
        backside=backside_config_from_dict(data["backside"]),
    )


# ---------------------------------------------------------------------------
# Result side: what a worker sends back / what the store persists
# ---------------------------------------------------------------------------


def memory_stats_to_dict(stats: MemoryStats) -> dict:
    return {
        "loads": stats.loads,
        "stores": stats.stores,
        "l1_load_hits": stats.l1_load_hits,
        "l1_load_misses": stats.l1_load_misses,
        "l1_store_hits": stats.l1_store_hits,
        "l1_store_misses": stats.l1_store_misses,
        "delayed_hits": stats.delayed_hits,
        "prefetches_issued": stats.prefetches_issued,
        "served_by": {level.name: count for level, count in stats.served_by.items()},
        "load_latency_total": stats.load_latency_total,
    }


def memory_stats_from_dict(data: dict) -> MemoryStats:
    _require(data, "loads", "served_by")
    raw = data["served_by"]
    unknown = set(raw) - {level.name for level in ServedBy}
    if unknown:
        raise SerializationError(f"unknown ServedBy levels: {sorted(unknown)}")
    # Rebuild in enum-declaration order so the dict is identical to the
    # one MemoryStats' default factory would have produced.
    served_by = {level: raw.get(level.name, 0) for level in ServedBy}
    return MemoryStats(
        loads=data["loads"],
        stores=data["stores"],
        l1_load_hits=data["l1_load_hits"],
        l1_load_misses=data["l1_load_misses"],
        l1_store_hits=data["l1_store_hits"],
        l1_store_misses=data["l1_store_misses"],
        delayed_hits=data["delayed_hits"],
        prefetches_issued=data["prefetches_issued"],
        served_by=served_by,
        load_latency_total=data["load_latency_total"],
    )


def result_to_dict(result: SimulationResult) -> dict:
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "op_counts": dict(result.op_counts),
        "pipeline": {
            "window_full_stalls": result.pipeline.window_full_stalls,
            "lsq_full_stalls": result.pipeline.lsq_full_stalls,
            "mispredict_stall_cycles": result.pipeline.mispredict_stall_cycles,
            "store_forwards": result.pipeline.store_forwards,
        },
        "branches": {
            "branches": result.branches.branches,
            "mispredictions": result.branches.mispredictions,
        },
        "memory": memory_stats_to_dict(result.memory),
        "metrics": dict(result.metrics),
        "failed": result.failed,
        "backend": result.backend,
        "counters": result.counters,
    }


def result_from_dict(data: dict) -> SimulationResult:
    _require(data, "instructions", "cycles", "memory")
    return SimulationResult(
        instructions=data["instructions"],
        cycles=data["cycles"],
        op_counts=dict(data["op_counts"]),
        pipeline=PipelineStats(**data["pipeline"]),
        branches=BranchStats(**data["branches"]),
        memory=memory_stats_from_dict(data["memory"]),
        metrics=dict(data.get("metrics") or {}),
        failed=data["failed"],
        # Provenance only; pre-seam store entries simply have no record
        # of which backend ran (tolerant read, no schema bump -- the
        # measurements themselves are backend-independent by contract).
        backend=data.get("backend", ""),
        # Tolerant read: entries written without sampling carry None.
        counters=data.get("counters"),
    )
