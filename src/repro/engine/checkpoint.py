"""Crash-safe sweep checkpoints: a durable record of what finished.

The content-addressed store makes re-execution cheap -- any point a dead
run completed is a store hit next time -- but the store cannot say
*which sweep* was running or *what remains* of it.  A checkpoint can:
``ExecutionPlan.execute`` keeps one JSONL file per plan under
``<store-root>/checkpoints/<plan_digest>.jsonl`` while the batch runs.

Layout: the first line is a ``sweep`` header carrying the plan digest
and every planned point's full key dict (enough to rebuild the plan in
a fresh process -- ``repro runs resume``); each completed point then
appends one single-line ``point`` mark via ``O_APPEND``, so a crash at
any instant loses at most the mark being written, never tears an
earlier one.  Reads skip torn or corrupt lines for the same reason the
store treats damaged entries as misses: a checkpoint is protection,
never a prerequisite.

The checkpoint never steers execution -- skipping already-done work is
the store's job, which is what keeps resumed output bit-identical to an
uninterrupted run.  It exists to *report*: how much of an interrupted
sweep survives, and which keys to re-plan.  A cleanly completed sweep
deletes its checkpoint; one that ends with gaps or an interrupt keeps
it, so ``--resume`` and ``repro runs resume`` have something to read.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

from repro.engine.key import ExperimentKey
from repro.engine.ledger import plan_digest

#: Checkpoint directory name, directly under the store root (outside
#: the ``v*/??/`` shard layout, like the run ledger).
CHECKPOINT_DIR = "checkpoints"

#: Outcomes that mean "this point needs no re-execution".
COMPLETED_OUTCOMES = frozenset({"memo", "store", "simulated", "recovered"})


class SweepCheckpoint:
    """One plan's checkpoint file: header plus append-only point marks."""

    def __init__(self, path: Path | str, digest: str):
        self.path = Path(path)
        self.digest = digest

    @classmethod
    def for_plan(
        cls, root: Path | str, keys: Iterable[ExperimentKey]
    ) -> "SweepCheckpoint":
        digest = plan_digest(keys)
        path = Path(root) / CHECKPOINT_DIR / f"{digest}.jsonl"
        return cls(path, digest)

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def read(self) -> tuple[dict | None, dict[str, str]]:
        """``(header, {point digest: last recorded outcome})``.

        Torn or corrupt lines are skipped -- the mark a crash tore is
        simply lost, which only means that one point re-executes.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return None, {}
        header: dict | None = None
        marks: dict[str, str] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if not isinstance(entry, dict):
                continue
            if entry.get("type") == "sweep" and header is None:
                header = entry
            elif entry.get("type") == "point" and "digest" in entry:
                marks[entry["digest"]] = entry.get("outcome", "")
        return header, marks

    def completed(self) -> set[str]:
        """Digests of points an earlier run finished successfully."""
        _, marks = self.read()
        return {
            digest
            for digest, outcome in marks.items()
            if outcome in COMPLETED_OUTCOMES
        }

    def keys(self) -> list[ExperimentKey]:
        """The planned keys, rebuilt from the header's stored key dicts.

        Settings inside a key dict are already scaled -- callers must
        plan them through :meth:`ExecutionPlan.add_key`, which does not
        re-apply ``REPRO_SCALE``.
        """
        header, _ = self.read()
        if header is None:
            return []
        keys = []
        for row in header.get("points", []):
            try:
                keys.append(ExperimentKey.from_dict(row["key"]))
            except Exception:  # noqa: BLE001 - a rotted row loses one point
                continue
        return keys

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------

    def begin(self, keys: Iterable[ExperimentKey]) -> int:
        """Start (or continue) the checkpoint for this plan.

        When a file from an earlier run of the same plan exists, it is
        kept as-is and the number of planned points that run already
        completed is returned -- the resume count.  Otherwise a fresh
        header is written atomically and 0 comes back.  I/O failures
        disable checkpointing silently, never the sweep.
        """
        keys = list(keys)
        header, marks = self.read()
        if header is not None and header.get("plan_digest") == self.digest:
            planned = {key.digest for key in keys}
            return sum(
                1
                for digest, outcome in marks.items()
                if digest in planned and outcome in COMPLETED_OUTCOMES
            )
        entry = {
            "type": "sweep",
            "plan_digest": self.digest,
            "points": [
                {
                    "digest": key.digest,
                    "label": key.label,
                    "workload": key.workload,
                    "key": key.to_dict(),
                }
                for key in sorted(keys, key=lambda k: k.digest)
            ],
        }
        try:
            payload = json.dumps(entry, separators=(",", ":")) + "\n"
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            pass
        return 0

    def mark(self, key: ExperimentKey, outcome: str) -> None:
        """Append one completion mark: a single ``O_APPEND`` line."""
        line = json.dumps(
            {"type": "point", "digest": key.digest, "outcome": outcome},
            separators=(",", ":"),
        )
        try:
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, (line + "\n").encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass

    def remove(self) -> None:
        """Delete the checkpoint (a cleanly completed sweep needs none)."""
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Progress summary for the CLI: planned / completed / remaining."""
        header, marks = self.read()
        planned = (
            [row.get("digest", "") for row in header.get("points", [])]
            if header is not None
            else []
        )
        done = {
            digest
            for digest, outcome in marks.items()
            if outcome in COMPLETED_OUTCOMES
        }
        return {
            "path": str(self.path),
            "plan_digest": self.digest,
            "planned": len(planned),
            "completed": sum(1 for digest in planned if digest in done),
            "remaining": sum(1 for digest in planned if digest not in done),
        }


# ---------------------------------------------------------------------------
# Discovery: repro runs resume <ref>
# ---------------------------------------------------------------------------


def list_checkpoints(root: Path | str) -> list[SweepCheckpoint]:
    """Every checkpoint under ``root``, most recently touched first."""
    directory = Path(root) / CHECKPOINT_DIR
    if not directory.is_dir():
        return []
    paths = []
    for path in directory.glob("*.jsonl"):
        try:
            paths.append((path.stat().st_mtime, path))
        except OSError:
            continue
    paths.sort(key=lambda item: item[0], reverse=True)
    return [SweepCheckpoint(path, path.stem) for _, path in paths]


def resolve_checkpoint(root: Path | str, ref: str) -> "SweepCheckpoint | None":
    """A checkpoint by reference: ``last`` or a plan-digest prefix."""
    checkpoints = list_checkpoints(root)
    if not checkpoints:
        return None
    if ref == "last":
        return checkpoints[0]
    matches = [cp for cp in checkpoints if cp.digest.startswith(ref)]
    if len(matches) == 1:
        return matches[0]
    return None
