"""Batched, parallel, cached execution of design points.

The engine turns "call ``run_experiment`` in a loop" into a scheduled
workload:

* **plan** -- an :class:`ExecutionPlan` collects design points up front
  (:meth:`ExecutionPlan.add` returns the point's
  :class:`~repro.engine.key.ExperimentKey` and deduplicates repeats);
* **execute** -- :meth:`ExecutionPlan.execute` resolves every planned
  point at once: first from the in-memory memo, then from the
  persistent :class:`~repro.engine.store.ResultStore`, and only then by
  simulating -- serially, or fanned out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` when the engine is
  configured with ``jobs > 1``;
* **resolve** -- :meth:`ExecutionPlan.resolve` hands back the
  :class:`~repro.cpu.result.SimulationResult` for a key.

Worker protocol: a worker receives the key's dict form, rebuilds the
design point (the workload comes from the benchmark catalog by name),
runs the bare simulation, and ships the result back as a dict -- or a
``{"status": "error", ...}`` payload carrying the failure.  The parent
then applies exactly the same resilience policy as a serial run: retry
at a reduced instruction budget, record a
:class:`~repro.robustness.runner.FailureRecord` in the active failure
log, and fall back to a NaN gap sentinel.  Results are bit-identical to
serial execution because the simulation itself is deterministic and the
serialization round trip is exact.

Points whose :class:`~repro.workloads.generator.WorkloadSpec` is not
the catalog entry for its name (custom workloads) cannot be rebuilt in
a worker and are evaluated in the parent; they are also kept out of the
disk store, whose content address covers only the workload *name*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cpu.result import SimulationResult
from repro.engine.key import ExperimentKey
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.engine.store import ResultStore
from repro.observability import telemetry
from repro.observability import trace as obs_trace
from repro.observability.events import (
    ENGINE_CACHE_HIT,
    ENGINE_EXECUTE,
    ENGINE_PLAN,
    ENGINE_RESUME,
    ENGINE_RUN_RECORD,
)
from repro.workloads.catalog import BENCHMARKS, benchmark

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.experiment import ExperimentSettings
    from repro.workloads.generator import WorkloadSpec


class WorkerFailureError(RuntimeError):
    """A design point failed inside a worker with no failure log active."""

    def __init__(self, key: ExperimentKey, error_type: str, message: str):
        super().__init__(f"{key.label}: {error_type}: {message}")
        self.key = key
        self.error_type = error_type
        self.message = message


def _is_catalog_spec(spec: "WorkloadSpec") -> bool:
    """True when a worker can rebuild ``spec`` from the catalog by name."""
    return BENCHMARKS.get(spec.name) == spec


def run_point_payload(key_dict: dict) -> dict:
    """Worker entry point: simulate one design point from its dict form.

    Must stay a module-level function so every multiprocessing start
    method can import it.  Settings arrive already scaled -- workers
    never re-apply ``REPRO_SCALE``.  Failures are captured and returned
    as data; the parent owns retry/record policy.
    """
    from repro.core import experiment
    from repro.robustness.deadline import point_deadline

    key = ExperimentKey.from_dict(key_dict)
    # Live telemetry: a beacon exists only when the parent opened a
    # heartbeat channel (pool initializer installed the queue); it
    # observes commits but never influences the simulation.
    beacon = telemetry.point_beacon(key)
    if beacon is not None:
        telemetry.install_beacon(beacon)
        beacon.start()
    try:
        spec = benchmark(key.workload)
        # Workers self-enforce the wall-clock budget (inherited via
        # REPRO_POINT_TIMEOUT); the parent's grace kill is the backstop
        # for a worker too wedged to reach the cooperative check.
        with point_deadline():
            result = experiment._simulate(key.organization, spec, key.settings)
    except Exception as error:  # noqa: BLE001 - shipped back, not swallowed
        if beacon is not None:
            beacon.end("error", type(error).__name__)
        return {
            "status": "error",
            "error_type": type(error).__name__,
            "message": experiment._failure_message(error),
        }
    finally:
        if beacon is not None:
            telemetry.clear_beacon()
    if beacon is not None:
        beacon.end("ok")
    return {"status": "ok", "result": result_to_dict(result)}


class Engine:
    """Process-wide execution state: memo, store, and parallelism."""

    def __init__(self, jobs: int = 1, store: ResultStore | None = None):
        self.jobs = jobs
        self.store = store
        self.memo: dict[ExperimentKey, SimulationResult] = {}
        #: The active sweep checkpoint, installed by ``ExecutionPlan
        #: .execute`` for the duration of one batch; ``None`` otherwise.
        self.checkpoint = None

    def _mark(self, key: ExperimentKey, outcome: str) -> None:
        """Record one resolved point in the active checkpoint, if any."""
        checkpoint = self.checkpoint
        if checkpoint is not None:
            checkpoint.mark(key, outcome)

    # ------------------------------------------------------------------
    # Cache layers
    # ------------------------------------------------------------------

    def lookup(
        self, key: ExperimentKey, spec: "WorkloadSpec"
    ) -> SimulationResult | None:
        """Memo first, then the disk store (promoting hits to the memo)."""
        cached = self.memo.get(key)
        if cached is not None:
            obs_trace.emit(ENGINE_CACHE_HIT, 0, key=key.label, layer="memo")
            return cached
        if self.store is not None and _is_catalog_spec(spec):
            stored = self.store.load(key)
            if stored is not None:
                self.memo[key] = stored
                obs_trace.emit(ENGINE_CACHE_HIT, 0, key=key.label, layer="store")
                return stored
        return None

    def remember(
        self, key: ExperimentKey, spec: "WorkloadSpec", result: SimulationResult
    ) -> None:
        self.memo[key] = result
        if self.store is not None and _is_catalog_spec(spec):
            self.store.save(key, result)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_point(
        self,
        key: ExperimentKey,
        spec: "WorkloadSpec",
        outcomes: "dict[ExperimentKey, str] | None" = None,
    ) -> SimulationResult:
        """One design point, serial, with the standard resilience policy.

        Matches the historical ``run_experiment`` semantics: outside a
        :func:`~repro.robustness.runner.resilient_sweeps` context errors
        propagate; inside one, a failure is retried at reduced budget
        and recorded.  Successful full-budget results are memoized (and
        persisted); recovered/gap results are not, so the next run gets
        a fresh attempt.

        ``outcomes``, when given, receives how the point resolved
        (``simulated`` / ``recovered`` / ``gap``) for the run ledger.
        """
        from repro.core import experiment
        from repro.robustness.deadline import point_deadline
        from repro.robustness.runner import current_failure_log

        log = current_failure_log()
        hub = telemetry.active_hub()
        point = telemetry._point_id(key)
        if hub is not None:
            hub.point_started(point, key.label)
        beacon = (
            telemetry.point_beacon(key, send=hub.handle)
            if hub is not None
            else None
        )
        if beacon is not None:
            telemetry.install_beacon(beacon)
            beacon.start()
        try:
            with point_deadline():
                result = experiment._simulate(
                    key.organization, spec, key.settings
                )
        except Exception as error:  # noqa: BLE001 - isolation is the point
            if beacon is not None:
                beacon.end("error", type(error).__name__)
            if log is None:
                raise
            return self._retry(
                key,
                spec,
                log,
                type(error).__name__,
                experiment._failure_message(error),
                outcomes,
            )
        finally:
            if beacon is not None:
                telemetry.clear_beacon()
        if beacon is not None:
            beacon.end("ok")
        self.remember(key, spec, result)
        self._mark(key, "simulated")
        if outcomes is not None:
            outcomes[key] = "simulated"
        if hub is not None:
            hub.point_finished(point, key.label, "simulated")
        return result

    def _retry(
        self,
        key: ExperimentKey,
        spec: "WorkloadSpec",
        log,
        error_type: str,
        message: str,
        outcomes: "dict[ExperimentKey, str] | None",
    ) -> SimulationResult:
        """In-parent resilience tail, with telemetry around the retry."""
        from repro.core import experiment

        hub = telemetry.active_hub()
        point = telemetry._point_id(key)
        if hub is not None:
            hub.point_retrying(point, key.label, 2)
        beacon = (
            telemetry.point_beacon(key, send=hub.handle, attempt=2)
            if hub is not None
            else None
        )
        if beacon is not None:
            telemetry.install_beacon(beacon)
            beacon.start()
        try:
            result = experiment._retry_reduced(
                key.organization, spec, key.settings, log, error_type, message
            )
        finally:
            if beacon is not None:
                telemetry.clear_beacon()
        # ``_retry_reduced`` always records exactly one outcome.
        outcome = log.records[-1].resolution if log.records else "gap"
        if beacon is not None:
            beacon.end("ok" if outcome == "recovered" else "error", error_type)
        self._mark(key, outcome)
        if outcomes is not None:
            outcomes[key] = outcome
        if hub is not None:
            hub.point_finished(point, key.label, outcome)
        return result

    def run_batch(
        self,
        points: "dict[ExperimentKey, WorkloadSpec]",
        outcomes: "dict[ExperimentKey, str] | None" = None,
        results: "dict[ExperimentKey, SimulationResult] | None" = None,
    ) -> dict[ExperimentKey, SimulationResult]:
        """Resolve every planned point; simulate only what is missing.

        ``outcomes`` (for the run ledger) receives per-key resolution:
        ``memo`` / ``store`` for cache layers, ``simulated`` /
        ``recovered`` / ``gap`` / ``timeout`` for fresh work.

        ``results``, when given, is filled *in place* as points resolve,
        so a caller catching :class:`~repro.robustness.shutdown.
        SweepInterrupted` still holds everything that did finish.  A
        shutdown request stops the batch between design points.
        """
        from repro.robustness.runner import current_failure_log
        from repro.robustness.shutdown import SweepInterrupted, shutdown_requested

        hub = telemetry.active_hub()
        if hub is not None:
            hub.batch_started(len(points))
            hub.attach_failure_log(current_failure_log())
        if results is None:
            results = {}
        pending: list[tuple[ExperimentKey, WorkloadSpec]] = []
        for key, spec in points.items():
            in_memo = key in self.memo
            cached = self.lookup(key, spec)
            if cached is not None:
                results[key] = cached
                layer = "memo" if in_memo else "store"
                self._mark(key, layer)
                if outcomes is not None:
                    outcomes[key] = layer
                if hub is not None:
                    hub.point_cached(telemetry._point_id(key), key.label, layer)
            else:
                pending.append((key, spec))
                if hub is not None:
                    hub.point_queued(telemetry._point_id(key), key.label)
        obs_trace.emit(
            ENGINE_EXECUTE,
            0,
            planned=len(points),
            cached=len(results),
            simulated=len(pending),
            jobs=self.jobs,
        )
        if not pending:
            return results
        if self.jobs > 1:
            remote = [(k, s) for k, s in pending if _is_catalog_spec(s)]
            local = [(k, s) for k, s in pending if not _is_catalog_spec(s)]
            if len(remote) > 1:
                try:
                    self._run_parallel(remote, outcomes, results)
                except SweepInterrupted:
                    raise SweepInterrupted(
                        len(results), len(points) - len(results)
                    ) from None
            else:
                local = pending
        else:
            local = pending
        for key, spec in local:
            if shutdown_requested():
                raise SweepInterrupted(len(results), len(points) - len(results))
            results[key] = self.run_point(key, spec, outcomes)
        return results

    def _run_parallel(
        self,
        points: "list[tuple[ExperimentKey, WorkloadSpec]]",
        outcomes: "dict[ExperimentKey, str] | None" = None,
        results: "dict[ExperimentKey, SimulationResult] | None" = None,
    ) -> dict[ExperimentKey, SimulationResult]:
        """Fan design points out over worker processes.

        Futures are consumed in submission order so retries, failure
        records, and results are ordered exactly as a serial run would
        order them.  A broken pool (worker killed by the OS) degrades to
        in-parent execution for the affected points instead of aborting
        the sweep.  With a telemetry hub active, the pool initializer
        hands every worker the heartbeat queue; heartbeats only observe,
        so results stay bit-identical to serial.

        Two wall-clock guards run in the wait loop:

        * with a point timeout configured, a worker silent past the
          budget *plus grace* is killed (the cooperative in-worker
          deadline normally fires first; this backstop catches workers
          wedged where no tick runs, e.g. inside a blocking syscall) --
          the pool breaks, the dead point becomes a ``timeout`` gap,
          and the remaining points fall back to in-parent execution,
          each still under its own deadline;
        * a shutdown request cancels every not-yet-started future and
          drains the in-flight ones, then raises
          :class:`~repro.robustness.shutdown.SweepInterrupted`.
        """
        import time
        from concurrent.futures import CancelledError, ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeoutError
        from concurrent.futures.process import BrokenProcessPool
        from repro.robustness.deadline import configured_timeout, grace_seconds
        from repro.robustness.shutdown import SweepInterrupted, shutdown_requested

        initializer = None
        initargs = ()
        hub = telemetry.active_hub()
        if hub is not None:
            queue = hub.worker_queue()
            if queue is not None:
                initializer = telemetry._init_worker
                initargs = (queue,)
        if results is None:
            results = {}
        timeout = configured_timeout()
        budget = None if timeout is None else timeout + grace_seconds()
        interrupted = False
        workers = min(self.jobs, len(points))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as pool:
            submitted = [
                (key, spec, pool.submit(run_point_payload, key.to_dict()))
                for key, spec in points
            ]
            for key, spec, future in submitted:
                started_at = None
                payload = None
                while True:
                    if not interrupted and shutdown_requested():
                        interrupted = True
                        for _, _, queued in submitted:
                            queued.cancel()
                    try:
                        payload = future.result(timeout=0.25)
                    except FutureTimeoutError:
                        now = time.monotonic()
                        if started_at is None and future.running():
                            started_at = now
                        if (
                            budget is not None
                            and started_at is not None
                            and now - started_at > budget
                        ):
                            # The worker blew through budget + grace
                            # without even reporting its own deadline:
                            # it is wedged.  Kill the pool; this point
                            # is a timeout, the rest fall back.
                            for process in list(pool._processes.values()):
                                process.kill()
                            payload = {
                                "status": "error",
                                "error_type": "DeadlineExceededError",
                                "message": (
                                    f"worker exceeded the {timeout:g}s point "
                                    f"budget plus {budget - timeout:g}s grace "
                                    "without responding; killed by the parent"
                                ),
                            }
                            break
                        continue
                    except CancelledError:
                        break  # shutdown canceled it before it started
                    except BrokenProcessPool:
                        if not interrupted:
                            results[key] = self.run_point(key, spec, outcomes)
                        break
                    break
                if payload is not None:
                    results[key] = self._absorb(key, spec, payload, outcomes)
        if interrupted:
            raise SweepInterrupted(len(results), len(points) - len(results))
        return results

    def _absorb(
        self,
        key: ExperimentKey,
        spec: "WorkloadSpec",
        payload: dict,
        outcomes: "dict[ExperimentKey, str] | None" = None,
    ) -> SimulationResult:
        """Fold one worker response into the cache layers / failure log."""
        from repro.robustness.runner import current_failure_log

        hub = telemetry.active_hub()
        if payload.get("status") == "ok":
            result = result_from_dict(payload["result"])
            self.remember(key, spec, result)
            self._mark(key, "simulated")
            if outcomes is not None:
                outcomes[key] = "simulated"
            if hub is not None:
                hub.point_finished(
                    telemetry._point_id(key), key.label, "simulated"
                )
            return result
        error_type = payload.get("error_type", "UnknownError")
        message = payload.get("message", "worker returned no detail")
        log = current_failure_log()
        if log is None:
            raise WorkerFailureError(key, error_type, message)
        return self._retry(key, spec, log, error_type, message, outcomes)


# ---------------------------------------------------------------------------
# Process-wide engine configuration
# ---------------------------------------------------------------------------

_ENGINE: Engine | None = None

#: Sentinel distinguishing "leave unchanged" from "set to None".
_UNSET = object()


def get_engine() -> Engine:
    """The process-wide engine (serial, no disk store, until configured)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = Engine()
    return _ENGINE


def configure_engine(jobs=_UNSET, store=_UNSET) -> tuple[int, ResultStore | None]:
    """Set engine parallelism and/or disk store; returns prior values.

    The return value lets a caller (the CLI) restore the previous
    configuration afterward, keeping library defaults untouched::

        previous = configure_engine(jobs=4, store=ResultStore())
        try: ...
        finally: configure_engine(*previous)
    """
    engine = get_engine()
    previous = (engine.jobs, engine.store)
    if jobs is not _UNSET:
        if not isinstance(jobs, int) or jobs < 1:
            raise ValueError(f"jobs must be a positive integer: {jobs!r}")
        engine.jobs = jobs
    if store is not _UNSET:
        if store is not None and not isinstance(store, ResultStore):
            raise TypeError(f"store must be a ResultStore or None: {store!r}")
        engine.store = store
    return previous


# ---------------------------------------------------------------------------
# The plan -> execute -> resolve API used by figures and sweeps
# ---------------------------------------------------------------------------


class ExecutionPlan:
    """Declare design points up front, execute them as one batch.

    Usage::

        plan = ExecutionPlan()
        keys = {p: plan.add(org_for(p), "gcc", settings) for p in points}
        plan.execute()
        ipcs = {p: plan.ipc(keys[p]) for p in points}

    ``add`` is idempotent per key, so a figure may plan overlapping
    grids freely; shared points are simulated once.
    """

    def __init__(self, engine: Engine | None = None):
        self._engine = engine
        self._points: dict[ExperimentKey, WorkloadSpec] = {}
        self._results: dict[ExperimentKey, SimulationResult] = {}

    @property
    def engine(self) -> Engine:
        return self._engine if self._engine is not None else get_engine()

    def add(
        self,
        organization,
        workload,
        settings: "ExperimentSettings | None" = None,
    ) -> ExperimentKey:
        """Register one design point; returns its canonical key."""
        from repro.core.experiment import ExperimentSettings
        from repro.workloads.generator import WorkloadSpec

        settings = (settings or ExperimentSettings()).scaled()
        spec = workload if isinstance(workload, WorkloadSpec) else benchmark(workload)
        key = ExperimentKey(organization, spec.name, settings)
        if key not in self._points:
            obs_trace.emit(ENGINE_PLAN, 0, key=key.label)
        self._points.setdefault(key, spec)
        return key

    def add_all(
        self, points: Iterable[tuple], settings=None
    ) -> list[ExperimentKey]:
        """Plan many ``(organization, workload)`` pairs at once."""
        return [self.add(org, workload, settings) for org, workload in points]

    def add_key(self, key: ExperimentKey) -> ExperimentKey:
        """Plan a point from an existing key (checkpoint resume path).

        The key's settings are already scaled -- going through
        :meth:`add` would apply ``REPRO_SCALE`` a second time and plan a
        *different* design point, so this bypasses it.  The workload
        must come from the catalog (checkpoints only cover such plans).
        """
        spec = benchmark(key.workload)
        if key not in self._points:
            obs_trace.emit(ENGINE_PLAN, 0, key=key.label)
        self._points.setdefault(key, spec)
        return key

    def execute(self) -> dict[ExperimentKey, SimulationResult]:
        """Resolve every planned point (missing ones are simulated).

        When the engine has a persistent store, every execution also
        appends one record -- plan digest, per-point outcomes, headline
        summary, wall clock -- to the store's run ledger, and keeps a
        crash-safe checkpoint alongside the store while the batch runs:
        each resolved point appends one mark, a clean completion deletes
        the file, and an interrupt (or a run that ends with gaps) keeps
        it so ``--resume`` / ``repro runs resume`` know what remains.
        A graceful-shutdown request surfaces as
        :class:`~repro.robustness.shutdown.SweepInterrupted` *after*
        the partial batch has been recorded in ledger and checkpoint.
        """
        import time

        from repro.engine.checkpoint import SweepCheckpoint
        from repro.robustness.shutdown import SweepInterrupted

        engine = self.engine
        points = dict(self._points)
        outcomes: dict[ExperimentKey, str] = {}
        results: dict[ExperimentKey, SimulationResult] = {}
        checkpoint = None
        if (
            engine.store is not None
            and points
            and all(_is_catalog_spec(spec) for spec in points.values())
        ):
            checkpoint = SweepCheckpoint.for_plan(engine.store.root, points)
            previously = checkpoint.begin(points)
            if previously:
                obs_trace.emit(
                    ENGINE_RESUME,
                    0,
                    plan_digest=checkpoint.digest[:12],
                    skipped=previously,
                    remaining=len(points) - previously,
                )
                hub = telemetry.active_hub()
                if hub is not None:
                    hub.sweep_resumed(previously)
        start = time.monotonic()
        engine.checkpoint = checkpoint
        try:
            engine.run_batch(points, outcomes, results)
        except SweepInterrupted as stop:
            wall = time.monotonic() - start
            self._results.update(results)
            if engine.store is not None and results:
                self._record_run(
                    engine, results, results, outcomes, wall, interrupted=True
                )
            if checkpoint is not None:
                stop.checkpoint_path = str(checkpoint.path)
            raise
        finally:
            engine.checkpoint = None
        wall = time.monotonic() - start
        self._results.update(results)
        if engine.store is not None and points:
            self._record_run(engine, points, results, outcomes, wall)
        if checkpoint is not None:
            clean = all(
                outcome not in ("gap", "timeout")
                for outcome in outcomes.values()
            )
            if clean:
                checkpoint.remove()
        return dict(self._results)

    def _record_run(
        self,
        engine: Engine,
        points: "dict[ExperimentKey, object]",
        results: dict[ExperimentKey, SimulationResult],
        outcomes: dict[ExperimentKey, str],
        wall: float,
        interrupted: bool = False,
    ) -> None:
        """Append this execution to the run ledger (never fails the run)."""
        from repro.engine.ledger import build_record
        from repro.engine.store import SCHEMA_VERSION

        record = build_record(
            {key: results[key] for key in points},
            outcomes,
            wall_seconds=wall,
            jobs=engine.jobs,
            store_schema=SCHEMA_VERSION,
            interrupted=interrupted,
        )
        run_id = engine.store.ledger().append(record)
        if run_id is not None:
            obs_trace.emit(
                ENGINE_RUN_RECORD,
                0,
                run_id=run_id,
                plan_digest=record["plan_digest"][:12],
                points=len(points),
            )

    def resolve(self, key: ExperimentKey) -> SimulationResult:
        """The result for a planned key (executing on demand if needed)."""
        cached = self._results.get(key)
        if cached is not None:
            return cached
        spec = self._points.get(key)
        if spec is None:
            raise KeyError(f"key was never planned: {key.label}")
        result = self.engine.lookup(key, spec)
        if result is None:
            result = self.engine.run_point(key, spec)
        self._results[key] = result
        return result

    def ipc(self, key: ExperimentKey) -> float:
        """Shorthand for ``resolve(key).ipc`` (NaN for gap sentinels)."""
        return self.resolve(key).ipc

    def __len__(self) -> int:
        return len(self._points)
